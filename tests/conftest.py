"""Shared fixtures: tiny synthetic datasets and model configs.

Session-scoped where generation is deterministic and read-only, so the
suite stays fast.
"""

import numpy as np
import pytest

from repro.data import (SimulatorConfig, generate_dataset, leave_one_out_split,
                        training_prefixes)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """~80 users, 40 items, 4 clusters — enough structure, fast to fit."""
    config = SimulatorConfig(num_users=80, num_items=40, num_clusters=4,
                             edge_prob=0.5, mean_sequence_length=5.0,
                             causal_follow_prob=0.8, noise_prob=0.1,
                             basket_extra_prob=0.2, seed=7)
    return generate_dataset(config, name="tiny")


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    return leave_one_out_split(tiny_dataset.corpus)


@pytest.fixture(scope="session")
def tiny_train_samples(tiny_split):
    return training_prefixes(tiny_split.train, max_history=10)
