"""Regenerate the golden-value fixtures under ``tests/golden/*.npz``.

Run as::

    PYTHONPATH=src python tests/golden/generate_goldens.py

The fixtures pin the *numerical behaviour* of the engine's hot ops —
GRUCell, LSTMCell, BilinearAttention and the NOTEARS ``h(W)`` constraint —
under fixed seeds: forward outputs plus input/parameter gradients.
``tests/nn/test_golden_equivalence.py`` asserts the live implementation
reproduces them to 1e-10, so any optimization of these paths must stay
numerically equivalent.

The checked-in files were recorded at the commit *before* the fused-kernel
performance pass (PR 2); regenerate only when intentionally re-baselining
the reference numerics, and say so in the commit message.
"""

from __future__ import annotations

import os

import numpy as np

from repro.causal.dag_constraint import (h_value, h_value_and_grad, h_tensor,
                                         polynomial_h_value)
from repro.nn import BilinearAttention, GRUCell, LSTMCell, Tensor

HERE = os.path.dirname(os.path.abspath(__file__))


def _grad(tensor: Tensor) -> np.ndarray:
    assert tensor.grad is not None
    return tensor.grad


def golden_gru() -> None:
    rng = np.random.default_rng(21)
    cell = GRUCell(5, 6, rng)
    x = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
    h = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
    upstream = rng.normal(size=(4, 6))

    out = cell(x, h)
    loss = (out * Tensor(upstream)).sum()
    loss.backward()

    np.savez(os.path.join(HERE, "gru_cell.npz"),
             w_ih=cell.w_ih.data, w_hh=cell.w_hh.data,
             b_ih=cell.b_ih.data, b_hh=cell.b_hh.data,
             x=x.data, h=h.data, upstream=upstream,
             out=out.data,
             dx=_grad(x), dh=_grad(h),
             dw_ih=_grad(cell.w_ih), dw_hh=_grad(cell.w_hh),
             db_ih=_grad(cell.b_ih), db_hh=_grad(cell.b_hh))


def golden_lstm() -> None:
    rng = np.random.default_rng(22)
    cell = LSTMCell(5, 6, rng)
    x = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
    h = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
    c = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
    upstream_h = rng.normal(size=(4, 6))
    upstream_c = rng.normal(size=(4, 6))

    h_next, c_next = cell(x, (h, c))
    loss = ((h_next * Tensor(upstream_h)).sum()
            + (c_next * Tensor(upstream_c)).sum())
    loss.backward()

    np.savez(os.path.join(HERE, "lstm_cell.npz"),
             w_ih=cell.w_ih.data, w_hh=cell.w_hh.data, bias=cell.bias.data,
             x=x.data, h=h.data, c=c.data,
             upstream_h=upstream_h, upstream_c=upstream_c,
             h_next=h_next.data, c_next=c_next.data,
             dx=_grad(x), dh=_grad(h), dc=_grad(c),
             dw_ih=_grad(cell.w_ih), dw_hh=_grad(cell.w_hh),
             dbias=_grad(cell.bias))


def golden_attention() -> None:
    rng = np.random.default_rng(23)
    att = BilinearAttention(6, rng)
    states = Tensor(rng.normal(size=(3, 7, 6)), requires_grad=True)
    query = Tensor(rng.normal(size=(3, 6)), requires_grad=True)
    mask = rng.random((3, 7)) > 0.25
    mask[0, :] = True
    upstream = rng.normal(size=(3, 7))

    out = att(states, query, mask=mask)
    loss = (out * Tensor(upstream)).sum()
    loss.backward()

    np.savez(os.path.join(HERE, "attention.npz"),
             proj=att.proj.data, states=states.data, query=query.data,
             mask=mask, upstream=upstream,
             out=out.data,
             dstates=_grad(states), dquery=_grad(query),
             dproj=_grad(att.proj))


def golden_dag_h() -> None:
    rng = np.random.default_rng(24)
    weights = rng.uniform(0.0, 0.6, size=(9, 9))
    np.fill_diagonal(weights, 0.0)

    tensor = Tensor(weights, requires_grad=True)
    node = h_tensor(tensor)
    node.backward()
    value, closed_grad = h_value_and_grad(weights)

    np.savez(os.path.join(HERE, "dag_h.npz"),
             weights=weights,
             h=np.array(h_value(weights)),
             h_tensor_value=node.data,
             grad=_grad(tensor),
             closed_form_value=np.array(value),
             closed_form_grad=closed_grad,
             polynomial_order10=np.array(polynomial_h_value(weights, 10)))


if __name__ == "__main__":
    golden_gru()
    golden_lstm()
    golden_attention()
    golden_dag_h()
    print(f"wrote golden fixtures to {HERE}")
