"""Tests for random DAG generation and linear SEM sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.causal import (is_dag, random_dag, random_dag_scale_free,
                          simulate_linear_sem, standardize, weighted_dag)


class TestRandomDag:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 10),
           p=st.floats(0.0, 1.0))
    def test_always_acyclic(self, seed, n, p):
        dag = random_dag(n, p, np.random.default_rng(seed))
        assert is_dag(dag)

    def test_edge_prob_extremes(self):
        rng = np.random.default_rng(0)
        assert random_dag(5, 0.0, rng).sum() == 0
        full = random_dag(5, 1.0, rng)
        assert full.sum() == 10  # complete DAG on 5 nodes

    def test_invalid_edge_prob(self):
        with pytest.raises(ValueError):
            random_dag(4, 1.5, np.random.default_rng(0))


class TestScaleFreeDag:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(3, 12))
    def test_acyclic(self, seed, n):
        dag = random_dag_scale_free(n, 2, np.random.default_rng(seed))
        assert is_dag(dag)

    def test_hub_structure(self):
        dag = random_dag_scale_free(30, 2, np.random.default_rng(1))
        out_degrees = dag.sum(axis=1)
        # Preferential attachment produces at least one hub.
        assert out_degrees.max() >= 4


class TestWeightedDag:
    def test_weights_in_range(self):
        rng = np.random.default_rng(2)
        adj = random_dag(6, 0.5, rng)
        weights = weighted_dag(adj, rng, weight_range=(0.5, 2.0))
        nonzero = np.abs(weights[adj == 1])
        assert (nonzero >= 0.5).all() and (nonzero <= 2.0).all()
        assert (weights[adj == 0] == 0).all()

    def test_no_negative_option(self):
        rng = np.random.default_rng(3)
        adj = random_dag(6, 0.5, rng)
        weights = weighted_dag(adj, rng, allow_negative=False)
        assert (weights >= 0).all()

    def test_invalid_range(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            weighted_dag(np.zeros((2, 2)), rng, weight_range=(0.0, 1.0))


class TestSimulateLinearSem:
    def test_shape(self):
        rng = np.random.default_rng(5)
        adj = weighted_dag(random_dag(5, 0.4, rng), rng)
        data = simulate_linear_sem(adj, 100, rng)
        assert data.shape == (100, 5)

    def test_root_variance_matches_noise(self):
        rng = np.random.default_rng(6)
        weights = np.zeros((2, 2))
        weights[0, 1] = 2.0
        data = simulate_linear_sem(weights, 20_000, rng, noise_scale=1.0)
        assert data[:, 0].std() == pytest.approx(1.0, rel=0.05)
        # child = 2 * parent + noise -> std = sqrt(4 + 1)
        assert data[:, 1].std() == pytest.approx(np.sqrt(5.0), rel=0.05)

    def test_child_correlates_with_parent(self):
        rng = np.random.default_rng(7)
        weights = np.zeros((2, 2))
        weights[0, 1] = 1.5
        data = simulate_linear_sem(weights, 5000, rng)
        corr = np.corrcoef(data[:, 0], data[:, 1])[0, 1]
        assert corr > 0.7

    @pytest.mark.parametrize("noise", ["gaussian", "exponential", "gumbel"])
    def test_noise_kinds(self, noise):
        rng = np.random.default_rng(8)
        weights = np.zeros((3, 3))
        weights[0, 1] = 1.0
        data = simulate_linear_sem(weights, 200, rng, noise=noise)
        assert np.isfinite(data).all()

    def test_unknown_noise(self):
        with pytest.raises(ValueError):
            simulate_linear_sem(np.zeros((2, 2)), 10,
                                np.random.default_rng(0), noise="cauchy")

    def test_standardize_centers(self):
        rng = np.random.default_rng(9)
        data = rng.normal(5.0, 2.0, size=(500, 3))
        centered = standardize(data)
        np.testing.assert_allclose(centered.mean(axis=0), np.zeros(3),
                                   atol=1e-10)
