"""Tests for the nonlinear (MLP) NOTEARS variant."""

import numpy as np
import pytest

from repro.causal import (evaluate_structure, is_dag, notears_mlp,
                          random_dag, standardize, weighted_dag)
from repro.causal.graph import parents as parents_of
from repro.causal.graph import topological_order
from repro.causal.notears_mlp import _PerVariableMLPs


def nonlinear_sem(seed, num_nodes=5, num_samples=800, edge_prob=0.4):
    """x_j = sum_i tanh(w_ij x_i) + gaussian noise."""
    rng = np.random.default_rng(seed)
    truth = random_dag(num_nodes, edge_prob, rng)
    weights = weighted_dag(truth, rng, weight_range=(1.0, 2.0))
    data = np.zeros((num_samples, num_nodes))
    for node in topological_order(truth):
        ps = parents_of(truth, node)
        mean = (sum(np.tanh(weights[p, node] * data[:, p]) for p in ps)
                if ps else 0.0)
        data[:, node] = mean + rng.normal(0, 0.5, size=num_samples)
    return truth, standardize(data)


class TestPerVariableMLPs:
    def test_self_prediction_blocked(self):
        model = _PerVariableMLPs(4, 6, np.random.default_rng(0))
        strengths = model.adjacency_strength().data
        np.testing.assert_allclose(np.diag(strengths), 0.0, atol=1e-6)

    def test_forward_shape(self):
        model = _PerVariableMLPs(4, 6, np.random.default_rng(0))
        out = model(np.random.default_rng(1).normal(size=(32, 4)))
        assert out.shape == (4, 32)

    def test_strengths_nonnegative(self):
        model = _PerVariableMLPs(5, 8, np.random.default_rng(2))
        assert (model.adjacency_strength().data >= 0).all()

    def test_masking_makes_input_irrelevant(self):
        """Perturbing x_j must not change f_j's prediction."""
        model = _PerVariableMLPs(3, 4, np.random.default_rng(3))
        data = np.random.default_rng(4).normal(size=(16, 3))
        base = model(data).data.copy()
        perturbed_data = data.copy()
        perturbed_data[:, 1] += 100.0
        perturbed = model(perturbed_data).data
        np.testing.assert_allclose(base[1], perturbed[1], atol=1e-9)


class TestNotearsMLP:
    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            notears_mlp(np.zeros(10))

    @pytest.fixture(scope="class")
    def recovered(self):
        truth, data = nonlinear_sem(seed=1)
        result = notears_mlp(data, hidden=8, inner_steps=200, lambda1=0.01,
                             max_outer_iterations=10)
        return truth, result

    def test_constraint_satisfied(self, recovered):
        _, result = recovered
        assert result.h_final < 1e-2
        assert is_dag(result.adjacency)

    def test_nonlinear_structure_recovered(self, recovered):
        truth, result = recovered
        metrics = evaluate_structure(truth, result.adjacency)
        assert metrics.skeleton_f1 >= 0.6

    def test_strongest_edge_is_true(self, recovered):
        truth, result = recovered
        i, j = np.unravel_index(np.argmax(result.strengths),
                                result.strengths.shape)
        assert truth[i, j] == 1 or truth[j, i] == 1

    def test_history_recorded(self, recovered):
        _, result = recovered
        assert len(result.history) == result.outer_iterations

    def test_independent_data_yields_sparse_graph(self):
        # Flexible MLPs overfit pure noise, so a stronger sparsity weight
        # is needed to keep the null case clean.
        rng = np.random.default_rng(9)
        data = standardize(rng.normal(size=(500, 4)))
        result = notears_mlp(data, hidden=6, inner_steps=150,
                             max_outer_iterations=6, lambda1=0.1)
        assert result.adjacency.sum() <= 2
