"""Tests for d-separation: canonical structures plus a networkx cross-check."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.causal import (d_connected, d_separated, non_descendant_set,
                          random_dag, to_networkx)


def chain():
    m = np.zeros((3, 3))
    m[0, 1] = m[1, 2] = 1
    return m


def collider():
    m = np.zeros((3, 3))
    m[0, 2] = m[1, 2] = 1
    return m


def fork():
    m = np.zeros((3, 3))
    m[2, 0] = m[2, 1] = 1
    return m


class TestCanonicalStructures:
    def test_chain_blocked_by_middle(self):
        assert d_separated(chain(), [0], [2], [1])
        assert not d_separated(chain(), [0], [2], [])

    def test_fork_blocked_by_root(self):
        assert d_separated(fork(), [0], [1], [2])
        assert not d_separated(fork(), [0], [1], [])

    def test_collider_opens_when_conditioned(self):
        assert d_separated(collider(), [0], [1], [])
        assert not d_separated(collider(), [0], [1], [2])

    def test_collider_descendant_opens_path(self):
        m = np.zeros((4, 4))
        m[0, 2] = m[1, 2] = m[2, 3] = 1  # 3 is a descendant of collider 2
        assert d_separated(m, [0], [1], [])
        assert not d_separated(m, [0], [1], [3])

    def test_same_node_connected(self):
        assert not d_separated(chain(), [0], [0], [])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            d_separated(chain(), [0], [5], [])

    def test_d_connected_negation(self):
        assert d_connected(chain(), [0], [2], [])
        assert not d_connected(chain(), [0], [2], [1])

    def test_disconnected_nodes_separated(self):
        m = np.zeros((4, 4))
        m[0, 1] = 1
        assert d_separated(m, [0], [3], [])


class TestNonDescendantSet:
    def test_chain(self):
        # non-descendants of 0 and 1 in the chain exclude all of {0,1,2}.
        assert non_descendant_set(chain(), 0, 1) == set()

    def test_collider(self):
        assert non_descendant_set(collider(), 0, 1) == set()

    def test_isolated(self):
        m = np.zeros((4, 4))
        m[0, 1] = 1
        assert non_descendant_set(m, 2, 3) == {0, 1}


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(3, 7))
def test_agrees_with_networkx(seed, n):
    """Cross-check against networkx's d_separated on random DAG queries."""
    rng = np.random.default_rng(seed)
    dag = random_dag(n, 0.4, rng)
    graph = to_networkx(dag)
    nodes = list(rng.permutation(n))
    x, y = nodes[0], nodes[1]
    z = set(int(v) for v in nodes[2:2 + int(rng.integers(0, n - 2 + 1))])
    ours = d_separated(dag, [x], [y], z)
    theirs = nx.is_d_separator(graph, {x}, {y}, z)
    assert ours == theirs
