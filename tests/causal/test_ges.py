"""Tests for the greedy score-based (GES-style) structure search."""

import numpy as np
import pytest

from repro.causal import (evaluate_structure, ges_search, is_dag,
                          markov_equivalent, random_dag,
                          simulate_linear_sem, standardize, weighted_dag)


def generate(seed, n_nodes=5, n_samples=1500, edge_prob=0.35):
    rng = np.random.default_rng(seed)
    truth = random_dag(n_nodes, edge_prob, rng)
    weights = weighted_dag(truth, rng)
    data = standardize(simulate_linear_sem(weights, n_samples, rng))
    return truth, data


class TestGES:
    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            ges_search(np.zeros(10))

    def test_result_is_dag(self):
        _, data = generate(0)
        result = ges_search(data)
        assert is_dag(result.adjacency)

    def test_score_monotone(self):
        _, data = generate(1)
        result = ges_search(data)
        diffs = np.diff(result.score_trace)
        assert (diffs > 0).all()

    @pytest.mark.parametrize("seed", [0, 2, 5])
    def test_recovers_mec(self, seed):
        truth, data = generate(seed)
        result = ges_search(data)
        metrics = evaluate_structure(truth, result.adjacency)
        assert metrics.skeleton_f1 >= 0.8

    def test_empty_graph_on_independent_data(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(1000, 4))
        result = ges_search(data)
        assert result.adjacency.sum() <= 1

    def test_two_node_dependence_found(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=2000)
        y = 1.2 * x + 0.5 * rng.normal(size=2000)
        data = standardize(np.stack([x, y], axis=1))
        result = ges_search(data)
        assert result.adjacency.sum() == 1

    def test_max_parents_respected(self):
        _, data = generate(6, n_nodes=6, edge_prob=0.6)
        result = ges_search(data, max_parents=1)
        assert result.adjacency.sum(axis=0).max() <= 1

    def test_agrees_with_notears_mec_on_easy_problem(self):
        from repro.causal import notears_linear
        truth, data = generate(7, n_nodes=4, n_samples=3000)
        ges = ges_search(data)
        notears = notears_linear(data, lambda1=0.05)
        assert markov_equivalent(ges.adjacency, notears.adjacency)
