"""Tests for DAG utilities: structure queries, MEC, pruning."""

import numpy as np
import pytest

from repro.causal import (ancestors, binarize, children, cpdag, descendants,
                          edge_list, from_networkx, is_dag,
                          markov_equivalent, num_edges, parents,
                          prune_to_dag, skeleton, to_networkx,
                          topological_order, v_structures,
                          validate_adjacency)


def chain(n=3):
    """0 -> 1 -> ... -> n-1."""
    m = np.zeros((n, n))
    for i in range(n - 1):
        m[i, i + 1] = 1
    return m


def collider():
    """0 -> 2 <- 1."""
    m = np.zeros((3, 3))
    m[0, 2] = 1
    m[1, 2] = 1
    return m


def fork():
    """0 <- 2 -> 1 (common cause)."""
    m = np.zeros((3, 3))
    m[2, 0] = 1
    m[2, 1] = 1
    return m


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            validate_adjacency(np.zeros((2, 3)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            validate_adjacency(np.zeros(4))

    def test_binarize_threshold(self):
        m = np.array([[0.0, 0.5], [-0.2, 0.0]])
        np.testing.assert_array_equal(binarize(m, 0.3), [[0, 1], [0, 0]])
        np.testing.assert_array_equal(binarize(m, 0.1), [[0, 1], [1, 0]])


class TestStructureQueries:
    def test_is_dag(self):
        assert is_dag(chain())
        cyclic = chain()
        cyclic[2, 0] = 1
        assert not is_dag(cyclic)

    def test_topological_order(self):
        order = topological_order(chain(4))
        assert order == [0, 1, 2, 3]

    def test_topological_order_cycle_raises(self):
        cyclic = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            topological_order(cyclic)

    def test_parents_children(self):
        m = collider()
        assert parents(m, 2) == [0, 1]
        assert children(m, 0) == [2]
        assert parents(m, 0) == []

    def test_ancestors_descendants(self):
        m = chain(4)
        assert ancestors(m, 3) == {0, 1, 2}
        assert descendants(m, 0) == {1, 2, 3}

    def test_edge_list_and_count(self):
        m = collider()
        assert set(edge_list(m)) == {(0, 2), (1, 2)}
        assert num_edges(m) == 2

    def test_networkx_roundtrip(self):
        m = chain(4)
        back = from_networkx(to_networkx(m), num_nodes=4)
        np.testing.assert_array_equal(back, m.astype(int))


class TestSkeletonAndVStructures:
    def test_skeleton_symmetric(self):
        skel = skeleton(chain())
        np.testing.assert_array_equal(skel, skel.T)
        assert skel[0, 1] == 1 and skel[1, 2] == 1 and skel[0, 2] == 0

    def test_collider_detected(self):
        assert v_structures(collider()) == {(0, 2, 1)}

    def test_fork_is_not_collider(self):
        assert v_structures(fork()) == set()

    def test_chain_no_v_structure(self):
        assert v_structures(chain()) == set()

    def test_shielded_collider_excluded(self):
        m = collider()
        m[0, 1] = 1  # shield: 0 and 1 now adjacent
        assert v_structures(m) == set()


class TestMarkovEquivalence:
    def test_chain_directions_equivalent(self):
        forward = chain()
        backward = chain().T
        assert markov_equivalent(forward, backward)

    def test_collider_not_equivalent_to_chain(self):
        assert not markov_equivalent(collider(), chain())

    def test_fork_equivalent_to_chain(self):
        # 0 <- 2 -> 1 and 0 -> 2 -> 1 share skeleton, no v-structures.
        assert markov_equivalent(fork(), np.array([[0, 0, 1],
                                                   [0, 0, 0],
                                                   [0, 1, 0]]).T)

    def test_different_skeletons_not_equivalent(self):
        assert not markov_equivalent(chain(), np.zeros((3, 3)))

    def test_self_equivalence(self):
        assert markov_equivalent(collider(), collider())


class TestCPDAG:
    def test_collider_edges_stay_directed(self):
        pattern = cpdag(collider())
        assert pattern[0, 2] == 1 and pattern[2, 0] == 0
        assert pattern[1, 2] == 1 and pattern[2, 1] == 0

    def test_chain_edges_undirected(self):
        pattern = cpdag(chain())
        assert pattern[0, 1] == 1 and pattern[1, 0] == 1


class TestPruneToDag:
    def test_removes_weakest_cycle_edge(self):
        m = np.array([[0.0, 1.0], [0.2, 0.0]])
        pruned = prune_to_dag(m)
        assert is_dag(pruned)
        assert pruned[0, 1] == 1.0
        assert pruned[1, 0] == 0.0

    def test_dag_unchanged(self):
        m = chain()
        np.testing.assert_array_equal(prune_to_dag(m), m)

    def test_three_cycle(self):
        m = np.array([[0, 0.9, 0], [0, 0, 0.8], [0.1, 0, 0]])
        pruned = prune_to_dag(m)
        assert is_dag(pruned)
        assert pruned[2, 0] == 0.0  # the weakest edge went
