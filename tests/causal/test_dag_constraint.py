"""Tests for the NOTEARS acyclicity constraint h(W)."""

import numpy as np
import pytest

from repro.causal import (h_tensor, h_value, h_value_and_grad,
                          polynomial_h_value, random_dag)
from repro.nn import Tensor


class TestHValue:
    def test_zero_on_dag(self):
        rng = np.random.default_rng(0)
        for seed in range(5):
            dag = random_dag(6, 0.4, np.random.default_rng(seed)).astype(float)
            assert h_value(dag) == pytest.approx(0.0, abs=1e-9)

    def test_positive_on_cycle(self):
        cycle = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert h_value(cycle) > 0.5

    def test_grows_with_cycle_weight(self):
        def cyc(w):
            return np.array([[0.0, w], [w, 0.0]])
        assert h_value(cyc(2.0)) > h_value(cyc(1.0)) > h_value(cyc(0.5)) > 0

    def test_self_loop_detected(self):
        m = np.zeros((3, 3))
        m[1, 1] = 1.0
        assert h_value(m) > 0


class TestGradient:
    def test_matches_finite_differences(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(4, 4)) * 0.5
        _, grad = h_value_and_grad(w)
        eps = 1e-6
        for i in range(4):
            for j in range(4):
                w_plus, w_minus = w.copy(), w.copy()
                w_plus[i, j] += eps
                w_minus[i, j] -= eps
                numeric = (h_value(w_plus) - h_value(w_minus)) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=1e-5)

    def test_zero_gradient_at_zero(self):
        _, grad = h_value_and_grad(np.zeros((3, 3)))
        np.testing.assert_allclose(grad, np.zeros((3, 3)))


class TestHTensor:
    def test_forward_matches_numpy(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(4, 4)) * 0.3
        t = Tensor(w, requires_grad=True)
        assert h_tensor(t).item() == pytest.approx(h_value(w), rel=1e-12)

    def test_backward_matches_analytic(self):
        rng = np.random.default_rng(3)
        w = rng.normal(size=(3, 3)) * 0.4
        t = Tensor(w, requires_grad=True)
        h_tensor(t).backward()
        _, grad = h_value_and_grad(w)
        np.testing.assert_allclose(t.grad, grad, rtol=1e-10)

    def test_chains_with_other_ops(self):
        rng = np.random.default_rng(4)
        t = Tensor(rng.normal(size=(3, 3)) * 0.2, requires_grad=True)
        out = h_tensor(t) * 2.0 + (t * t).sum()
        out.backward()
        assert t.grad is not None


class TestPolynomialApproximation:
    def test_converges_to_exact(self):
        rng = np.random.default_rng(5)
        w = rng.normal(size=(5, 5)) * 0.3
        exact = h_value(w)
        approx = polynomial_h_value(w, order=30)
        assert approx == pytest.approx(exact, rel=1e-6)

    def test_zero_on_dag(self):
        dag = random_dag(5, 0.4, np.random.default_rng(6)).astype(float)
        assert polynomial_h_value(dag, order=10) == pytest.approx(0.0, abs=1e-12)


class TestExpmCache:
    """The matrix-exponential memo that speeds up augmented-Lagrangian loops."""

    def setup_method(self):
        from repro.causal import clear_expm_cache
        clear_expm_cache()

    def test_repeat_evaluations_hit_cache(self):
        from repro.causal import clear_expm_cache, expm_cache_info
        w = np.random.default_rng(7).normal(size=(6, 6)) * 0.3
        first = h_value(w)
        hits0, misses0, _ = expm_cache_info()
        assert misses0 == 1 and hits0 == 0
        assert h_value(w) == first
        value, _grad = h_value_and_grad(w)
        assert value == pytest.approx(first, abs=1e-12)
        hits, misses, size = expm_cache_info()
        assert misses == 1
        assert hits == 2
        assert size == 1
        clear_expm_cache()
        assert expm_cache_info() == (0, 0, 0)

    def test_cache_keyed_on_content_not_identity(self):
        from repro.causal import expm_cache_info
        w = np.random.default_rng(8).normal(size=(4, 4)) * 0.2
        h_value(w)
        h_value(w.copy())  # same bytes, different array object
        hits, misses, _ = expm_cache_info()
        assert (hits, misses) == (1, 1)
        h_value(w + 0.01)  # different content must miss
        hits, misses, _ = expm_cache_info()
        assert misses == 2

    def test_cached_results_stay_correct_after_mutation(self):
        w = np.random.default_rng(9).normal(size=(4, 4)) * 0.2
        before = h_value(w)
        w[0, 1] += 0.5  # in-place edit: new content hash, no stale reuse
        after = h_value(w)
        assert after != before
        assert after == pytest.approx(h_value(w.copy()), abs=1e-12)
