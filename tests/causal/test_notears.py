"""Tests for the linear NOTEARS solver and identifiability experiments."""

import numpy as np
import pytest

from repro.causal import (evaluate_structure, is_dag, notears_linear,
                          random_dag, run_identifiability_study,
                          run_identifiability_trial, simulate_linear_sem,
                          standardize, weighted_dag)


@pytest.fixture(scope="module")
def recovered():
    """Run NOTEARS once on a well-posed 6-node problem; reuse across tests."""
    rng = np.random.default_rng(42)
    truth = random_dag(6, 0.35, rng)
    weights = weighted_dag(truth, rng)
    data = standardize(simulate_linear_sem(weights, 1500, rng))
    result = notears_linear(data, lambda1=0.05)
    return truth, weights, result


class TestNotearsLinear:
    def test_result_is_dag(self, recovered):
        _, _, result = recovered
        assert is_dag(result.adjacency)
        assert result.h_final < 1e-6

    def test_structure_recovered(self, recovered):
        truth, _, result = recovered
        metrics = evaluate_structure(truth, result.adjacency)
        assert metrics.skeleton_f1 >= 0.8
        assert metrics.shd <= 2

    def test_weights_close_to_truth(self, recovered):
        truth, weights, result = recovered
        mask = truth == 1
        learned = result.weights[mask]
        np.testing.assert_allclose(learned, weights[mask], atol=0.35)

    def test_history_recorded(self, recovered):
        _, _, result = recovered
        assert len(result.history) == result.iterations
        hs = [h for h, _ in result.history]
        assert hs[-1] <= hs[0]

    def test_rejects_1d_data(self):
        with pytest.raises(ValueError):
            notears_linear(np.zeros(10))

    def test_empty_graph_on_independent_data(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(800, 4))
        result = notears_linear(data, lambda1=0.1)
        assert result.adjacency.sum() <= 1

    def test_two_node_direction(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=2000)
        y = 1.5 * x + 0.4 * rng.normal(size=2000)  # unequal noise -> direction identifiable
        data = standardize(np.stack([x, y], axis=1))
        result = notears_linear(data, lambda1=0.02)
        assert result.adjacency[0, 1] == 1
        assert result.adjacency[1, 0] == 0


class TestIdentifiability:
    def test_trial_returns_metrics(self):
        trial = run_identifiability_trial(num_nodes=5, num_samples=500, seed=3)
        assert trial.metrics.shd >= 0
        assert 0.0 <= trial.metrics.skeleton_f1 <= 1.0

    def test_study_improves_with_samples(self):
        reports = run_identifiability_study(num_nodes=5,
                                            sample_sizes=(50, 1000),
                                            trials_per_size=2, base_seed=1)
        assert len(reports) == 2
        small, large = reports
        assert large.mean_skeleton_f1 >= small.mean_skeleton_f1 - 0.1

    def test_report_summary_keys(self):
        reports = run_identifiability_study(num_nodes=4, sample_sizes=(200,),
                                            trials_per_size=1)
        summary = reports[0].summary()
        assert set(summary) == {"num_nodes", "num_samples",
                                "mec_recovery_rate", "mean_shd",
                                "mean_skeleton_f1"}

    def test_large_sample_recovers_mec(self):
        trial = run_identifiability_trial(num_nodes=4, num_samples=3000,
                                          seed=7)
        assert trial.metrics.skeleton_f1 >= 0.85
