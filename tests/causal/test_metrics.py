"""Tests for structure-recovery metrics."""

import numpy as np
import pytest

from repro.causal import (cpdag_agreement, evaluate_structure,
                          skeleton_scores, structural_hamming_distance,
                          v_structure_scores)


def chain():
    m = np.zeros((3, 3))
    m[0, 1] = m[1, 2] = 1
    return m


class TestSHD:
    def test_identical_graphs(self):
        assert structural_hamming_distance(chain(), chain()) == 0

    def test_missing_edge(self):
        learned = chain()
        learned[1, 2] = 0
        assert structural_hamming_distance(chain(), learned) == 1

    def test_extra_edge(self):
        learned = chain()
        learned[0, 2] = 1
        assert structural_hamming_distance(chain(), learned) == 1

    def test_reversed_edge_counts_once(self):
        learned = np.zeros((3, 3))
        learned[1, 0] = learned[1, 2] = 1  # 0->1 reversed
        assert structural_hamming_distance(chain(), learned) == 1

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            structural_hamming_distance(chain(), np.zeros((4, 4)))

    def test_empty_vs_full(self):
        truth = chain()
        assert structural_hamming_distance(truth, np.zeros((3, 3))) == 2


class TestSkeletonScores:
    def test_perfect(self):
        scores = skeleton_scores(chain(), chain())
        assert scores == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_direction_ignored(self):
        scores = skeleton_scores(chain(), chain().T)
        assert scores["f1"] == 1.0

    def test_half_recall(self):
        learned = np.zeros((3, 3))
        learned[0, 1] = 1
        scores = skeleton_scores(chain(), learned)
        assert scores["recall"] == pytest.approx(0.5)
        assert scores["precision"] == pytest.approx(1.0)

    def test_empty_learned(self):
        scores = skeleton_scores(chain(), np.zeros((3, 3)))
        assert scores["f1"] == 0.0


class TestVStructureScores:
    def test_both_empty_is_perfect(self):
        scores = v_structure_scores(chain(), chain())
        assert scores == {"precision": 1.0, "recall": 1.0}

    def test_found_collider(self):
        coll = np.zeros((3, 3))
        coll[0, 2] = coll[1, 2] = 1
        scores = v_structure_scores(coll, coll)
        assert scores == {"precision": 1.0, "recall": 1.0}

    def test_missed_collider(self):
        coll = np.zeros((3, 3))
        coll[0, 2] = coll[1, 2] = 1
        scores = v_structure_scores(coll, chain())
        assert scores["recall"] == 0.0


class TestEvaluateStructure:
    def test_full_report(self):
        report = evaluate_structure(chain(), chain())
        assert report.shd == 0
        assert report.markov_equivalent
        assert report.true_edges == 2
        assert report.learned_edges == 2
        assert set(report.as_dict()) >= {"shd", "skeleton_f1",
                                         "markov_equivalent"}

    def test_reversed_chain_equivalent(self):
        report = evaluate_structure(chain(), chain().T)
        assert report.markov_equivalent
        assert report.shd == 2  # two reversals


class TestCPDAGAgreement:
    def test_perfect(self):
        assert cpdag_agreement(chain(), chain()) == 1.0

    def test_chain_reversal_agrees(self):
        # Same MEC -> same pattern.
        assert cpdag_agreement(chain(), chain().T) == 1.0

    def test_partial(self):
        assert cpdag_agreement(chain(), np.zeros((3, 3))) < 1.0
