"""Tests for the constraint-based PC algorithm."""

import numpy as np
import pytest

from repro.causal import (cpdag, pc_algorithm, random_dag,
                          simulate_linear_sem, standardize, weighted_dag)
from repro.causal.pc import fisher_z_test


def generate(seed, n_nodes=5, n_samples=3000, edge_prob=0.35):
    rng = np.random.default_rng(seed)
    truth = random_dag(n_nodes, edge_prob, rng)
    weights = weighted_dag(truth, rng)
    data = standardize(simulate_linear_sem(weights, n_samples, rng))
    return truth, data


class TestFisherZ:
    def test_independent_variables_high_p(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(5000, 3))
        corr = np.corrcoef(data, rowvar=False)
        assert fisher_z_test(corr, 0, 1, (), 5000) > 0.01

    def test_dependent_variables_low_p(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=5000)
        y = x + 0.5 * rng.normal(size=5000)
        corr = np.corrcoef(np.stack([x, y], axis=1), rowvar=False)
        assert fisher_z_test(corr, 0, 1, (), 5000) < 1e-6

    def test_conditional_independence_in_chain(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=8000)
        z = x + 0.5 * rng.normal(size=8000)
        y = z + 0.5 * rng.normal(size=8000)
        corr = np.corrcoef(np.stack([x, y, z], axis=1), rowvar=False)
        assert fisher_z_test(corr, 0, 1, (), 8000) < 1e-6       # marginal dep
        assert fisher_z_test(corr, 0, 1, (2,), 8000) > 0.01     # cond indep

    def test_insufficient_dof(self):
        corr = np.eye(4)
        assert fisher_z_test(corr, 0, 1, (2, 3), 5) == 1.0


class TestPCAlgorithm:
    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pc_algorithm(np.zeros(10))

    def test_recovers_cpdag(self):
        truth, data = generate(seed=0)
        result = pc_algorithm(data, alpha=0.05)
        np.testing.assert_array_equal(result.cpdag, cpdag(truth))

    @pytest.mark.parametrize("seed", [3, 7, 11])
    def test_skeleton_recovery_across_seeds(self, seed):
        truth, data = generate(seed=seed)
        result = pc_algorithm(data, alpha=0.05)
        true_pattern = cpdag(truth)
        true_skeleton = ((true_pattern + true_pattern.T) > 0)
        learned_skeleton = ((result.cpdag + result.cpdag.T) > 0)
        agreement = (true_skeleton == learned_skeleton).mean()
        assert agreement >= 0.85

    def test_empty_graph_on_independent_data(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(3000, 4))
        result = pc_algorithm(data, alpha=0.01)
        assert result.cpdag.sum() <= 2

    def test_collider_oriented(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=6000)
        y = rng.normal(size=6000)
        z = x + y + 0.5 * rng.normal(size=6000)
        data = standardize(np.stack([x, y, z], axis=1))
        result = pc_algorithm(data, alpha=0.05)
        assert (0, 2) in result.directed_edges()
        assert (1, 2) in result.directed_edges()

    def test_chain_stays_undirected(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=6000)
        z = x + 0.5 * rng.normal(size=6000)
        y = z + 0.5 * rng.normal(size=6000)
        data = standardize(np.stack([x, y, z], axis=1))
        # alpha=0.01: at 0.05 the x-y test rejects ~5% of seeds by chance.
        result = pc_algorithm(data, alpha=0.01)
        # chain x - z - y has no v-structure: both edges stay undirected.
        assert set(result.undirected_edges()) == {(0, 2), (1, 2)}

    def test_max_condition_size(self):
        _, data = generate(seed=8)
        result = pc_algorithm(data, alpha=0.05, max_condition_size=0)
        assert result.cpdag.shape == (5, 5)

    def test_agrees_with_notears_mec(self):
        """PC and NOTEARS should land in the same MEC on easy problems."""
        from repro.causal import notears_linear
        truth, data = generate(seed=9, n_nodes=4)
        pc_pattern = pc_algorithm(data, alpha=0.05).cpdag
        notears = notears_linear(data, lambda1=0.05)
        np.testing.assert_array_equal(pc_pattern, cpdag(notears.adjacency))
