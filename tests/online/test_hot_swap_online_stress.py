"""Hot swaps driven by the online refresh loop, under live traffic.

The online analogue of ``tests/serve/test_hot_swap_stress.py``: event
threads and recommend threads hammer the app through the
:class:`InProcessClient` while (a) the online trainer consumes the tee'd
log on its own thread and (b) a refresher thread publishes **three**
refreshed generations mid-traffic.  With every serving lock proxied by
the runtime thread sanitizer, the assertions are:

* every request succeeds,
* generations observed by each recommend thread are monotone
  (no torn or backwards swap),
* at least three refresh generations actually landed,
* the trainer consumed each complete micro-batch exactly once
  (``consumed == floor(logged / batch) * batch``, and a post-hoc replay
  of the log bit-reproduces the live shadow tables), and
* ``threadsan`` reports zero findings.
"""

import threading
import time

from repro.analysis import threadsan
from repro.online import EventLog, OnlineTrainer, RefreshController
from repro.online.__main__ import fingerprint

EVENT_THREADS = 3
EVENTS_PER_USER = 40
RECOMMEND_THREADS = 2
RECOMMENDS_PER_THREAD = 40
REFRESHES = 3
BATCH_EVENTS = 16


def test_online_refresh_hot_swap_stress(online_causer, shadow_of, make_app):
    app, client = make_app(online_causer, max_wait_ms=0.2)
    num_items = online_causer.num_items
    log = EventLog(None)
    app.event_sink = log.append
    trainer = OnlineTrainer(shadow_of(online_causer), log, lr=0.05,
                            batch_events=BATCH_EVENTS, poll_interval=0.005,
                            metrics=app.metrics)
    refresh = RefreshController(trainer, log, app.install_model,
                                window=512, refresh_epochs=1,
                                min_samples=4, baseline=online_causer,
                                metrics=app.metrics)
    failures = []
    start = threading.Barrier(EVENT_THREADS + RECOMMEND_THREADS + 1)

    def eventer(thread_id):
        user_id = 300 + thread_id
        start.wait(timeout=30)
        window = online_causer.config.max_history
        for k in range(1, EVENTS_PER_USER + 1):
            basket = [1 + (thread_id * 7 + k) % num_items]
            status, body = client.post(
                "/v1/events", {"user_id": user_id, "basket": basket})
            if status != 200:
                failures.append(f"event {status}: {body}")
                return
            if body["session_length"] != min(k, window):
                failures.append(
                    f"lost update for user {user_id} at event #{k}: "
                    f"{body['session_length']}")
                return

    def recommender(thread_id):
        start.wait(timeout=30)
        last_generation = 0
        for k in range(RECOMMENDS_PER_THREAD):
            user_id = 300 + (thread_id + k) % EVENT_THREADS
            status, body = client.post(
                "/v1/recommend", {"user_id": user_id, "z": 3})
            if status != 200:
                failures.append(f"recommend {status}: {body}")
                return
            generation = body["generation"]
            if generation is None or generation < last_generation:
                failures.append(
                    f"generation moved backwards: "
                    f"{last_generation} -> {generation}")
                return
            last_generation = generation

    def refresher():
        start.wait(timeout=30)
        landed = 0
        # Keep cycling until three refreshes actually published; early
        # rounds may see too thin a window and legitimately skip while
        # the event threads are still warming the log up.
        deadline = time.monotonic() + 90.0
        while landed < REFRESHES and time.monotonic() < deadline:
            trainer.pump()
            if refresh.refresh_once():
                landed += 1
            else:
                time.sleep(0.01)
        if landed < REFRESHES:
            failures.append(f"only {landed}/{REFRESHES} refreshes landed")

    with threadsan(long_hold_ms=2000.0) as san:
        san.instrument_app(app)
        trainer.start()
        threads = ([threading.Thread(target=eventer, args=(i,), daemon=True)
                    for i in range(EVENT_THREADS)]
                   + [threading.Thread(target=recommender, args=(i,),
                                       daemon=True)
                      for i in range(RECOMMEND_THREADS)]
                   + [threading.Thread(target=refresher, daemon=True)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "stress thread wedged"
        trainer.stop()
        assert failures == []
        app.close()
        assert san.findings == [], san.render_report()

    # Three refresh generations landed on top of the install's 1.
    assert refresh.generations == REFRESHES
    assert app.registry.current().generation == 1 + REFRESHES

    # Exactly-once consumption: every complete batch, no batch twice.
    logged = log.next_offset
    assert logged == EVENT_THREADS * EVENTS_PER_USER
    assert trainer.consumed_offset == (logged // BATCH_EVENTS) * BATCH_EVENTS

    # And the log alone reproduces nothing-or-everything semantics: a
    # from-scratch replay interleaving the same refresh adoption points
    # is out of scope here (adoption resets the shadow), but the final
    # post-adoption segment must replay bit-identically.
    resumed = OnlineTrainer(shadow_of(trainer.model), log, lr=0.05,
                            batch_events=BATCH_EVENTS,
                            start_offset=trainer.consumed_offset)
    assert resumed.pump() == 0  # live trainer left no complete batch behind
    assert fingerprint(resumed.model) == fingerprint(trainer.model)
    log.close()
