"""Refresh controller: drift math, sample expansion, publish/adopt cycle."""

import numpy as np
import pytest

from repro.online import (EventLog, EventRecord, OnlineTrainer,
                          RefreshController, build_refresh_samples,
                          edge_churn, score_divergence)
from repro.serve.metrics import MetricsRegistry

from .conftest import fill_log


# -- drift primitives ------------------------------------------------------
def test_edge_churn_counts_added_dropped_flipped():
    previous = np.array([[0.0, 0.5, 0.0],
                         [-0.4, 0.0, 0.1],
                         [0.0, 0.0, 0.0]])
    current = np.array([[0.0, 0.5, 0.4],
                        [0.4, 0.0, 0.1],
                        [0.0, 0.0, 0.0]])
    churn = edge_churn(previous, current, epsilon=0.3)
    # (0,2) crossed up; (1,0) survived but reversed; (0,1) kept;
    # (1,2) is below the gate on both sides — invisible.
    assert churn == {"added": 1, "dropped": 0, "flipped": 1, "kept": 1}
    reverse = edge_churn(current, previous, epsilon=0.3)
    assert reverse["dropped"] == 1 and reverse["added"] == 0


def test_edge_churn_rejects_shape_mismatch():
    with pytest.raises(ValueError, match="shape"):
        edge_churn(np.zeros((2, 2)), np.zeros((3, 3)), epsilon=0.1)


def test_score_divergence_is_zero_for_identical_models(online_causer,
                                                       tiny_split):
    probes = tiny_split.test[:8]
    report = score_divergence(online_causer, online_causer, probes, z=10)
    assert report["mean_abs_delta"] == 0.0
    assert report["topz_overlap"] == 1.0


# -- window → samples ------------------------------------------------------
def test_build_refresh_samples_expands_prefixes():
    records = [EventRecord(0, 1, (3,)), EventRecord(1, 2, (5,)),
               EventRecord(2, 1, (4,)), EventRecord(3, 1, (6, 7)),
               EventRecord(4, 2, ())]
    samples = build_refresh_samples(records, max_history=2)
    assert [(s.user_id, s.history, s.target) for s in samples] == [
        (1, ((3,),), (4,)),
        (1, ((3,), (4,)), (6, 7)),
    ]
    # A long history is windowed to the model's max_history.
    long = [EventRecord(k, 9, (1 + k,)) for k in range(5)]
    windowed = build_refresh_samples(long, max_history=2)
    assert windowed[-1].history == ((3,), (4,))


# -- the full cycle --------------------------------------------------------
def test_refresh_publishes_adopts_and_reports(online_causer, shadow_of,
                                              tiny_split, make_app):
    metrics = MetricsRegistry()
    app, _client = make_app(online_causer)
    log = EventLog(None)
    fill_log(log, 128)
    trainer = OnlineTrainer(shadow_of(online_causer), log, lr=0.05,
                            batch_events=16)
    trainer.pump()
    refresh = RefreshController(trainer, log, app.install_model,
                                window=128, refresh_epochs=1,
                                baseline=online_causer,
                                probes=tiny_split.test[:8],
                                metrics=metrics)
    shadow_before = trainer.model
    assert refresh.refresh_once() is True
    artifacts = app.registry.current()
    assert artifacts.generation == 2  # install bumped past the fixture's 1
    # The trainer continues on a fresh private copy, never the published
    # model (whose arrays the live artifacts alias).
    assert trainer.model is not shadow_before
    report = refresh.last_report
    for key in ("online_edge_churn_added", "online_edge_churn_dropped",
                "online_edge_churn_flipped", "online_score_divergence",
                "online_topz_overlap"):
        assert key in report
        assert metrics.gauge_value(key) == report[key]
    assert metrics.counter_value("online_refresh_total") == 1
    assert 0.0 <= report["online_topz_overlap"] <= 1.0
    log.close()


def test_refresh_skips_when_window_is_too_thin(online_causer, shadow_of,
                                               make_app):
    app, _client = make_app(online_causer)
    log = EventLog(None)
    # Distinct users, one event each: zero trainable prefix samples.
    for user in range(20):
        log.append(user, (1 + user % 5,))
    trainer = OnlineTrainer(shadow_of(online_causer), log, lr=0.05)
    refresh = RefreshController(trainer, log, app.install_model,
                                window=20, min_samples=1,
                                baseline=online_causer)
    assert refresh.refresh_once() is False
    assert app.registry.current().generation == 1  # nothing published
    log.close()


def test_refreshed_generations_are_monotone(online_causer, shadow_of,
                                            make_app):
    app, client = make_app(online_causer)
    log = EventLog(None)
    trainer = OnlineTrainer(shadow_of(online_causer), log, lr=0.05,
                            batch_events=16)
    refresh = RefreshController(trainer, log, app.install_model,
                                window=256, refresh_epochs=1,
                                baseline=online_causer)
    for round_id in range(3):
        fill_log(log, 64, seed=50 + round_id)
        trainer.pump()
        assert refresh.refresh_once() is True
    assert app.registry.current().generation == 4
    assert refresh.generations == 3
    status, body = client.post("/v1/recommend",
                               {"user_id": 1, "history": [[1], [2]],
                                "z": 5})
    assert status == 200 and body["generation"] == 4
    log.close()
