"""Online-suite fixtures: a shared trained Causer, app/log factories."""

import copy

import numpy as np
import pytest

from repro.core import Causer, CauserConfig
from repro.serve import InProcessClient, ServeApp


@pytest.fixture(scope="package")
def online_causer(tiny_dataset, tiny_split):
    """A trained shared-filtering-mode Causer (the online-serving target)."""
    config = CauserConfig(embedding_dim=8, hidden_dim=8, num_epochs=2,
                          batch_size=64, num_clusters=4, epsilon=0.2,
                          eta=0.5, seed=0, max_history=8)
    model = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                   tiny_dataset.features, config)
    model.fit(tiny_split.train)
    return model


@pytest.fixture
def shadow_of():
    """Private trainable copies of a fixture model (never mutate fixtures)."""
    return copy.deepcopy


@pytest.fixture
def make_app():
    """Factory building (ServeApp, InProcessClient) pairs, closed on exit."""
    apps = []

    def _make(model=None, **kwargs):
        kwargs.setdefault("max_wait_ms", 0.5)
        app = ServeApp(**kwargs)
        if model is not None:
            app.install_model(model)
        apps.append(app)
        return app, InProcessClient(app)

    yield _make
    for app in apps:
        app.close()


def fill_log(log, count, num_users=20, num_items=40, seed=3, offset=0):
    """Append ``count`` deterministic events; returns the (user, basket)s."""
    rng = np.random.default_rng(seed)
    events = []
    for _ in range(count):
        user = offset + int(rng.integers(num_users))
        basket = tuple(int(i) for i in rng.integers(1, num_items + 1,
                                                    size=2))
        log.append(user, basket)
        events.append((user, basket))
    return events
