"""EventLog: roundtrip, rotation, recovery, and mirror-eviction contracts."""

import json

import pytest

from repro.online import EventLog

from .conftest import fill_log


def test_append_read_window_roundtrip(tmp_path):
    log = EventLog(tmp_path / "log")
    events = fill_log(log, 10)
    assert log.next_offset == 10
    assert len(log) == 10
    records = log.read(0, 10)
    assert [(r.user_id, r.basket) for r in records] == events
    assert [r.offset for r in records] == list(range(10))
    assert log.read(3, 6) == records[3:6]
    assert log.window(4) == records[6:]
    assert log.window(100) == records
    log.close()


def test_segments_rotate_at_fixed_boundaries(tmp_path):
    log = EventLog(tmp_path / "log", segment_records=4)
    fill_log(log, 10)
    log.close()
    names = sorted(p.name for p in (tmp_path / "log").iterdir())
    assert names == ["events-000000000000.jsonl", "events-000000000004.jsonl",
                     "events-000000000008.jsonl"]
    # Each line is self-describing JSON carrying its global offset.
    first = json.loads(
        (tmp_path / "log" / names[1]).read_text().splitlines()[0])
    assert first["o"] == 4


def test_reopen_recovers_offset_and_appends_continue(tmp_path):
    log = EventLog(tmp_path / "log", segment_records=4)
    events = fill_log(log, 6)
    log.close()

    reopened = EventLog(tmp_path / "log", segment_records=4)
    assert reopened.next_offset == 6
    assert [(r.user_id, r.basket) for r in reopened.read(0, 6)] == events
    offset = reopened.append(99, (1, 2))
    assert offset == 6
    reopened.close()
    # The resumed append landed in the partially-filled last segment.
    lines = (tmp_path / "log"
             / "events-000000000004.jsonl").read_text().splitlines()
    assert [json.loads(line)["o"] for line in lines] == [4, 5, 6]


def test_old_ranges_fall_back_to_disk(tmp_path):
    log = EventLog(tmp_path / "log", segment_records=4, mirror_capacity=3)
    events = fill_log(log, 12)
    # Offsets 0..8 are long gone from the 3-record mirror.
    assert [(r.user_id, r.basket) for r in log.read(0, 12)] == events
    assert [r.offset for r in log.read(2, 7)] == [2, 3, 4, 5, 6]
    log.close()


def test_memory_only_log_raises_on_evicted_range():
    log = EventLog(None, mirror_capacity=4)
    fill_log(log, 10)
    assert [r.offset for r in log.read(6, 10)] == [6, 7, 8, 9]
    with pytest.raises(ValueError, match="evicted"):
        log.read(0, 10)
    log.close()


def test_read_clamps_stop_and_validates_start(tmp_path):
    log = EventLog(tmp_path / "log")
    fill_log(log, 5)
    assert [r.offset for r in log.read(3, 999)] == [3, 4]
    assert log.read(5, 10) == []
    assert log.window(0) == []
    with pytest.raises(ValueError):
        log.read(-1, 3)
    log.close()


def test_append_is_the_event_sink_signature(tmp_path):
    """``log.append`` plugs straight into ``ServeApp.event_sink``."""
    log = EventLog(tmp_path / "log")
    sink = log.append
    sink(7, [3, 4])
    record = log.read(0, 1)[0]
    assert (record.user_id, record.basket) == (7, (3, 4))
    log.close()
