"""``python -m repro.online replay``: bit-reproducible offline replay."""

import json

import pytest

from repro.io import load_model, save_model
from repro.online import EventLog, OnlineTrainer
from repro.online.__main__ import fingerprint, main

from .conftest import fill_log


@pytest.fixture
def logged_run(tmp_path, online_causer):
    """A checkpoint plus a durable log written by a 'live' run."""
    checkpoint = tmp_path / "model.npz"
    save_model(online_causer, checkpoint)
    log_dir = tmp_path / "events"
    log = EventLog(log_dir, segment_records=32)
    fill_log(log, 100)
    live = OnlineTrainer(load_model(checkpoint, mmap=False), log, lr=0.05,
                         batch_events=16, seed=0)
    live.pump()
    log.close()
    return checkpoint, log_dir, fingerprint(live.model)


def _replay(capsys, checkpoint, log_dir, out=None):
    argv = ["replay", "--checkpoint", str(checkpoint),
            "--event-log", str(log_dir), "--online-lr", "0.05",
            "--online-batch-events", "16", "--online-seed", "0"]
    if out is not None:
        argv += ["--out", str(out)]
    assert main(argv) == 0
    return json.loads(capsys.readouterr().out)


def test_replay_bit_reproduces_the_live_shadow(tmp_path, capsys,
                                               logged_run):
    checkpoint, log_dir, live_fingerprint = logged_run
    out = tmp_path / "replayed.npz"
    summary = _replay(capsys, checkpoint, log_dir, out=out)
    assert summary["events_logged"] == 100
    assert summary["events_consumed"] == 96  # 6 complete 16-event batches
    assert summary["batches_applied"] == 6
    assert summary["fingerprint"] == live_fingerprint
    # The saved replay artifact round-trips to the same tables.
    assert fingerprint(load_model(out, mmap=False)) == live_fingerprint


def test_replay_is_deterministic_across_invocations(capsys, logged_run):
    checkpoint, log_dir, _live = logged_run
    first = _replay(capsys, checkpoint, log_dir)
    second = _replay(capsys, checkpoint, log_dir)
    assert first["fingerprint"] == second["fingerprint"]
    assert first["steps"] == second["steps"]
