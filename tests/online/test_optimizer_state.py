"""Optimizer-state round-trip: warm restarts continue bit-identically."""

import numpy as np
import pytest

from repro.io import load_optimizer_state, save_optimizer_state
from repro.nn.optim import make_optimizer
from repro.online import EventLog, OnlineTrainer, select_online_params
from repro.online.__main__ import fingerprint

from .conftest import fill_log


def _pumped_trainer(model, log, optimizer, max_batches=None):
    trainer = OnlineTrainer(model, log, lr=0.05, optimizer=optimizer,
                            batch_events=16)
    trainer.pump(max_batches=max_batches)
    return trainer


@pytest.mark.parametrize("optimizer", ["sgd", "adagrad", "adam"])
def test_state_tables_round_trip_exactly(tmp_path, online_causer, shadow_of,
                                         optimizer):
    log = EventLog(None)
    fill_log(log, 48)
    trainer = _pumped_trainer(shadow_of(online_causer), log, optimizer)
    saved = trainer._optimizer
    path = tmp_path / "opt.npz"
    save_optimizer_state(saved, path)

    fresh = make_optimizer(optimizer, select_online_params(
        shadow_of(online_causer)), lr=0.05)
    load_optimizer_state(fresh, path)
    assert getattr(fresh, "_t", 0) == getattr(saved, "_t", 0)
    for slot in ("_velocity", "_m", "_v", "_row_steps", "_accum"):
        table = getattr(saved, slot, None)
        if table is None:
            continue
        restored = getattr(fresh, slot)
        assert set(restored) == set(table)
        for index in table:
            np.testing.assert_array_equal(restored[index], table[index])
    log.close()


def test_load_rejects_class_and_shape_mismatches(tmp_path, online_causer,
                                                 shadow_of):
    log = EventLog(None)
    fill_log(log, 32)
    trainer = _pumped_trainer(shadow_of(online_causer), log, "adam")
    path = tmp_path / "opt.npz"
    save_optimizer_state(trainer._optimizer, path)

    params = select_online_params(shadow_of(online_causer))
    wrong_class = make_optimizer("sgd", params, lr=0.05)
    with pytest.raises(ValueError, match="Adam"):
        load_optimizer_state(wrong_class, path)
    wrong_count = make_optimizer("adam", params[:2], lr=0.05)
    with pytest.raises(ValueError, match="parameters"):
        load_optimizer_state(wrong_count, path)
    log.close()


@pytest.mark.parametrize("optimizer", ["adagrad", "adam"])
def test_trainer_restart_is_bitwise_warm(tmp_path, online_causer, shadow_of,
                                         optimizer):
    """save_state → restore_state → continue == never having stopped.

    The per-row moments and last-touch steps matter here: a cold-restart
    optimizer would re-run Adam's decay catch-up from step 0 and diverge.
    """
    log = EventLog(None)
    fill_log(log, 96)

    uninterrupted = _pumped_trainer(shadow_of(online_causer), log, optimizer)
    assert uninterrupted.consumed_offset == 96

    first_half = _pumped_trainer(shadow_of(online_causer), log, optimizer,
                                 max_batches=3)
    assert first_half.consumed_offset == 48
    state_dir = tmp_path / "trainer-state"
    first_half.save_state(state_dir)

    resumed = OnlineTrainer(shadow_of(online_causer), log, lr=0.05,
                            optimizer=optimizer, batch_events=16)
    resumed.restore_state(state_dir)
    assert resumed.consumed_offset == 48
    assert fingerprint(resumed.model) == fingerprint(first_half.model)
    resumed.pump()
    assert resumed.consumed_offset == 96
    assert resumed.steps == uninterrupted.steps
    assert fingerprint(resumed.model) == fingerprint(uninterrupted.model)
    log.close()


def test_restore_rejects_sheared_batch_size(tmp_path, online_causer,
                                            shadow_of):
    log = EventLog(None)
    fill_log(log, 32)
    trainer = _pumped_trainer(shadow_of(online_causer), log, "adagrad")
    state_dir = tmp_path / "trainer-state"
    trainer.save_state(state_dir)
    other = OnlineTrainer(shadow_of(online_causer), log, lr=0.05,
                          batch_events=8)
    with pytest.raises(ValueError, match="batch_events"):
        other.restore_state(state_dir)
    log.close()
