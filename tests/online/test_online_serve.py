"""Serving integration: the tee, eviction resync surface, parity, drift win."""

import copy

import numpy as np

from repro.core import Causer, CauserConfig
from repro.data import SimulatorConfig, generate_dataset, leave_one_out_split
from repro.eval.evaluator import evaluate_model
from repro.online import EventLog, OnlineTrainer, RefreshController
from repro.online.__main__ import fingerprint


def test_events_tee_into_the_log(online_causer, make_app):
    app, client = make_app(online_causer)
    log = EventLog(None)
    app.event_sink = log.append
    for k in range(5):
        status, _body = client.post(
            "/v1/events", {"user_id": 7, "basket": [1 + k]})
        assert status == 200
    assert log.next_offset == 5
    assert [r.basket for r in log.read(0, 5)] == [(1,), (2,), (3,), (4,),
                                                  (5,)]
    # Rejected events are not logged.
    status, _body = client.post("/v1/events", {"user_id": 7})
    assert status == 400
    assert log.next_offset == 5
    log.close()


def test_sink_errors_are_counted_never_surfaced(online_causer, make_app):
    app, client = make_app(online_causer)

    def exploding_sink(_user_id, _basket):
        raise RuntimeError("disk full")

    app.event_sink = exploding_sink
    status, body = client.post("/v1/events", {"user_id": 1, "basket": [2]})
    assert status == 200 and body["session_length"] == 1
    assert app.metrics.counter_value("serve_event_sink_errors_total") == 1


def test_session_evictions_are_visible_on_metrics(online_causer, make_app):
    app, client = make_app(online_causer, session_capacity=2)
    for user in range(4):
        status, _body = client.post(
            "/v1/events", {"user_id": user, "basket": [1 + user]})
        assert status == 200
    assert app.sessions.evictions == 2
    assert app.metrics.counter_value("serve_sessions_evicted_total") == 2
    status, text = client.get("/metrics")
    assert status == 200
    assert "serve_sessions_evicted_total 2" in text
    # The evicted user transparently restarts a session on return.
    status, body = client.post("/v1/events", {"user_id": 0, "basket": [9]})
    assert status == 200 and body["session_length"] == 1


def test_online_lr_zero_serves_bit_identical_scores(online_causer,
                                                    make_app):
    """The --online-lr 0 parity contract: tee + trainer attached, zero
    learning rate, refresh disabled → responses byte-equal to a plain
    frozen-checkpoint server fed the same traffic."""
    frozen_app, frozen_client = make_app(online_causer)
    online_app, online_client = make_app(online_causer)
    log = EventLog(None)
    online_app.event_sink = log.append
    trainer = OnlineTrainer(copy.deepcopy(online_causer), log, lr=0.0,
                            batch_events=8, metrics=online_app.metrics)

    rng = np.random.default_rng(5)
    for _ in range(40):
        payload = {"user_id": int(rng.integers(10)),
                   "basket": [int(rng.integers(1, 41))]}
        assert frozen_client.post("/v1/events", payload)[0] == 200
        assert online_client.post("/v1/events", payload)[0] == 200
        trainer.pump()

    for user in range(10):
        frozen = frozen_client.post("/v1/recommend",
                                    {"user_id": user, "z": 10})
        online = online_client.post("/v1/recommend",
                                    {"user_id": user, "z": 10})
        assert frozen == online
    # Events were consumed (lag metrics stay truthful) without updates.
    assert trainer.consumed_offset == 40
    assert trainer.steps == 0
    assert fingerprint(trainer.model) == fingerprint(online_causer)
    log.close()


def test_online_adaptation_beats_frozen_on_drifted_stream(make_app):
    """The headline acceptance criterion: after the event distribution
    drifts (a different causal DAG and popularity curve), pumping the
    stream through the online trainer and one warm refresh beats the
    frozen offline checkpoint on post-drift held-out HR@10 and NDCG@10.
    """
    model_config = CauserConfig(embedding_dim=8, hidden_dim=8, num_epochs=2,
                                batch_size=64, num_clusters=4, epsilon=0.2,
                                eta=0.5, seed=0, max_history=8)
    phase1 = generate_dataset(SimulatorConfig(num_users=60, num_items=40,
                                              num_clusters=4, seed=7),
                              "phase1")
    phase2 = generate_dataset(SimulatorConfig(num_users=60, num_items=40,
                                              num_clusters=4, seed=11),
                              "phase2")
    split1 = leave_one_out_split(phase1.corpus)
    split2 = leave_one_out_split(phase2.corpus)
    frozen = Causer(phase1.corpus.num_users, phase1.num_items,
                    phase1.features, model_config)
    frozen.fit(split1.train)

    app, client = make_app(frozen)
    log = EventLog(None, mirror_capacity=4096)
    app.event_sink = log.append

    # Replay the post-drift training interactions through /v1/events,
    # round-robin across users (a realistic interleaved stream).
    sequences = list(split2.train)
    cursors = [0] * len(sequences)
    streaming = True
    while streaming:
        streaming = False
        for index, sequence in enumerate(sequences):
            if cursors[index] < len(sequence.baskets):
                status, _body = client.post(
                    "/v1/events",
                    {"user_id": sequence.user_id,
                     "basket": list(sequence.baskets[cursors[index]])})
                assert status == 200
                cursors[index] += 1
                streaming = True

    trainer = OnlineTrainer(copy.deepcopy(frozen), log, lr=0.05,
                            batch_events=32, metrics=app.metrics)
    trainer.pump()
    published = []
    refresh = RefreshController(trainer, log, published.append,
                                window=log.next_offset, refresh_epochs=2,
                                baseline=frozen, probes=split2.test[:16],
                                metrics=app.metrics)
    assert refresh.refresh_once() is True
    adapted = published[-1]

    frozen_result = evaluate_model(frozen, split2.test, 10)
    adapted_result = evaluate_model(adapted, split2.test, 10)
    assert adapted_result.mean("hit") > frozen_result.mean("hit")
    assert adapted_result.mean("ndcg") > frozen_result.mean("ndcg")
    # Drift was real and measured: the graph churned or scores moved.
    report = refresh.last_report
    assert report["online_score_divergence"] > 0.0
    assert report["online_topz_overlap"] < 1.0
    log.close()
