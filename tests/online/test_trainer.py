"""OnlineTrainer: exactly-once, replay determinism, resync, lr=0 no-op."""

import numpy as np
import pytest

from repro.online import EventLog, OnlineTrainer
from repro.online.__main__ import fingerprint
from repro.serve.metrics import MetricsRegistry

from .conftest import fill_log


def test_partial_batches_are_never_applied(online_causer, shadow_of):
    log = EventLog(None)
    trainer = OnlineTrainer(shadow_of(online_causer), log, lr=0.05,
                            batch_events=16)
    fill_log(log, 15)
    assert trainer.pump() == 0
    assert trainer.consumed_offset == 0
    log.append(5, (1,))
    assert trainer.pump() == 1
    assert trainer.consumed_offset == 16
    log.close()


def test_each_offset_is_consumed_exactly_once(online_causer, shadow_of):
    log = EventLog(None)
    fill_log(log, 64)
    trainer = OnlineTrainer(shadow_of(online_causer), log, lr=0.05,
                            batch_events=16)
    assert trainer.pump() == 4
    before = fingerprint(trainer.model)
    # Re-pumping with no new events must not re-apply anything.
    assert trainer.pump() == 0
    assert trainer.consumed_offset == 64
    assert fingerprint(trainer.model) == before
    log.close()


def test_incremental_pumping_matches_oneshot_replay(online_causer,
                                                    shadow_of):
    """Bit-identical shadow tables whether batches were applied as events
    trickled in or all at once from the log afterwards — the replay
    guarantee that makes ``repro.online replay`` a debugging tool."""
    log = EventLog(None)
    live = OnlineTrainer(shadow_of(online_causer), log, lr=0.05,
                         batch_events=16, seed=3)
    for chunk in range(8):
        fill_log(log, 24, seed=100 + chunk)
        live.pump()
    replayed = OnlineTrainer(shadow_of(online_causer), log, lr=0.05,
                             batch_events=16, seed=3)
    replayed.pump()
    assert live.consumed_offset == replayed.consumed_offset == 192
    assert live.steps == replayed.steps
    assert fingerprint(live.model) == fingerprint(replayed.model)
    log.close()


def test_lr_zero_consumes_without_touching_parameters(online_causer,
                                                      shadow_of):
    log = EventLog(None)
    fill_log(log, 48)
    trainer = OnlineTrainer(shadow_of(online_causer), log, lr=0.0,
                            batch_events=16)
    before = fingerprint(trainer.model)
    assert trainer.pump() == 3
    assert trainer.consumed_offset == 48
    assert trainer.steps == 0
    assert fingerprint(trainer.model) == before
    assert fingerprint(trainer.model) == fingerprint(online_causer)
    log.close()


def test_tail_eviction_resyncs_instead_of_corrupting(online_causer,
                                                     shadow_of):
    """A user returning after their history tail was evicted starts a
    fresh session (counted), never a corrupt append."""
    metrics = MetricsRegistry()
    log = EventLog(None)
    # Two users in pairs of two events with a 1-tail LRU: each pair's
    # second event trains, and each user's return evicts the other —
    # every return after the first is a resync.
    for k in range(16):
        log.append((k // 2) % 2, (1 + k % 5,))
    trainer = OnlineTrainer(shadow_of(online_causer), log, lr=0.05,
                            batch_events=16, tail_capacity=1,
                            metrics=metrics)
    assert trainer.pump() == 1
    assert metrics.counter_value("online_trainer_resyncs_total") == 6
    assert metrics.counter_value("online_events_consumed_total") == 16
    # Resynced sessions still train: the pair-second events made samples.
    assert trainer.steps == 1
    log.close()


def test_empty_baskets_and_cold_starts_are_skipped(online_causer,
                                                   shadow_of):
    log = EventLog(None)
    # One event per distinct user: every event is a cold start, so a full
    # batch yields zero trainable samples — consumed, but no step.
    for user in range(16):
        log.append(user, (1 + user % 5,))
    trainer = OnlineTrainer(shadow_of(online_causer), log, lr=0.05,
                            batch_events=16)
    assert trainer.pump() == 1
    assert trainer.steps == 0
    assert trainer.consumed_offset == 16
    log.close()


def test_start_offset_must_align_with_batches(online_causer, shadow_of):
    log = EventLog(None)
    with pytest.raises(ValueError, match="micro-batch boundary"):
        OnlineTrainer(shadow_of(online_causer), log, lr=0.05,
                      batch_events=16, start_offset=8)
    log.close()


def test_background_thread_drains_the_log(online_causer, shadow_of):
    log = EventLog(None)
    trainer = OnlineTrainer(shadow_of(online_causer), log, lr=0.05,
                            batch_events=16, poll_interval=0.01)
    trainer.start()
    try:
        fill_log(log, 64)
    finally:
        trainer.stop()  # stop() drains remaining complete batches
    assert trainer.consumed_offset == 64
    # Background consumption produced the same tables as a clean replay.
    replayed = OnlineTrainer(shadow_of(online_causer), log, lr=0.05,
                             batch_events=16)
    replayed.pump()
    assert fingerprint(trainer.model) == fingerprint(replayed.model)
    log.close()
