"""Smoke tests for the per-table/figure experiment functions (quick mode)."""

import numpy as np
import pytest

from repro.exp import (ABLATION_VARIANTS, causer_parameter_sweep,
                       efficiency_study, figure3_sequence_lengths,
                       figure7_explanation, figure8_case_studies,
                       quick_settings, table2_statistics, table4_overall,
                       table5_ablation)


@pytest.fixture(scope="module")
def settings():
    return quick_settings()


class TestTable2AndFigure3:
    def test_table2_all_rows(self, settings):
        result = table2_statistics(settings)
        assert len(result.rows) == 5
        assert "Table II" in result.render()

    def test_figure3_histograms(self, settings):
        result = figure3_sequence_lengths(settings)
        assert set(result.histograms) == {"epinions", "foursquare", "patio",
                                          "baby", "video"}
        assert "Figure 3" in result.render()


class TestTable4:
    def test_small_grid(self, settings):
        result = table4_overall(settings, datasets=("baby",),
                                models=("Pop", "GRU4Rec", "Causer (GRU)"))
        assert "baby" in result.f1["Pop"]
        assert "baby" in result.ndcg["Causer (GRU)"]
        rendered = result.render()
        assert "Table IV" in rendered
        assert "NDCG@5" in rendered

    def test_best_baseline_excludes_causer(self, settings):
        result = table4_overall(settings, datasets=("baby",),
                                models=("Pop", "Causer (GRU)"))
        name, _ = result.best_baseline("baby")
        assert name == "Pop"

    def test_improvement_computable(self, settings):
        result = table4_overall(settings, datasets=("baby",),
                                models=("Pop", "Causer (GRU)"))
        assert np.isfinite(result.causer_improvement("ndcg"))


class TestSweeps:
    def test_epsilon_sweep_series(self, settings):
        result = causer_parameter_sweep("epsilon", (0.1, 0.5), settings,
                                        datasets=("baby",), cells=("gru",))
        assert result.values == [0.1, 0.5]
        assert len(result.ndcg["baby/gru"]) == 2
        assert "ε" in result.render() or "epsilon" in result.render()

    def test_best_value(self, settings):
        result = causer_parameter_sweep("num_clusters", (3, 5), settings,
                                        datasets=("baby",), cells=("gru",))
        assert result.best_value("baby/gru") in (3, 5)


class TestTable5:
    def test_all_variants_present(self, settings):
        result = table5_ablation(settings, datasets=("baby",),
                                 cells=("gru",))
        for variant in ABLATION_VARIANTS:
            assert "baby/gru" in result.ndcg[variant]
        assert "Table V" in result.render()


class TestFigure7And8:
    def test_figure7_output(self, settings):
        result = figure7_explanation(settings, cells=("gru",),
                                     max_samples=50)
        assert result.num_samples > 0
        assert any("Causer/gru" == k for k in result.f1)
        assert "Figure 7" in result.render()

    def test_figure8_cases(self, settings):
        result = figure8_case_studies(settings, num_cases=2)
        assert len(result.cases) == 2
        assert "true causes" in result.render()


class TestEfficiency:
    def test_efficiency_quantities(self, settings):
        result = efficiency_study(settings)
        assert result.train_every_epoch_seconds > 0
        assert result.train_slow_updates_seconds > 0
        assert result.inference_ratio > 0
        assert "§III-C" in result.render()
