"""Pure-unit tests for the experiment result dataclasses (no training)."""

import numpy as np
import pytest

from repro.exp.experiments import (EfficiencyResult, Figure3Result,
                                   Figure7Result, SweepResult, Table2Result,
                                   Table4Result, Table5Result)
from repro.exp.grid import GridSearchResult, grid_combinations


class TestGridSearchResult:
    def test_best_on_empty_scores_names_the_grid(self):
        result = GridSearchResult(parameter_grid={"epsilon": [0.1, 0.3]})
        with pytest.raises(ValueError, match=r"epsilon.*no scores"):
            result.best

    def test_top_on_empty_scores_is_empty_list(self):
        result = GridSearchResult(parameter_grid={"epsilon": []})
        assert result.top(5) == []

    def test_top_sorted_descending(self):
        result = GridSearchResult(
            parameter_grid={"epsilon": [0.1, 0.2, 0.3]},
            scores=[({"epsilon": 0.1}, 1.0), ({"epsilon": 0.2}, 3.0),
                    ({"epsilon": 0.3}, 2.0)])
        assert [s for _, s in result.top(2)] == [3.0, 2.0]
        assert result.best == ({"epsilon": 0.2}, 3.0)

    def test_grid_combinations_product_order(self):
        combos = grid_combinations({"a": [1, 2], "b": ["x"]})
        assert combos == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]
        assert grid_combinations({"a": []}) == []


class TestTable4Result:
    def make(self):
        return Table4Result(
            datasets=["d1", "d2"],
            models=["Base", "Other", "Causer (GRU)"],
            f1={"Base": {"d1": 1.0, "d2": 2.0},
                "Other": {"d1": 1.5, "d2": 1.0},
                "Causer (GRU)": {"d1": 2.0, "d2": 2.2}},
            ndcg={"Base": {"d1": 2.0, "d2": 4.0},
                  "Other": {"d1": 3.0, "d2": 2.0},
                  "Causer (GRU)": {"d1": 4.5, "d2": 4.4}},
            stars={"Causer (GRU)": {"d1": "*"}})

    def test_best_baseline_excludes_causer(self):
        result = self.make()
        name, value = result.best_baseline("d1")
        assert name == "Other"
        assert value == 3.0

    def test_best_baseline_f1_metric(self):
        result = self.make()
        name, value = result.best_baseline("d2", metric="f1")
        assert name == "Base"
        assert value == 2.0

    def test_causer_improvement(self):
        result = self.make()
        # d1: (4.5-3)/3 = 50%; d2: (4.4-4)/4 = 10% -> mean 30%.
        assert result.causer_improvement("ndcg") == pytest.approx(30.0)

    def test_render_includes_stars(self):
        text = self.make().render()
        assert "4.50*" in text
        assert "Causer mean improvement" in text


class TestSweepResult:
    def make(self):
        return SweepResult(parameter="epsilon", values=[0.1, 0.5, 0.9],
                           ndcg={"baby/gru": [1.0, 3.0, 2.0]})

    def test_best_value(self):
        assert self.make().best_value("baby/gru") == 0.5

    def test_render_title(self):
        assert "Figure 5" in self.make().render()

    def test_unknown_parameter_renders_raw(self):
        sweep = SweepResult(parameter="gamma", values=[1],
                            ndcg={"x": [1.0]})
        assert "gamma" in sweep.render()


class TestOtherResults:
    def test_table2_render(self):
        result = Table2Result(rows=[("baby", 10, 5, 30, 3.0, "99.00%")])
        assert "baby" in result.render()

    def test_figure3_render_skips_empty_buckets(self):
        result = Figure3Result(histograms={"baby": {"3": 5, "4": 0}})
        text = result.render()
        assert "3: 5" in text
        assert "4: 0" not in text

    def test_table5_render_labels(self):
        result = Table5Result(
            ndcg={v: {"baby/gru": 1.0}
                  for v in ("-rec", "-clus", "-att", "-causal", "full")},
            columns=["baby/gru"])
        text = result.render()
        assert "Causer (-rec)" in text
        assert "Causer " in text

    def test_figure7_render(self):
        result = Figure7Result(f1={"Causer/gru": 50.0},
                               ndcg={"Causer/gru": 60.0},
                               num_samples=100, avg_causes=1.5)
        text = result.render()
        assert "100" in text and "1.5" in text

    def test_efficiency_properties(self):
        result = EfficiencyResult(train_every_epoch_seconds=10.0,
                                  train_slow_updates_seconds=8.0,
                                  causer_inference_seconds=2.0,
                                  sasrec_inference_seconds=1.0)
        assert result.training_speedup_percent == pytest.approx(20.0)
        assert result.inference_ratio == pytest.approx(2.0)

    def test_efficiency_zero_guards(self):
        result = EfficiencyResult(train_every_epoch_seconds=0.0,
                                  train_slow_updates_seconds=0.0,
                                  causer_inference_seconds=1.0,
                                  sasrec_inference_seconds=0.0)
        assert result.training_speedup_percent == 0.0
        assert result.inference_ratio == float("inf")
