"""Tests for the experiment harness: configs, runner, tables, grid."""

import numpy as np
import pytest

from repro.exp import (ALL_MODEL_NAMES, CAUSER_TUNED, BenchmarkSettings,
                       GridSearchResult, build_model, grid_search_causer,
                       quick_settings, render_metric_matrix, render_series,
                       render_table, run_model)
from repro.data import load_dataset


class TestSettings:
    def test_train_config_budget(self):
        settings = BenchmarkSettings(num_epochs=7)
        assert settings.train_config().num_epochs == 7

    def test_quick_cuts_epochs(self):
        settings = BenchmarkSettings(num_epochs=20, quick=True)
        assert settings.train_config().num_epochs == 2
        assert settings.causer_config("baby").num_epochs == 2

    def test_causer_config_uses_tuned_values(self):
        settings = BenchmarkSettings()
        for dataset, tuned in CAUSER_TUNED.items():
            config = settings.causer_config(dataset)
            assert config.num_clusters == tuned["num_clusters"]
            assert config.epsilon == tuned["epsilon"]

    def test_causer_config_overrides(self):
        settings = BenchmarkSettings()
        config = settings.causer_config("baby", epsilon=0.77)
        assert config.epsilon == 0.77

    def test_unknown_dataset_falls_back(self):
        settings = BenchmarkSettings()
        config = settings.causer_config("mystery")
        assert config.num_clusters == CAUSER_TUNED["baby"]["num_clusters"]


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(("a", "long_header"), [(1, 2.5), (30, 4.0)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_render_table_title(self):
        text = render_table(("x",), [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_render_metric_matrix(self):
        text = render_metric_matrix(
            ["m1", "m2"], ["d1"], {"m1": {"d1": 1.234}, "m2": {}},
            stars={"m1": {"d1": "*"}})
        assert "1.23*" in text
        assert "-" in text  # missing cell

    def test_render_series(self):
        text = render_series("K", [2, 4], {"baby": [1.0, 2.0]})
        assert "K" in text and "baby" in text


class TestRunner:
    def test_unknown_model(self):
        settings = quick_settings()
        dataset = load_dataset("baby", scale=0.02, seed=1)
        with pytest.raises(KeyError):
            build_model("DeepFM", dataset, settings)

    @pytest.mark.parametrize("name", ["Pop", "GRU4Rec", "Causer (GRU)"])
    def test_run_model_end_to_end(self, name):
        settings = quick_settings()
        dataset = load_dataset("baby", scale=0.02, seed=1)
        run = run_model(name, dataset, settings)
        assert run.model_name == name
        assert 0.0 <= run.f1 <= 100.0
        assert 0.0 <= run.ndcg <= 100.0
        assert run.fit_seconds > 0

    def test_all_model_names_buildable(self):
        settings = quick_settings()
        dataset = load_dataset("baby", scale=0.02, seed=1)
        for name in ALL_MODEL_NAMES:
            model = build_model(name, dataset, settings)
            assert model is not None


class TestGridSearch:
    def test_grid_search_scores_all_combos(self):
        settings = quick_settings()
        dataset = load_dataset("baby", scale=0.02, seed=1)
        result = grid_search_causer(dataset,
                                    {"epsilon": [0.1, 0.3],
                                     "num_clusters": [4]},
                                    settings=settings)
        assert len(result.scores) == 2
        best_config, best_score = result.best
        assert best_config["epsilon"] in (0.1, 0.3)
        assert best_score >= result.top(2)[-1][1]
