"""Module-level task functions for the pool tests.

They live in a real importable module (not the test files) so they pickle
by qualified name under every start method, including ``spawn``.
"""

import os
import time

import numpy as np


def square(x):
    return x * x


def seeded_normal(spec, seed_seq):
    """Draw ``spec`` numbers from the task's derived seed sequence."""
    rng = np.random.default_rng(seed_seq)
    return [float(v) for v in rng.normal(size=spec)]


def explode_on_two(x):
    if x == 2:
        raise ValueError("task exploded on purpose")
    return x


def sleep_for(seconds):
    time.sleep(seconds)
    return seconds


def succeed_on_retry(path):
    """Fail on the first attempt; succeed once a marker file exists."""
    if os.path.exists(path):
        return "second attempt"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("attempt 1\n")
    raise RuntimeError("flaky first attempt")


def nested_map(values):
    """A task that itself fans out — must fall back to serial and work."""
    from repro.parallel import process_map, unwrap
    return unwrap(process_map(square, values, workers=4))


def read_blas_env(_):
    return {var: os.environ.get(var)
            for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS")}


def hard_exit(_):
    """Kill the worker process without a traceback (simulated crash)."""
    os._exit(17)
