"""Pool-core tests: determinism, fallback, failure capture, timeouts."""

import numpy as np
import pytest

from repro.parallel import (DEFAULT_WORKER_CAP, ProcessMap, WorkerError,
                            available_cpus, default_workers, process_map,
                            resolve_workers, task_seed_sequence, unwrap)

from . import tasks


class TestWorkerResolution:
    def test_serial_for_single_task(self):
        assert resolve_workers(8, 1) == 1

    def test_zero_and_one_force_serial(self):
        assert resolve_workers(0, 10) == 1
        assert resolve_workers(1, 10) == 1

    def test_clamped_to_task_count(self):
        assert resolve_workers(8, 3) == 3

    def test_default_workers_capped(self):
        assert 1 <= default_workers() <= DEFAULT_WORKER_CAP
        assert default_workers(cap=2) <= 2

    def test_available_cpus_positive(self):
        assert available_cpus() >= 1


class TestSeedDerivation:
    def test_matches_seedsequence_spawn(self):
        spawned = np.random.SeedSequence(7).spawn(5)
        for index in range(5):
            derived = task_seed_sequence(7, index)
            assert (derived.generate_state(4).tolist()
                    == spawned[index].generate_state(4).tolist())

    def test_independent_of_worker_count(self):
        serial = unwrap(process_map(tasks.seeded_normal, [3] * 6,
                                    workers=1, seed=123))
        fanned = unwrap(process_map(tasks.seeded_normal, [3] * 6,
                                    workers=3, seed=123))
        assert serial == fanned  # bit-identical floats, not approx

    def test_distinct_per_task(self):
        draws = unwrap(process_map(tasks.seeded_normal, [2] * 4,
                                   workers=1, seed=0))
        assert len({tuple(d) for d in draws}) == 4


class TestMapping:
    def test_results_in_spec_order(self):
        results = process_map(tasks.square, list(range(10)), workers=3)
        assert [r.index for r in results] == list(range(10))
        assert unwrap(results) == [x * x for x in range(10)]

    def test_empty_specs(self):
        assert process_map(tasks.square, [], workers=4) == []

    def test_serial_fallback_matches(self):
        serial = unwrap(process_map(tasks.square, [1, 2, 3], workers=1))
        assert serial == [1, 4, 9]

    def test_spawn_context(self):
        results = process_map(tasks.square, [4, 5], workers=2,
                              context="spawn")
        assert unwrap(results) == [16, 25]

    def test_nested_region_falls_back_to_serial(self):
        results = process_map(tasks.nested_map, [[1, 2], [3]], workers=2)
        assert unwrap(results) == [[1, 4], [9]]

    def test_unpicklable_spec_fails_fast(self):
        with pytest.raises(TypeError, match="not picklable"):
            process_map(tasks.square, [lambda: None], workers=2)

    def test_workers_pin_blas_env(self):
        envs = unwrap(process_map(tasks.read_blas_env, [None, None],
                                  workers=2))
        for worker_env in envs:
            assert worker_env["OMP_NUM_THREADS"] == "1"
            assert worker_env["OPENBLAS_NUM_THREADS"] == "1"


class TestFailureCapture:
    def test_traceback_captured_without_killing_run(self):
        results = process_map(tasks.explode_on_two, [0, 1, 2, 3], workers=2,
                              retries=0)
        oks = [r for r in results if r.ok]
        bad = results[2]
        assert [r.value for r in oks] == [0, 1, 3]
        assert not bad.ok
        assert "ValueError" in bad.error
        assert "task exploded on purpose" in bad.error

    def test_serial_capture_is_identical_in_shape(self):
        results = process_map(tasks.explode_on_two, [0, 1, 2, 3], workers=1)
        assert [r.ok for r in results] == [True, True, False, True]
        assert "task exploded on purpose" in results[2].error

    def test_unwrap_raises_worker_error(self):
        results = process_map(tasks.explode_on_two, [2], workers=1)
        with pytest.raises(WorkerError, match="exploded on purpose"):
            unwrap(results, context="demo task")

    def test_retry_once_recovers_flaky_task(self, tmp_path):
        marker = str(tmp_path / "attempt.marker")
        results = process_map(tasks.succeed_on_retry, [marker, marker],
                              workers=2, retries=1)
        assert all(r.ok for r in results)
        assert any(r.attempts == 2 for r in results)

    def test_worker_hard_crash_is_reported(self):
        results = process_map(tasks.hard_exit, [None, None], workers=2,
                              retries=0)
        assert all(not r.ok for r in results)
        assert any("died" in r.error for r in results)

    def test_retries_validation(self):
        with pytest.raises(ValueError):
            ProcessMap(2, retries=-1)
        with pytest.raises(ValueError):
            ProcessMap(2, timeout=0.0)


class TestTimeout:
    def test_timeout_kills_task_but_not_run(self):
        results = process_map(tasks.sleep_for, [0.01, 30.0], workers=2,
                              timeout=0.5, retries=0)
        assert results[0].ok and results[0].value == 0.01
        assert not results[1].ok
        assert results[1].timed_out
        assert "timed out" in results[1].error

    def test_timeout_retry_then_fail(self):
        results = process_map(tasks.sleep_for, [0.01, 30.0], workers=2,
                              timeout=0.4, retries=1)
        assert not results[1].ok
        assert results[1].timed_out
        assert results[1].attempts == 2
