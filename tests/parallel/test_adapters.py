"""Serial/parallel equivalence for the wired fan-out sites.

Every assertion here is exact (``==`` on floats), not approximate: the
adapters' contract is that worker count never changes a single bit of the
results.
"""

import pickle

import numpy as np
import pytest

from repro.data import load_dataset
from repro.data.interactions import leave_one_out_split
from repro.eval import (evaluate_model, multi_seed_evaluation,
                        pooled_paired_t_test)
from repro.exp import BenchmarkSettings, grid_search_causer, run_models
from repro.exp.runner import build_model
from repro.nn import Tensor
from repro.parallel import (WorkerError, map_seeds, run_models_parallel,
                            shard_batch_ranges)

from .tasks import square


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("baby", scale=0.02, seed=1)


@pytest.fixture(scope="module")
def settings():
    return BenchmarkSettings(scale=0.02, num_epochs=2, quick=True)


def assert_runs_identical(runs_a, runs_b):
    assert [r.model_name for r in runs_a] == [r.model_name for r in runs_b]
    for a, b in zip(runs_a, runs_b):
        assert a.final_loss == b.final_loss
        assert a.result.per_user == b.result.per_user  # exact, per metric


class TestRunnerEquivalence:
    def test_workers_1_vs_4_bit_identical(self, dataset, settings):
        names = ("Pop", "BPR", "GRU4Rec")
        serial = run_models(names, dataset, settings, workers=1)
        fanned = run_models(names, dataset, settings, workers=4)
        assert_runs_identical(serial, fanned)

    def test_worker_crash_surfaces_traceback(self, dataset, settings):
        with pytest.raises(WorkerError, match="unknown model name"):
            run_models_parallel(("Pop", "no-such-model"), dataset, settings,
                                workers=2)


class TestGridEquivalence:
    def test_workers_1_vs_4_identical_scores(self, dataset, settings):
        grid = {"epsilon": [0.2, 0.3]}
        serial = grid_search_causer(dataset, grid, settings, workers=1)
        fanned = grid_search_causer(dataset, grid, settings, workers=4)
        assert serial.scores == fanned.scores  # same overrides, same floats
        assert serial.best == fanned.best


class TestShardedEvaluation:
    def test_workers_1_vs_4_identical_per_user(self, dataset, settings):
        split = leave_one_out_split(dataset.corpus)
        model = build_model("GRU4Rec", dataset, settings)
        model.fit(split.train)
        serial = evaluate_model(model, split.test, z=5, batch_size=16,
                                workers=1)
        fanned = evaluate_model(model, split.test, z=5, batch_size=16,
                                workers=4)
        assert serial.per_user == fanned.per_user

    def test_shards_align_to_batches(self):
        ranges = shard_batch_ranges(num_samples=330, batch_size=16,
                                    num_shards=4)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 330
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start
            assert stop % 16 == 0  # interior boundaries on batch edges

    def test_shards_clamped_to_batch_count(self):
        ranges = shard_batch_ranges(num_samples=10, batch_size=16,
                                    num_shards=8)
        assert ranges == [(0, 10)]


class TestSeedFanout:
    def test_map_seeds_orders_results(self):
        assert map_seeds(square, (3, 1, 2), workers=2) == [9, 1, 4]

    def test_multi_seed_evaluation_equivalence(self, dataset, settings):
        serial = multi_seed_evaluation("BPR", dataset, settings,
                                       seeds=(0, 1), workers=1)
        fanned = multi_seed_evaluation("BPR", dataset, settings,
                                       seeds=(0, 1), workers=2)
        assert_runs_identical(serial, fanned)
        assert serial[0].final_loss != serial[1].final_loss  # seeds matter

    def test_pooled_t_test(self, dataset, settings):
        bpr = multi_seed_evaluation("BPR", dataset, settings,
                                    seeds=(0, 1), workers=2)
        pop = multi_seed_evaluation("Pop", dataset, settings,
                                    seeds=(0, 1), workers=2)
        test = pooled_paired_t_test(bpr, pop, metric="ndcg")
        assert 0.0 <= test.p_value <= 1.0
        with pytest.raises(ValueError, match="matching run lists"):
            pooled_paired_t_test(bpr, pop[:1])


class TestTensorPickling:
    def test_pickle_detaches_from_graph(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = (x * 3.0).sum()
        clone = pickle.loads(pickle.dumps(y))
        assert clone.data == y.data
        assert clone._backward is None and clone._parents == ()

    def test_trained_model_roundtrip_scores_identically(self, dataset,
                                                        settings):
        split = leave_one_out_split(dataset.corpus)
        model = build_model("BPR", dataset, settings)
        model.fit(split.train)
        clone = pickle.loads(pickle.dumps(model))
        samples = split.test[:8]
        assert (clone.score_samples(samples)
                == model.score_samples(samples)).all()
