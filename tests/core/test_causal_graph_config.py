"""Tests for the cluster-level causal graph module and CauserConfig."""

import numpy as np
import pytest

from repro.causal import h_value, is_dag
from repro.core import CauserConfig, ClusterCausalGraph, ablation_config
from repro.nn import Tensor


@pytest.fixture
def graph():
    return ClusterCausalGraph(4, np.random.default_rng(0))


class TestClusterCausalGraph:
    def test_diagonal_structurally_zero(self, graph):
        np.testing.assert_allclose(np.diag(graph.matrix().data), 0.0)
        graph.weights.data[...] = 1.0
        np.testing.assert_allclose(np.diag(graph.matrix().data), 0.0)

    def test_init_above_typical_thresholds(self, graph):
        off_diag = graph.numpy_matrix()[~np.eye(4, dtype=bool)]
        assert (off_diag >= 0.3).all()

    def test_item_level_matches_manual(self, graph):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(7, 4))
        assignments = np.exp(logits)
        assignments /= assignments.sum(axis=-1, keepdims=True)
        item_level = graph.item_level(Tensor(assignments)).data
        manual = assignments @ graph.numpy_matrix() @ assignments.T
        np.testing.assert_allclose(item_level, manual, rtol=1e-12)

    def test_acyclicity_matches_h_value(self, graph):
        assert graph.acyclicity().item() == pytest.approx(
            h_value(graph.numpy_matrix()), rel=1e-12)
        assert graph.acyclicity_value() == pytest.approx(
            graph.acyclicity().item())

    def test_acyclicity_gradient_flows(self, graph):
        graph.acyclicity().backward()
        assert graph.weights.grad is not None
        assert np.abs(graph.weights.grad).sum() > 0

    def test_l1(self, graph):
        expected = np.abs(graph.numpy_matrix()).sum()
        assert graph.l1().item() == pytest.approx(expected)

    def test_thresholded_binary(self, graph):
        binary = graph.thresholded(0.5)
        assert set(np.unique(binary)) <= {0, 1}

    def test_as_dag(self, graph):
        dag = graph.as_dag(threshold=0.1)
        assert is_dag(dag)

    def test_is_acyclic_on_dense_init(self, graph):
        # Dense positive init has cycles above a small threshold.
        assert not graph.is_acyclic(threshold=0.1)


class TestCauserConfig:
    def test_defaults_valid(self):
        CauserConfig()  # must not raise

    @pytest.mark.parametrize("field,value", [
        ("cell_type", "transformer"),
        ("num_clusters", 1),
        ("epsilon", 1.5),
        ("eta", 0.0),
        ("kappa1", 0.5),
        ("kappa2", 1.5),
        ("update_every", 0),
        ("filtering_mode", "fuzzy"),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            CauserConfig(**{field: value})

    def test_ablation_variants(self):
        base = CauserConfig()
        assert not ablation_config(base, "-clus").use_clustering_loss
        assert not ablation_config(base, "-rec").use_reconstruction_loss
        assert not ablation_config(base, "-att").use_attention
        assert not ablation_config(base, "-causal").use_causal
        full = ablation_config(base, "full")
        assert full.use_causal and full.use_attention

    def test_ablation_does_not_mutate_base(self):
        base = CauserConfig()
        ablation_config(base, "-causal")
        assert base.use_causal

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            ablation_config(CauserConfig(), "-everything")
