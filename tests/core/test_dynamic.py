"""Tests for the dynamic (time-segmented) causal graph extension."""

import numpy as np
import pytest

from repro.core import CauserConfig, DynamicCauser, DynamicClusterCausalGraph
from repro.data import pad_samples
from repro.eval import evaluate_model


def quick_config(**overrides):
    defaults = dict(embedding_dim=8, hidden_dim=8, num_epochs=2,
                    batch_size=64, max_history=8, num_clusters=4,
                    epsilon=0.2, eta=0.5, lambda_l1=0.001, seed=0)
    defaults.update(overrides)
    return CauserConfig(**defaults)


class TestDynamicGraphModule:
    def test_needs_segments(self):
        with pytest.raises(ValueError):
            DynamicClusterCausalGraph(4, 0, np.random.default_rng(0))

    def test_segment_matrices_independent(self):
        graph = DynamicClusterCausalGraph(4, 2, np.random.default_rng(0))
        graph.segments[0].weights.data[...] = 0.0
        assert graph.numpy_matrix(1).sum() > 0
        assert graph.numpy_matrix(0).sum() == 0

    def test_acyclicity_sums_segments(self):
        graph = DynamicClusterCausalGraph(3, 2, np.random.default_rng(1))
        total = graph.acyclicity_value()
        parts = sum(g.acyclicity_value() for g in graph.segments)
        assert total == pytest.approx(parts)

    def test_drift(self):
        graph = DynamicClusterCausalGraph(3, 2, np.random.default_rng(2))
        graph.segments[0].weights.data[...] = 0.5
        graph.segments[1].weights.data[...] = 0.5
        assert graph.drift() == pytest.approx(0.0)
        graph.segments[1].weights.data[...] = 0.7
        assert graph.drift() > 0.0

    def test_single_segment_drift_zero(self):
        graph = DynamicClusterCausalGraph(3, 1, np.random.default_rng(3))
        assert graph.drift() == 0.0

    def test_parameters_registered(self):
        graph = DynamicClusterCausalGraph(3, 3, np.random.default_rng(4))
        assert len(list(graph.parameters())) == 3


class TestDynamicCauser:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_dataset, tiny_split):
        model = DynamicCauser(tiny_dataset.corpus.num_users,
                              tiny_dataset.num_items, tiny_dataset.features,
                              quick_config(num_epochs=3), num_segments=2,
                              recent_window=2)
        fit = model.fit(tiny_split.train)
        return model, fit

    def test_trains(self, fitted):
        _, fit = fitted
        assert np.isfinite(fit.final_loss)
        assert fit.epoch_losses[-1] < fit.epoch_losses[0]

    def test_segment_assignment(self, fitted, tiny_split):
        model, _ = fitted
        batch = pad_samples(tiny_split.test[:4], max_history=8)
        segments = model._segment_of_steps(batch)
        lengths = batch.step_mask.sum(axis=1)
        for row in range(4):
            length = lengths[row]
            if length > model.recent_window:
                assert segments[row, length - 1] == 1   # most recent step
                assert segments[row, 0] == 0            # oldest step

    def test_scores_and_recommendations(self, fitted, tiny_dataset,
                                        tiny_split):
        model, _ = fitted
        scores = model.score_samples(tiny_split.test[:4])
        assert scores.shape == (4, tiny_dataset.num_items + 1)
        assert np.isfinite(scores).all()
        rankings = model.recommend(tiny_split.test[:2], z=5)
        assert all(len(set(r)) == 5 for r in rankings)

    def test_beats_random(self, fitted, tiny_dataset, tiny_split):
        model, _ = fitted
        result = evaluate_model(model, tiny_split.test, z=5)
        assert result.mean("hit") > 2 * 5 / tiny_dataset.num_items

    def test_per_segment_item_matrices(self, fitted, tiny_dataset):
        model, _ = fitted
        recent = model.item_causal_matrix()
        old = model.item_causal_matrix(segment=0)
        assert recent.shape == old.shape == (tiny_dataset.num_items + 1,
                                             tiny_dataset.num_items + 1)

    def test_graph_drift_finite(self, fitted):
        model, _ = fitted
        assert np.isfinite(model.graph_drift())

    def test_segments_can_diverge_when_data_shifts(self, tiny_dataset,
                                                   tiny_split):
        model = DynamicCauser(tiny_dataset.corpus.num_users,
                              tiny_dataset.num_items, tiny_dataset.features,
                              quick_config(num_epochs=3), num_segments=2)
        model.fit(tiny_split.train)
        # The two segment graphs receive different gradients, so training
        # should introduce at least a little drift from the shared seed.
        assert model.graph_drift() >= 0.0
