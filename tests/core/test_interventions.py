"""Tests for interventional analysis on trained models."""

import numpy as np
import pytest

from repro.core import (Causer, CauserConfig, counterfactual_scores,
                        counterfactual_shift, intervention_report,
                        most_influential_history_item, total_cluster_effect,
                        total_effect_matrix)
from repro.data import EvalSample


class TestTotalEffects:
    def chain(self):
        # 0 -0.5-> 1 -0.8-> 2
        w = np.zeros((3, 3))
        w[0, 1] = 0.5
        w[1, 2] = 0.8
        return w

    def test_direct_edge(self):
        assert total_cluster_effect(self.chain(), 0, 1) == pytest.approx(0.5)

    def test_path_product(self):
        assert total_cluster_effect(self.chain(), 0, 2) == pytest.approx(0.4)

    def test_no_path(self):
        assert total_cluster_effect(self.chain(), 2, 0) == 0.0

    def test_parallel_paths_sum(self):
        w = np.zeros((3, 3))
        w[0, 1] = 0.5   # direct
        w[0, 2] = 1.0   # via 2
        w[2, 1] = 0.5
        assert total_cluster_effect(w, 0, 1) == pytest.approx(1.0)

    def test_matrix_matches_pairwise(self):
        rng = np.random.default_rng(0)
        from repro.causal import random_dag, weighted_dag
        dag = weighted_dag(random_dag(5, 0.4, rng), rng,
                           weight_range=(0.2, 0.6), allow_negative=False)
        matrix = total_effect_matrix(dag)
        for i in range(5):
            for j in range(5):
                if i != j:
                    assert matrix[i, j] == pytest.approx(
                        total_cluster_effect(dag, i, j), abs=1e-9)

    def test_matrix_diagonal_zero(self):
        matrix = total_effect_matrix(self.chain())
        np.testing.assert_allclose(np.diag(matrix), 0.0)


@pytest.fixture(scope="module")
def model(tiny_dataset, tiny_split):
    config = CauserConfig(embedding_dim=8, hidden_dim=8, num_epochs=3,
                          batch_size=64, num_clusters=4, epsilon=0.2,
                          eta=0.5, seed=0)
    causer = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                    tiny_dataset.features, config)
    causer.fit(tiny_split.train)
    return causer


class TestCounterfactuals:
    def sample(self):
        return EvalSample(user_id=0, history=((1,), (5,), (9,)), target=(3,))

    def test_scores_shape(self, model, tiny_dataset):
        scores = counterfactual_scores(model, self.sample(), remove_item=5)
        assert scores.shape == (tiny_dataset.num_items + 1,)

    def test_removal_changes_scores(self, model):
        base = model.score_samples([self.sample()])[0]
        removed = counterfactual_scores(model, self.sample(), remove_item=5)
        assert not np.allclose(base, removed)

    def test_removing_absent_item_is_noop(self, model):
        base = model.score_samples([self.sample()])[0]
        removed = counterfactual_scores(model, self.sample(), remove_item=40)
        np.testing.assert_allclose(base, removed, atol=1e-10)

    def test_empty_history_returns_none(self, model):
        single = EvalSample(user_id=0, history=((7,),), target=(3,))
        assert counterfactual_scores(model, single, remove_item=7) is None

    def test_shift_is_scalar(self, model):
        shift = counterfactual_shift(model, self.sample(), remove_item=5)
        assert np.isfinite(shift)

    def test_most_influential_in_history(self, model):
        item, shift = most_influential_history_item(model, self.sample())
        assert item in (1, 5, 9)
        assert np.isfinite(shift)

    def test_most_influential_empty_history_raises(self, model):
        with pytest.raises(ValueError):
            most_influential_history_item(
                model, EvalSample(user_id=0, history=(), target=(1,)))

    def test_report_format(self, model):
        text = intervention_report(model, self.sample())
        assert "score attribution" in text
        assert "remove item#" in text

    def test_true_cause_removal_hurts_more_than_noise(self, model,
                                                      tiny_dataset):
        """Removing a cluster-level true cause of the target lowers its
        score at least as much as removing a causally irrelevant item,
        averaged over test cases."""
        graph = tiny_dataset.cluster_graph
        clusters = tiny_dataset.cluster_of_item
        cause_shifts, other_shifts = [], []
        for seq in tiny_dataset.corpus.sequences[:60]:
            if seq.length < 3 or any(len(b) != 1 for b in seq.baskets):
                continue
            target = seq.baskets[-1][0]
            history = seq.baskets[:-1]
            sample = EvalSample(user_id=seq.user_id, history=history,
                                target=(target,))
            for basket in history:
                item = basket[0]
                is_cause = graph[clusters[item], clusters[target]] == 1
                shift = counterfactual_shift(model, sample, item)
                (cause_shifts if is_cause else other_shifts).append(shift)
        if cause_shifts and other_shifts:
            assert np.mean(cause_shifts) >= np.mean(other_shifts) - 0.05
