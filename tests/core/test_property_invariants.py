"""Hypothesis property tests on Causer's structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Causer, CauserConfig
from repro.data import EvalSample, pad_samples
from repro.nn import Tensor


@pytest.fixture(scope="module")
def model(tiny_dataset):
    config = CauserConfig(embedding_dim=8, hidden_dim=8, num_clusters=4,
                          epsilon=0.2, eta=0.5, seed=0)
    return Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                  tiny_dataset.features, config)


def random_samples(rng, num_items, count, max_len=6):
    samples = []
    for user in range(count):
        length = int(rng.integers(1, max_len + 1))
        history = tuple((int(rng.integers(1, num_items + 1)),)
                        for _ in range(length))
        samples.append(EvalSample(user_id=user, history=history,
                                  target=(int(rng.integers(1, num_items + 1)),)))
    return samples


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_eq9_respects_assignment_mixture(model, seed):
    """W_ab = ā^T W^c b̄ must be linear in both assignment vectors."""
    rng = np.random.default_rng(seed)
    k = model.config.num_clusters
    a1 = rng.dirichlet(np.ones(k))
    a2 = rng.dirichlet(np.ones(k))
    b = rng.dirichlet(np.ones(k))
    w = model.graph.numpy_matrix()
    lam = rng.random()
    mixed = lam * a1 + (1 - lam) * a2
    direct = mixed @ w @ b
    combined = lam * (a1 @ w @ b) + (1 - lam) * (a2 @ w @ b)
    assert direct == pytest.approx(combined, rel=1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_batch_order_invariance(model, tiny_dataset, seed):
    """Scoring a permuted batch permutes the scores and nothing else."""
    rng = np.random.default_rng(seed)
    samples = random_samples(rng, tiny_dataset.num_items, 6)
    scores = model.score_samples(samples)
    perm = rng.permutation(len(samples))
    permuted_scores = model.score_samples([samples[i] for i in perm])
    np.testing.assert_allclose(permuted_scores, scores[perm], atol=1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_padding_invariance(model, tiny_dataset, seed):
    """Batching a short history with longer ones must not change its score."""
    rng = np.random.default_rng(seed)
    short = random_samples(rng, tiny_dataset.num_items, 1, max_len=2)[0]
    long_ones = random_samples(rng, tiny_dataset.num_items, 3, max_len=6)
    alone = model.score_samples([short])
    together = model.score_samples([short] + long_ones)
    np.testing.assert_allclose(together[0], alone[0], atol=1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_candidate_subset_consistency(model, tiny_dataset, seed):
    """Explicit-candidate logits must match the full-catalog columns."""
    rng = np.random.default_rng(seed)
    samples = random_samples(rng, tiny_dataset.num_items, 4)
    batch = pad_samples(samples)
    candidates = rng.integers(1, tiny_dataset.num_items + 1, size=(4, 6))
    explicit = model.candidate_logits(batch, candidates).data
    full = model.candidate_logits(batch, None).data
    rows = np.arange(4)[:, None]
    np.testing.assert_allclose(explicit, full[rows, candidates], atol=1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_epsilon_one_blocks_everything(tiny_dataset, seed):
    """ε=1.0 exceeds any mixture value: every causal effect is gated off,
    so all candidates score exactly the output bias."""
    config = CauserConfig(embedding_dim=8, hidden_dim=8, num_clusters=4,
                          epsilon=1.0, eta=0.5, seed=seed % 100)
    blocked = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                     tiny_dataset.features, config)
    rng = np.random.default_rng(seed)
    samples = random_samples(rng, tiny_dataset.num_items, 3)
    scores = blocked.score_samples(samples)
    np.testing.assert_allclose(
        scores, np.tile(blocked.output_bias.data, (3, 1)), atol=1e-9)
