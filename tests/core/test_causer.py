"""Integration-level tests for the Causer model itself."""

import numpy as np
import pytest

from repro.core import Causer, CauserConfig, ablation_config
from repro.data import pad_samples, sample_negatives
from repro.eval import evaluate_model


def quick_config(**overrides):
    defaults = dict(embedding_dim=8, hidden_dim=8, num_epochs=2,
                    batch_size=64, max_history=8, num_clusters=4,
                    epsilon=0.2, eta=0.5, lambda_l1=0.001, seed=0)
    defaults.update(overrides)
    return CauserConfig(**defaults)


@pytest.fixture(scope="module")
def fitted(tiny_dataset, tiny_split):
    model = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                   tiny_dataset.features, quick_config(num_epochs=4))
    fit = model.fit(tiny_split.train)
    return model, fit


class TestConstruction:
    def test_feature_shape_validated(self, tiny_dataset):
        with pytest.raises(ValueError):
            Causer(10, tiny_dataset.num_items,
                   tiny_dataset.features[:-3], quick_config())

    def test_name_reflects_cell(self, tiny_dataset):
        gru = Causer(5, tiny_dataset.num_items, tiny_dataset.features,
                     quick_config(cell_type="gru"))
        lstm = Causer(5, tiny_dataset.num_items, tiny_dataset.features,
                      quick_config(cell_type="lstm"))
        assert "GRU" in gru.name and "LSTM" in lstm.name


class TestTraining:
    def test_fit_trace(self, fitted):
        _, fit = fitted
        assert len(fit.epoch_losses) == 4
        assert fit.epoch_losses[-1] < fit.epoch_losses[0]
        assert "h" in fit.extra and "beta2" in fit.extra

    def test_acyclicity_decreases(self, fitted):
        _, fit = fitted
        hs = fit.extra["h"]
        assert hs[-1] < hs[0] * 1.5  # not exploding
        assert hs[-1] < 1.0

    def test_lstm_backbone_trains(self, tiny_dataset, tiny_split):
        model = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                       tiny_dataset.features,
                       quick_config(cell_type="lstm"))
        fit = model.fit(tiny_split.train)
        assert np.isfinite(fit.final_loss)

    def test_empty_samples_rejected(self, tiny_dataset):
        model = Causer(5, tiny_dataset.num_items, tiny_dataset.features,
                       quick_config())
        with pytest.raises(ValueError):
            model.fit_samples([])

    def test_update_every_freezes_causal_params(self, tiny_dataset,
                                                tiny_split):
        model = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                       tiny_dataset.features,
                       quick_config(num_epochs=1, update_every=10,
                                    pretrain_graph=False))
        before = model.graph.weights.data.copy()
        model.fit(tiny_split.train)
        after_first = model.graph.weights.data.copy()
        # Epoch 0 updates (0 % 10 == 0): weights must move.
        assert not np.allclose(before, after_first)
        model.config.num_epochs = 1
        # Internal epoch counter restarts; epoch 0 updates again, so instead
        # check the rec params moved while h bookkeeping stayed finite.
        assert np.isfinite(model.beta1)


class TestScoring:
    def test_full_catalog_scores(self, fitted, tiny_dataset, tiny_split):
        model, _ = fitted
        scores = model.score_samples(tiny_split.test[:5])
        assert scores.shape == (5, tiny_dataset.num_items + 1)
        assert np.isfinite(scores).all()

    def test_recommend(self, fitted, tiny_split):
        model, _ = fitted
        rankings = model.recommend(tiny_split.test[:3], z=5)
        for ranking in rankings:
            assert len(set(ranking)) == 5
            assert 0 not in ranking

    def test_beats_random(self, fitted, tiny_dataset, tiny_split):
        model, _ = fitted
        result = evaluate_model(model, tiny_split.test, z=5)
        assert result.mean("hit") > 2 * 5 / tiny_dataset.num_items

    def test_filtering_modes_agree_on_shapes(self, tiny_dataset, tiny_split):
        batch = pad_samples(tiny_split.test[:4], max_history=8)
        candidates = np.tile(np.arange(1, 9), (4, 1))
        for mode in ("cluster", "shared"):
            model = Causer(tiny_dataset.corpus.num_users,
                           tiny_dataset.num_items, tiny_dataset.features,
                           quick_config(filtering_mode=mode))
            logits = model.candidate_logits(batch, candidates)
            assert logits.shape == (4, 8)

    def test_strict_mode_scores(self, tiny_dataset, tiny_split):
        model = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                       tiny_dataset.features,
                       quick_config(filtering_mode="strict", num_epochs=1))
        model.fit(tiny_split.train)
        scores = model.score_samples(tiny_split.test[:2])
        assert scores.shape == (2, tiny_dataset.num_items + 1)
        assert np.isfinite(scores).all()

    def test_strict_and_cluster_agree_with_hard_assignments(
            self, tiny_dataset, tiny_split):
        """With one-hot assignments the cluster-shared masks are exact."""
        model = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                       tiny_dataset.features,
                       quick_config(filtering_mode="cluster",
                                    pretrain_graph=False))
        # Force perfectly hard assignments aligned with ground truth.
        logits = np.full((tiny_dataset.num_items + 1,
                          model.config.num_clusters), -40.0)
        clusters = tiny_dataset.cluster_of_item.copy()
        clusters[0] = 0
        logits[np.arange(len(clusters)), clusters] = 40.0
        model.clusters.assignment_logits.data[...] = logits * model.config.eta
        batch = pad_samples(tiny_split.test[:3], max_history=8)
        candidates = np.tile(np.arange(1, 11), (3, 1))
        fast = model.candidate_logits(batch, candidates).data
        strict = model.candidate_logits_strict(batch, candidates)
        np.testing.assert_allclose(fast, strict, atol=1e-8)


class TestCausalStructures:
    def test_item_causal_matrix_shape(self, fitted, tiny_dataset):
        model, _ = fitted
        matrix = model.item_causal_matrix()
        assert matrix.shape == (tiny_dataset.num_items + 1,
                                tiny_dataset.num_items + 1)

    def test_learned_graph_is_dag(self, fitted):
        model, _ = fitted
        from repro.causal import is_dag
        assert is_dag(model.learned_cluster_graph(threshold=0.1))


class TestAblations:
    @pytest.mark.parametrize("variant", ["-rec", "-clus", "-att", "-causal"])
    def test_variants_train_and_score(self, tiny_dataset, tiny_split,
                                      variant):
        config = ablation_config(quick_config(), variant)
        model = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                       tiny_dataset.features, config)
        fit = model.fit(tiny_split.train)
        assert np.isfinite(fit.final_loss)
        scores = model.score_samples(tiny_split.test[:2])
        assert np.isfinite(scores).all()

    def test_no_causal_scores_identical_across_candidate_clusters(
            self, tiny_dataset, tiny_split):
        """(-causal) context is candidate-independent by construction."""
        config = ablation_config(quick_config(), "-causal")
        model = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                       tiny_dataset.features, config)
        batch = pad_samples(tiny_split.test[:2], max_history=8)
        candidates = np.tile(np.arange(1, 6), (2, 1))
        logits = model.candidate_logits(batch, candidates).data
        # Remove the per-item parts (bias + embedding): contexts are shared,
        # so logits differ only through e_b and bias — check the context by
        # zeroing them.
        model.output_bias.data[...] = 0.0
        model.output_embedding.weight.data[...] = 1.0
        logits = model.candidate_logits(batch, candidates).data
        np.testing.assert_allclose(logits[:, 0], logits[:, 1], rtol=1e-9)
