"""Tests for graph pre-training and the explanation machinery."""

import numpy as np
import pytest

from repro.core import Causer, CauserConfig, explanation_breakdown, make_explainer
from repro.core.pretrain import (estimate_cluster_transitions,
                                 pretrain_cluster_graph, transition_lift)
from repro.data import EvalSample, ExplanationSample, build_explanation_dataset


def make_samples():
    """Planted transitions: cluster 0 -> cluster 1 and cluster 2 -> cluster 0.

    Items 1-2 belong to cluster 0, items 3-4 to cluster 1, items 5-6 to
    cluster 2.  The mixture provides the base-rate contrast ratio lift needs.
    """
    samples = []
    for _ in range(20):
        samples.append(EvalSample(user_id=0, history=((1,), (2,)),
                                  target=(3,)))
        samples.append(EvalSample(user_id=1, history=((5,),), target=(1,)))
    return samples


HARD = np.array([0, 0, 0, 1, 1, 2, 2])


class TestTransitionEstimation:
    def test_counts_direction(self):
        counts = estimate_cluster_transitions(make_samples(), HARD, 3)
        assert counts[0, 1] > counts[1, 0]
        assert counts[0, 1] > counts[0, 0]

    def test_decay_weighting(self):
        sample = [EvalSample(user_id=0, history=((1,), (2,)), target=(3,))]
        counts = estimate_cluster_transitions(sample, np.array([0, 0, 1, 2]),
                                              3, decay=0.5)
        # item 2 (gap 1) weighted 1.0, item 1 (gap 2) weighted 0.5
        assert counts[1, 2] == pytest.approx(1.0)
        assert counts[0, 2] == pytest.approx(0.5)

    def test_lift_prefers_planted_edge(self):
        counts = estimate_cluster_transitions(make_samples(), HARD, 3)
        lift = transition_lift(counts)
        assert lift[0, 1] > lift[1, 0]

    def test_seed_dense_and_bounded(self):
        seed = pretrain_cluster_graph(make_samples(), HARD, 3)
        off_diag = seed[~np.eye(3, dtype=bool)]
        assert (off_diag >= 0.35 - 1e-9).all()
        assert (off_diag <= 0.7 + 1e-9).all()
        np.testing.assert_allclose(np.diag(seed), 0.0)

    def test_seed_orders_by_lift(self):
        seed = pretrain_cluster_graph(make_samples(), HARD, 3)
        assert seed[0, 1] > seed[1, 0]


@pytest.fixture(scope="module")
def trained_with_explanations(tiny_dataset, tiny_split):
    config = CauserConfig(embedding_dim=8, hidden_dim=8, num_epochs=3,
                          batch_size=64, max_history=8, num_clusters=4,
                          epsilon=0.2, eta=0.5, seed=0)
    model = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                   tiny_dataset.features, config)
    model.fit(tiny_split.train)
    samples = build_explanation_dataset(tiny_dataset, max_samples=30)
    return model, samples


class TestExplanations:
    def test_breakdown_alignment(self, trained_with_explanations):
        model, samples = trained_with_explanations
        sample = samples[0]
        breakdown = explanation_breakdown(model, sample)
        steps = len(sample.history)
        assert len(breakdown.history_items) == steps
        assert breakdown.causal_effect.shape == (steps,)
        assert breakdown.attention.shape == (steps,)
        np.testing.assert_allclose(
            breakdown.combined,
            breakdown.causal_effect * breakdown.attention)

    def test_breakdown_requires_singletons(self, trained_with_explanations):
        model, _ = trained_with_explanations
        bad = ExplanationSample(user_id=0, history=((1, 2),), target_item=3,
                                cause_items=(1,))
        with pytest.raises(ValueError):
            explanation_breakdown(model, bad)

    @pytest.mark.parametrize("mode", ["full", "causal", "attention"])
    def test_explainer_modes(self, trained_with_explanations, mode):
        model, samples = trained_with_explanations
        explainer = make_explainer(model, mode)
        scores = explainer(samples[0])
        assert scores.shape == (len(samples[0].history_items),)
        assert np.isfinite(scores).all()

    def test_unknown_mode(self, trained_with_explanations):
        model, _ = trained_with_explanations
        with pytest.raises(ValueError):
            make_explainer(model, "gradcam")

    def test_causal_mode_ignores_attention(self, trained_with_explanations):
        model, samples = trained_with_explanations
        sample = samples[0]
        breakdown = explanation_breakdown(model, sample)
        causal_scores = make_explainer(model, "causal")(sample)
        np.testing.assert_allclose(causal_scores, breakdown.causal_effect)

    def test_case_study_format(self, trained_with_explanations):
        from repro.core import format_case_study
        model, samples = trained_with_explanations
        text = format_case_study(model, samples[0])
        assert "target:" in text
        assert "true causes:" in text
        assert "W_hat" in text
