"""Tests for the differentiable item clustering module (eqs. 6-8)."""

import numpy as np
import pytest

from repro.core.clustering import ItemClusterModule
from repro.nn import Adam


@pytest.fixture
def features():
    """Three well-separated feature clusters over 30 items + padding."""
    rng = np.random.default_rng(0)
    centroids = rng.normal(0, 3.0, size=(3, 6))
    rows = [np.zeros(6)]
    for i in range(30):
        rows.append(centroids[i % 3] + rng.normal(0, 0.2, size=6))
    return np.stack(rows)


@pytest.fixture
def module(features):
    return ItemClusterModule(features, num_clusters=3, embedding_dim=5,
                             hidden_dim=8, eta=0.5,
                             rng=np.random.default_rng(1))


class TestShapes:
    def test_encode(self, module):
        assert module.encode().shape == (31, 5)

    def test_assignments_simplex(self, module):
        assign = module.assignments().data
        assert assign.shape == (31, 3)
        np.testing.assert_allclose(assign.sum(axis=-1), np.ones(31),
                                   rtol=1e-9)
        assert (assign > 0).all()

    def test_decode_shape(self, module):
        decoded = module.decode(module.encode())
        assert decoded.shape == (31, 6)

    def test_rejects_bad_features(self):
        with pytest.raises(ValueError):
            ItemClusterModule(np.zeros(5), 2, 4, 4, 1.0,
                              np.random.default_rng(0))


class TestSeeding:
    def test_kmeans_seeding_recovers_clusters(self, module, features):
        """Farthest-point + Lloyd seeding should match the planted clusters."""
        hard = module.hard_assignments()[1:]
        truth = np.array([i % 3 for i in range(30)])
        # Compute purity under the best label permutation implicitly:
        purity = 0
        for k in range(3):
            members = truth[hard == k]
            if len(members):
                purity += np.bincount(members).max()
        assert purity / 30 >= 0.95

    def test_temperature_controls_hardness(self, features):
        sharp = ItemClusterModule(features, 3, 5, 8, eta=0.1,
                                  rng=np.random.default_rng(1))
        soft = ItemClusterModule(features, 3, 5, 8, eta=100.0,
                                 rng=np.random.default_rng(1))
        assert sharp.assignment_entropy() < soft.assignment_entropy()

    def test_extreme_temperature_near_uniform(self, features):
        very_soft = ItemClusterModule(features, 3, 5, 8, eta=1e8,
                                      rng=np.random.default_rng(1))
        assign = very_soft.assignments().data
        np.testing.assert_allclose(assign, 1.0 / 3, atol=1e-4)


class TestLosses:
    def test_losses_are_scalars(self, module):
        embeddings = module.encode()
        assert module.clustering_loss(embeddings).data.shape == ()
        assert module.reconstruction_loss(embeddings).data.shape == ()

    def test_training_reduces_losses(self, module):
        optimizer = Adam(module.parameters(), lr=0.01)
        first = None
        for step in range(60):
            optimizer.zero_grad()
            embeddings = module.encode()
            loss = (module.clustering_loss(embeddings)
                    + module.reconstruction_loss(embeddings))
            loss.backward()
            optimizer.step()
            if first is None:
                first = loss.item()
        assert loss.item() < first * 0.7

    def test_padding_row_excluded(self, features):
        module = ItemClusterModule(features, 3, 5, 8, 0.5,
                                   np.random.default_rng(2))
        embeddings = module.encode()
        base = module.clustering_loss(embeddings).item()
        # Perturbing the padding row's features cannot change the loss.
        module.raw_features[0] = 100.0
        perturbed = module.clustering_loss(module.encode()).item()
        assert perturbed == pytest.approx(base)
