"""Tests for model persistence and the CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import Causer, CauserConfig
from repro.io import load_model, save_model
from repro.models import GRU4Rec, PopularityRecommender, TrainConfig, VTRNN


@pytest.fixture(scope="module")
def trained_causer(tiny_dataset, tiny_split):
    config = CauserConfig(embedding_dim=8, hidden_dim=8, num_epochs=2,
                          batch_size=64, num_clusters=4, epsilon=0.2,
                          eta=0.5, seed=0)
    model = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                   tiny_dataset.features, config)
    model.fit(tiny_split.train)
    return model


class TestSaveLoad:
    def test_causer_roundtrip(self, trained_causer, tiny_split, tmp_path):
        path = tmp_path / "causer.npz"
        save_model(trained_causer, path)
        restored = load_model(path)
        original_scores = trained_causer.score_samples(tiny_split.test[:4])
        restored_scores = restored.score_samples(tiny_split.test[:4])
        np.testing.assert_allclose(original_scores, restored_scores,
                                   atol=1e-10)

    def test_config_restored(self, trained_causer, tmp_path):
        path = tmp_path / "causer.npz"
        save_model(trained_causer, path)
        restored = load_model(path)
        assert restored.config.num_clusters == trained_causer.config.num_clusters
        assert restored.config.epsilon == trained_causer.config.epsilon

    def test_baseline_roundtrip(self, tiny_dataset, tiny_split, tmp_path):
        cfg = TrainConfig(embedding_dim=8, hidden_dim=8, num_epochs=1,
                          batch_size=64, seed=0)
        model = GRU4Rec(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                        cfg)
        model.fit(tiny_split.train)
        path = tmp_path / "gru.npz"
        save_model(model, path)
        restored = load_model(path)
        np.testing.assert_allclose(model.score_samples(tiny_split.test[:3]),
                                   restored.score_samples(tiny_split.test[:3]),
                                   atol=1e-10)

    def test_feature_model_roundtrip(self, tiny_dataset, tiny_split,
                                     tmp_path):
        cfg = TrainConfig(embedding_dim=8, hidden_dim=8, num_epochs=1,
                          batch_size=64, seed=0)
        model = VTRNN(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                      tiny_dataset.features, cfg)
        model.fit(tiny_split.train)
        path = tmp_path / "vtrnn.npz"
        save_model(model, path)
        restored = load_model(path)
        np.testing.assert_allclose(model.score_samples(tiny_split.test[:2]),
                                   restored.score_samples(tiny_split.test[:2]),
                                   atol=1e-10)

    def test_unsupported_model(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(PopularityRecommender(5), tmp_path / "pop.npz")


class TestCLI:
    def test_parser_accepts_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table2", "--scale", "0.02"])
        assert args.experiment == "table2"
        assert args.scale == 0.02

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_table2_end_to_end(self, capsys):
        code = main(["table2", "--scale", "0.02", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "epinions" in out

    def test_fig3_end_to_end(self, capsys):
        code = main(["fig3", "--scale", "0.02", "--quick"])
        assert code == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_fig5_restricted_sweep(self, capsys):
        code = main(["fig5", "--scale", "0.02", "--quick",
                     "--datasets", "baby", "--cells", "gru"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baby/gru" in out
