"""Tests for model persistence and the CLI."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import Causer, CauserConfig
from repro.io import load_model, registered_model_classes, save_model
from repro.models import GRU4Rec, PopularityRecommender, TrainConfig, VTRNN


@pytest.fixture(scope="module")
def trained_causer(tiny_dataset, tiny_split):
    config = CauserConfig(embedding_dim=8, hidden_dim=8, num_epochs=2,
                          batch_size=64, num_clusters=4, epsilon=0.2,
                          eta=0.5, seed=0)
    model = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                   tiny_dataset.features, config)
    model.fit(tiny_split.train)
    return model


class TestSaveLoad:
    def test_causer_roundtrip(self, trained_causer, tiny_split, tmp_path):
        path = tmp_path / "causer.npz"
        save_model(trained_causer, path)
        restored = load_model(path)
        original_scores = trained_causer.score_samples(tiny_split.test[:4])
        restored_scores = restored.score_samples(tiny_split.test[:4])
        np.testing.assert_allclose(original_scores, restored_scores,
                                   atol=1e-10)

    def test_config_restored(self, trained_causer, tmp_path):
        path = tmp_path / "causer.npz"
        save_model(trained_causer, path)
        restored = load_model(path)
        assert restored.config.num_clusters == trained_causer.config.num_clusters
        assert restored.config.epsilon == trained_causer.config.epsilon

    def test_baseline_roundtrip(self, tiny_dataset, tiny_split, tmp_path):
        cfg = TrainConfig(embedding_dim=8, hidden_dim=8, num_epochs=1,
                          batch_size=64, seed=0)
        model = GRU4Rec(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                        cfg)
        model.fit(tiny_split.train)
        path = tmp_path / "gru.npz"
        save_model(model, path)
        restored = load_model(path)
        np.testing.assert_allclose(model.score_samples(tiny_split.test[:3]),
                                   restored.score_samples(tiny_split.test[:3]),
                                   atol=1e-10)

    def test_feature_model_roundtrip(self, tiny_dataset, tiny_split,
                                     tmp_path):
        cfg = TrainConfig(embedding_dim=8, hidden_dim=8, num_epochs=1,
                          batch_size=64, seed=0)
        model = VTRNN(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                      tiny_dataset.features, cfg)
        model.fit(tiny_split.train)
        path = tmp_path / "vtrnn.npz"
        save_model(model, path)
        restored = load_model(path)
        np.testing.assert_allclose(model.score_samples(tiny_split.test[:2]),
                                   restored.score_samples(tiny_split.test[:2]),
                                   atol=1e-10)

    def test_unsupported_model(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(PopularityRecommender(5), tmp_path / "pop.npz")


class TestCheckpointHeaders:
    def _tampered(self, model, tmp_path, mutate):
        """Save, rewrite the JSON header with ``mutate``, re-save."""
        path = tmp_path / "model.npz"
        save_model(model, path)
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        header = json.loads(bytes(arrays["header"]).decode("utf-8"))
        mutate(header)
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8)
        np.savez_compressed(str(path), **arrays)
        return path

    def test_unknown_class_is_a_clear_error(self, trained_causer, tmp_path):
        path = self._tampered(trained_causer, tmp_path,
                              lambda h: h.update({"class": "FancyModel"}))
        with pytest.raises(ValueError, match="unknown model class"):
            load_model(path)
        with pytest.raises(ValueError, match=str(path)):
            load_model(path)  # the message names the offending file

    def test_format_version_mismatch(self, trained_causer, tmp_path):
        path = self._tampered(
            trained_causer, tmp_path,
            lambda h: h.update({"format_version": 999}))
        with pytest.raises(ValueError, match="format_version"):
            load_model(path)

    def test_missing_version_rejected(self, trained_causer, tmp_path):
        """Pre-versioning archives are refused rather than mis-read."""
        path = self._tampered(trained_causer, tmp_path,
                              lambda h: h.pop("format_version"))
        with pytest.raises(ValueError, match="format_version"):
            load_model(path)

    def test_registry_covers_every_class(self):
        assert set(registered_model_classes()) == {
            "Causer", "BERT4Rec", "BPR", "FPMC", "GRU4Rec", "HRNN",
            "MMSARec", "NARM", "NCF", "SASRec", "STAMP", "VTRNN"}


class TestCLI:
    def test_parser_accepts_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table2", "--scale", "0.02"])
        assert args.experiment == "table2"
        assert args.scale == 0.02

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_table2_end_to_end(self, capsys):
        code = main(["table2", "--scale", "0.02", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "epinions" in out

    def test_fig3_end_to_end(self, capsys):
        code = main(["fig3", "--scale", "0.02", "--quick"])
        assert code == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_fig5_restricted_sweep(self, capsys):
        code = main(["fig5", "--scale", "0.02", "--quick",
                     "--datasets", "baby", "--cells", "gru"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baby/gru" in out


class TestTrainEvalServeCLI:
    def test_parser_accepts_new_commands(self):
        parser = build_parser()
        args = parser.parse_args(["train", "--model", "GRU4Rec",
                                  "--save-model", "ck.npz"])
        assert (args.experiment, args.model, args.save_model) == \
            ("train", "GRU4Rec", "ck.npz")
        args = parser.parse_args(["eval", "--load-model", "ck.npz"])
        assert args.load_model == "ck.npz"
        args = parser.parse_args(["serve", "--checkpoint", "ck.npz",
                                  "--port", "0", "--max-batch-size", "16",
                                  "--max-wait-ms", "1.5",
                                  "--session-capacity", "50"])
        assert args.port == 0 and args.max_batch_size == 16
        assert args.max_wait_ms == 1.5 and args.session_capacity == 50

    def test_eval_requires_checkpoint(self):
        with pytest.raises(SystemExit, match="--load-model"):
            main(["eval", "--scale", "0.02", "--quick"])

    def test_train_save_eval_roundtrip(self, tmp_path, capsys):
        """``eval --load-model`` reproduces the training run's metrics."""
        path = tmp_path / "gru.npz"
        assert main(["train", "--scale", "0.02", "--quick",
                     "--model", "GRU4Rec", "--save-model", str(path)]) == 0
        train_out = capsys.readouterr().out
        assert f"saved checkpoint: {path}" in train_out
        assert main(["eval", "--load-model", str(path),
                     "--scale", "0.02", "--quick"]) == 0
        eval_out = capsys.readouterr().out
        # Same split (same scale/seed), same weights → identical metrics.
        train_metrics = train_out.split("F1@", 1)[1].splitlines()[0]
        eval_metrics = eval_out.split("F1@", 1)[1].splitlines()[0]
        assert train_metrics == eval_metrics
