"""Reproducibility: identical seeds must give bit-identical results."""

import numpy as np
import pytest

from repro.core import Causer, CauserConfig
from repro.data import SimulatorConfig, generate_dataset, leave_one_out_split
from repro.models import GRU4Rec, NARM, TrainConfig


def small_dataset(seed=3):
    return generate_dataset(SimulatorConfig(num_users=60, num_items=30,
                                            num_clusters=4, seed=seed))


class TestDataDeterminism:
    def test_profiles_reproducible(self):
        from repro.data import load_dataset
        a = load_dataset("patio", scale=0.02, seed=9)
        b = load_dataset("patio", scale=0.02, seed=9)
        assert [s.baskets for s in a.corpus] == [s.baskets for s in b.corpus]

    def test_split_deterministic(self):
        dataset = small_dataset()
        a = leave_one_out_split(dataset.corpus)
        b = leave_one_out_split(dataset.corpus)
        assert a.test == b.test


class TestModelDeterminism:
    @pytest.mark.parametrize("model_cls", [GRU4Rec, NARM])
    def test_baseline_training_deterministic(self, model_cls):
        dataset = small_dataset()
        split = leave_one_out_split(dataset.corpus)
        cfg = TrainConfig(embedding_dim=8, hidden_dim=8, num_epochs=2,
                          batch_size=32, seed=11)
        runs = []
        for _ in range(2):
            model = model_cls(dataset.corpus.num_users, dataset.num_items,
                              cfg)
            model.fit(split.train)
            runs.append(model.score_samples(split.test[:5]))
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_causer_training_deterministic(self):
        dataset = small_dataset()
        split = leave_one_out_split(dataset.corpus)
        cfg = CauserConfig(embedding_dim=8, hidden_dim=8, num_epochs=2,
                           batch_size=32, num_clusters=4, epsilon=0.2,
                           eta=0.5, seed=11)
        runs = []
        for _ in range(2):
            model = Causer(dataset.corpus.num_users, dataset.num_items,
                           dataset.features, cfg)
            model.fit(split.train)
            runs.append(model.score_samples(split.test[:5]))
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_different_seeds_differ(self):
        dataset = small_dataset()
        split = leave_one_out_split(dataset.corpus)
        scores = []
        for seed in (1, 2):
            cfg = TrainConfig(embedding_dim=8, hidden_dim=8, num_epochs=2,
                              batch_size=32, seed=seed)
            model = GRU4Rec(dataset.corpus.num_users, dataset.num_items, cfg)
            model.fit(split.train)
            scores.append(model.score_samples(split.test[:5]))
        assert not np.array_equal(scores[0], scores[1])


class TestEvaluatorDeterminism:
    """The batched evaluator must stay bit-reproducible.

    ``Recommender.recommend`` now ranks candidates with vectorized
    argpartition + stable argsort, and ``evaluate_rankings`` derives all six
    metrics from one membership pass; neither may introduce run-to-run
    (or tie-breaking) nondeterminism.
    """

    def _fitted_model(self, dataset, split):
        cfg = TrainConfig(embedding_dim=8, hidden_dim=8, num_epochs=1,
                          batch_size=32, seed=7)
        model = GRU4Rec(dataset.corpus.num_users, dataset.num_items, cfg)
        model.fit(split.train)
        return model

    def test_recommend_deterministic(self):
        dataset = small_dataset()
        split = leave_one_out_split(dataset.corpus)
        model = self._fitted_model(dataset, split)
        a = model.recommend(split.test[:10], z=5)
        b = model.recommend(split.test[:10], z=5)
        assert a == b

    def test_evaluate_model_deterministic(self):
        from repro.eval import evaluate_model
        dataset = small_dataset()
        split = leave_one_out_split(dataset.corpus)
        model = self._fitted_model(dataset, split)
        a = evaluate_model(model, split.test[:10], z=5)
        b = evaluate_model(model, split.test[:10], z=5)
        assert a.per_user == b.per_user

    def test_tie_scores_ranked_stably(self):
        """All-equal scores are the worst case for tie-breaking stability."""
        from repro.eval import evaluate_rankings
        from repro.models.base import Recommender

        class Constant(Recommender):
            def __init__(self, num_items):
                self.num_items = num_items

            def score_samples(self, samples):
                return np.zeros((len(samples), self.num_items + 1))

        dataset = small_dataset()
        split = leave_one_out_split(dataset.corpus)
        model = Constant(dataset.num_items)
        first = model.recommend(split.test[:4], z=5)
        assert first == model.recommend(split.test[:4], z=5)
        result = evaluate_rankings(first, split.test[:4], z=5)
        repeat = evaluate_rankings(first, split.test[:4], z=5)
        assert result.per_user == repeat.per_user


class TestSolverDeterminism:
    def test_notears_deterministic(self):
        from repro.causal import (notears_linear, random_dag,
                                  simulate_linear_sem, standardize,
                                  weighted_dag)
        rng = np.random.default_rng(0)
        truth = random_dag(5, 0.4, rng)
        data = standardize(simulate_linear_sem(weighted_dag(truth, rng),
                                               400, rng))
        a = notears_linear(data, lambda1=0.05)
        b = notears_linear(data, lambda1=0.05)
        np.testing.assert_array_equal(a.adjacency, b.adjacency)
        np.testing.assert_allclose(a.weights, b.weights)
