"""Tests for small utilities: no_grad, table formatting, version metadata."""

import numpy as np
import pytest

import repro
from repro.exp.tables import render_series
from repro.nn import Linear, Tensor, no_grad


class TestNoGrad:
    def test_disables_graph_building(self):
        layer = Linear(3, 2, np.random.default_rng(0))
        with no_grad(layer):
            out = layer(Tensor(np.ones((2, 3))))
            assert not out.requires_grad
        out = layer(Tensor(np.ones((2, 3))))
        assert out.requires_grad

    def test_flags_restored_on_exception(self):
        layer = Linear(3, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            with no_grad(layer):
                raise RuntimeError("boom")
        assert layer.weight.requires_grad

    def test_nested_modules_covered(self):
        from repro.nn import Sequential
        seq = Sequential(Linear(2, 2, np.random.default_rng(0)),
                         Linear(2, 2, np.random.default_rng(1)))
        with no_grad(seq):
            assert all(not p.requires_grad for p in seq.parameters())
        assert all(p.requires_grad for p in seq.parameters())


class TestRenderSeries:
    def test_small_floats_readable(self):
        text = render_series("eta", [1e-8, 1e-4, 1.0],
                             {"s": [1.0, 2.0, 3.0]})
        assert "1e-08" in text
        assert "0.0001" in text

    def test_integer_x_unchanged(self):
        text = render_series("K", [2, 32], {"s": [1.0, 2.0]})
        assert "2 " in text or "2\n" in text or "2|" in text.replace(" | ", "|")

    def test_metric_cells_two_decimals(self):
        text = render_series("x", [1.0], {"s": [3.14159]})
        assert "3.14" in text
        assert "3.142" not in text


class TestPackageMetadata:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_subpackages_importable(self):
        for name in repro.__all__:
            if name != "__version__":
                assert getattr(repro, name) is not None

    def test_cli_module_entrypoint_exists(self):
        import repro.__main__  # noqa: F401
        from repro.cli import EXPERIMENTS
        assert "table4" in EXPERIMENTS
