"""Tests for the repro.bench timing harness and comparison logic."""

import numpy as np
import pytest

from repro.bench import (BenchComparison, BenchResult, compare_documents,
                         document, load_json, merged_document, peak_rss_kb,
                         time_workload, validate_document, write_json)
from repro.bench.harness import SCHEMA


def make_result(name="demo", walls=(0.2, 0.3, 0.4)):
    return BenchResult(name=name, wall_s=list(walls), rss_peak_kb=1024,
                       warmup=1, meta={"note": "test"})


class TestBenchResult:
    def test_statistics(self):
        result = make_result()
        assert result.repeats == 3
        assert result.mean_s == pytest.approx(0.3)
        assert result.min_s == pytest.approx(0.2)
        assert result.std_s == pytest.approx(float(np.std([0.2, 0.3, 0.4])))

    def test_to_dict_round_trips_samples(self):
        entry = make_result().to_dict()
        assert entry["wall_s"] == [0.2, 0.3, 0.4]
        assert entry["repeats"] == 3
        assert entry["warmup"] == 1
        assert entry["rss_peak_kb"] == 1024
        assert entry["meta"] == {"note": "test"}


class TestTimeWorkload:
    def test_counts_calls(self):
        calls = []

        def make_workload():
            return lambda: calls.append(1)

        result = time_workload("counter", make_workload, warmup=2, repeats=3)
        # 2 warmup + 3 timed calls; setup itself is not a call.
        assert len(calls) == 5
        assert result.repeats == 3
        assert all(w >= 0 for w in result.wall_s)

    def test_setup_outside_timed_region(self):
        phases = []

        def make_workload():
            phases.append("setup")
            return lambda: phases.append("run")

        time_workload("phased", make_workload, warmup=0, repeats=2)
        assert phases == ["setup", "run", "run"]

    def test_rejects_bad_repeats_and_warmup(self):
        with pytest.raises(ValueError):
            time_workload("x", lambda: (lambda: None), repeats=0)
        with pytest.raises(ValueError):
            time_workload("x", lambda: (lambda: None), warmup=-1)

    def test_peak_rss_positive(self):
        assert peak_rss_kb() > 0


class TestDocumentSchema:
    def test_document_is_valid(self):
        doc = document("engine", [make_result("a"), make_result("b")])
        assert doc["schema"] == SCHEMA
        assert set(doc["benches"]) == {"a", "b"}
        assert validate_document(doc) == []

    def test_write_and_load_round_trip(self, tmp_path):
        doc = document("engine", [make_result()])
        path = str(tmp_path / "bench.json")
        write_json(doc, path)
        assert load_json(path) == doc

    def test_validate_flags_problems(self):
        assert validate_document("nope")
        assert validate_document({"schema": "other/v9"})
        doc = document("engine", [make_result()])
        del doc["benches"]["demo"]["mean_s"]
        assert any("mean_s" in p for p in validate_document(doc))

    def test_validate_rejects_empty_benches(self):
        doc = document("engine", [])
        assert any("benches" in p for p in validate_document(doc))


class TestComparison:
    def doc_with_means(self, means):
        results = [BenchResult(name=n, wall_s=[m], rss_peak_kb=1, warmup=0)
                   for n, m in means.items()]
        return document("engine", results)

    def test_statuses(self):
        baseline = self.doc_with_means({"fast": 1.0, "slow": 1.0,
                                        "same": 1.0, "gone": 1.0})
        current = self.doc_with_means({"fast": 0.4, "slow": 2.0,
                                       "same": 1.1, "fresh": 1.0})
        report = compare_documents(current, baseline, threshold=0.25)
        status = {e.name: e.status for e in report.entries}
        assert status == {"fast": "improvement", "slow": "regression",
                          "same": "ok", "gone": "missing", "fresh": "new"}
        assert report.has_regressions
        assert [e.name for e in report.regressions] == ["slow"]
        assert report.speedups()["fast"] == pytest.approx(2.5)

    def test_threshold_widens_ok_band(self):
        baseline = self.doc_with_means({"a": 1.0})
        current = self.doc_with_means({"a": 1.4})
        assert compare_documents(current, baseline,
                                 threshold=0.25).has_regressions
        assert not compare_documents(current, baseline,
                                     threshold=0.5).has_regressions

    def test_rejects_invalid_documents(self):
        good = self.doc_with_means({"a": 1.0})
        with pytest.raises(ValueError):
            compare_documents(good, {"schema": "bogus"})
        with pytest.raises(ValueError):
            compare_documents(good, good, threshold=-0.1)

    def test_merged_document_embeds_baseline_and_speedups(self):
        baseline = self.doc_with_means({"a": 1.0})
        current = self.doc_with_means({"a": 0.5})
        merged = merged_document(current, baseline, threshold=0.25)
        assert merged["schema"] == SCHEMA
        assert merged["speedup"]["a"] == pytest.approx(2.0)
        assert merged["baseline"]["benches"]["a"]["mean_s"] == 1.0
        assert merged["threshold"] == 0.25
        # Merged documents stay valid schema-v1 (extra keys are allowed).
        assert validate_document(merged) == []

    def test_comparison_render_mentions_every_bench(self):
        baseline = self.doc_with_means({"a": 1.0, "b": 1.0})
        current = self.doc_with_means({"a": 0.5, "b": 3.0})
        text = compare_documents(current, baseline).render()
        assert "a" in text and "b" in text
        assert "regression" in text

    def test_speedup_none_when_side_missing(self):
        entry = BenchComparison(name="x", baseline_s=None, current_s=1.0,
                                threshold=0.25)
        assert entry.speedup is None
        assert entry.status == "new"
