"""Tests for the ``python -m repro.bench`` command-line interface."""

import json

import pytest

from repro.bench import document, load_json, validate_document, write_json
from repro.bench.cli import EXIT_ERROR, EXIT_OK, EXIT_REGRESSION, main
from repro.bench.harness import BenchResult


def tiny_doc(mean_s, name="backward_engine"):
    result = BenchResult(name=name, wall_s=[mean_s], rss_peak_kb=1, warmup=0)
    return document("engine", [result])


class TestList:
    def test_lists_engine_suite(self, capsys):
        assert main(["list"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "suite engine:" in out
        assert "train_epoch_gru" in out
        assert "dag_constraint" in out


class TestRun:
    def test_quick_single_bench_writes_valid_document(self, tmp_path, capsys):
        out_path = str(tmp_path / "run.json")
        code = main(["run", "--quick", "--bench", "backward_engine",
                     "--repeats", "1", "--warmup", "0", "--out", out_path])
        assert code == EXIT_OK
        doc = load_json(out_path)
        assert validate_document(doc) == []
        assert doc["quick"] is True
        assert list(doc["benches"]) == ["backward_engine"]
        assert "backward_engine" in capsys.readouterr().out

    def test_unknown_bench_is_an_error(self, capsys):
        assert main(["run", "--quick", "--bench", "no_such_bench"]) \
            == EXIT_ERROR
        assert "error" in capsys.readouterr().err

    def test_run_against_slower_baseline_passes(self, tmp_path):
        # A baseline claiming the bench took an hour can only improve.
        baseline = str(tmp_path / "baseline.json")
        write_json(tiny_doc(3600.0), baseline)
        code = main(["run", "--quick", "--bench", "backward_engine",
                     "--repeats", "1", "--warmup", "0",
                     "--baseline", baseline])
        assert code == EXIT_OK

    def test_run_against_faster_baseline_flags_regression(self, tmp_path,
                                                          capsys):
        # A baseline claiming near-zero time makes any real run a regression.
        baseline = str(tmp_path / "baseline.json")
        write_json(tiny_doc(1e-9), baseline)
        out_path = str(tmp_path / "merged.json")
        code = main(["run", "--quick", "--bench", "backward_engine",
                     "--repeats", "1", "--warmup", "0",
                     "--baseline", baseline, "--out", out_path])
        assert code == EXIT_REGRESSION
        assert "regression" in capsys.readouterr().out
        merged = load_json(out_path)
        assert "baseline" in merged and "speedup" in merged

    def test_missing_baseline_file_is_an_error(self, capsys):
        code = main(["run", "--quick", "--bench", "backward_engine",
                     "--repeats", "1", "--warmup", "0",
                     "--baseline", "/nonexistent/baseline.json"])
        assert code == EXIT_ERROR
        assert "error" in capsys.readouterr().err


class TestCompare:
    def test_improvement_exits_zero(self, tmp_path, capsys):
        cur, base = str(tmp_path / "c.json"), str(tmp_path / "b.json")
        write_json(tiny_doc(0.5), cur)
        write_json(tiny_doc(1.0), base)
        assert main(["compare", cur, base]) == EXIT_OK
        assert "improvement" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path):
        cur, base = str(tmp_path / "c.json"), str(tmp_path / "b.json")
        write_json(tiny_doc(2.0), cur)
        write_json(tiny_doc(1.0), base)
        assert main(["compare", cur, base]) == EXIT_REGRESSION

    def test_threshold_flag_respected(self, tmp_path):
        cur, base = str(tmp_path / "c.json"), str(tmp_path / "b.json")
        write_json(tiny_doc(1.4), cur)
        write_json(tiny_doc(1.0), base)
        assert main(["compare", cur, base]) == EXIT_REGRESSION
        assert main(["compare", cur, base, "--threshold", "0.5"]) == EXIT_OK

    def test_invalid_schema_is_an_error(self, tmp_path, capsys):
        cur, base = str(tmp_path / "c.json"), str(tmp_path / "b.json")
        write_json(tiny_doc(1.0), cur)
        with open(base, "w", encoding="utf-8") as handle:
            json.dump({"schema": "bogus"}, handle)
        assert main(["compare", cur, base]) == EXIT_ERROR
        assert "error" in capsys.readouterr().err

    def test_missing_file_is_an_error(self, tmp_path):
        cur = str(tmp_path / "c.json")
        write_json(tiny_doc(1.0), cur)
        assert main(["compare", cur, str(tmp_path / "absent.json")]) \
            == EXIT_ERROR


class TestCheckedInBenchDocument:
    def test_bench_engine_json_is_valid_and_shows_speedup(self):
        """The checked-in BENCH_engine.json must stay schema-valid and keep
        documenting the >= 2x train-epoch speedup this PR claims."""
        import os
        path = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "BENCH_engine.json")
        if not os.path.exists(path):
            pytest.skip("BENCH_engine.json not generated yet")
        doc = load_json(path)
        assert validate_document(doc) == []
        assert doc["speedup"]["train_epoch_gru"] >= 2.0
