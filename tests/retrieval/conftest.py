"""Retrieval-suite fixtures: tiny models in each serving mode."""

import pytest

from repro.exp import BenchmarkSettings, build_model


@pytest.fixture(scope="package")
def quick_settings():
    return BenchmarkSettings(embedding_dim=8, hidden_dim=8, max_history=8,
                             quick=True)


@pytest.fixture(scope="package")
def causer_model(tiny_dataset, quick_settings):
    """Shared-filtering GRU Causer -> CausalServingArtifacts."""
    return build_model("Causer (GRU)", tiny_dataset, quick_settings)


@pytest.fixture(scope="package")
def gru_model(tiny_dataset, quick_settings):
    """GRU4Rec -> GRUServingArtifacts (the exactly-two-tower head)."""
    return build_model("GRU4Rec", tiny_dataset, quick_settings)


@pytest.fixture(scope="package")
def replay_model(tiny_dataset, quick_settings):
    """A replay-mode model with no frozen head (no item tower)."""
    return build_model("NARM", tiny_dataset, quick_settings)
