"""Index builds and searches must be bit-identical across runs and
across :mod:`repro.parallel` worker counts.

The contract: k-means draws its initial centroids from
``SeedSequence(seed, spawn_key=(0,))``, the assignment step is
row-independent arithmetic over fixed-size chunks, and every ranking
breaks ties by ascending item id — so nothing about scheduling, worker
count, or rerunning can change a single bit.
"""

import numpy as np
import pytest

import repro.retrieval.index as index_mod
from repro.retrieval import ExactIndex, IVFIndex, ItemTower, kmeans_fit


def make_tower(seed, n=400, d=6):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(10, d)) * 2.5
    vectors = centers[rng.integers(0, 10, size=n)] + rng.normal(size=(n, d))
    return ItemTower(vectors=vectors, bias=rng.normal(size=n) * 0.1,
                     ids=np.arange(1, n + 1, dtype=np.int64))


def assert_indexes_identical(a, b):
    assert np.array_equal(a.centroids, b.centroids)
    assert len(a.list_ids) == len(b.list_ids)
    for ids_a, ids_b in zip(a.list_ids, b.list_ids):
        assert np.array_equal(ids_a, ids_b)
    for vec_a, vec_b in zip(a.list_vectors, b.list_vectors):
        assert np.array_equal(vec_a, vec_b)
    for bias_a, bias_b in zip(a.list_bias, b.list_bias):
        assert np.array_equal(bias_a, bias_b)


@pytest.mark.parametrize("seed", [0, 3])
def test_rebuild_same_seed_is_bitwise_identical(seed):
    tower = make_tower(seed)
    first = IVFIndex.build(tower, n_clusters=12, seed=seed)
    second = IVFIndex.build(tower, n_clusters=12, seed=seed)
    assert_indexes_identical(first, second)


def test_kmeans_same_seed_same_centroids():
    tower = make_tower(5)
    c1, a1 = kmeans_fit(tower.vectors, 8, seed=42)
    c2, a2 = kmeans_fit(tower.vectors, 8, seed=42)
    assert np.array_equal(c1, c2)
    assert np.array_equal(a1, a2)


def test_build_identical_across_worker_counts(monkeypatch):
    """workers=0 (inline) and workers=2 (process_map fan-out) must agree.

    The chunk size is shrunk so the tower actually splits into several
    assignment tasks — the point is that chunk *boundaries* are fixed and
    only the scheduling differs.
    """
    monkeypatch.setattr(index_mod, "ASSIGN_CHUNK", 64)
    tower = make_tower(7)
    inline = IVFIndex.build(tower, n_clusters=10, seed=1, workers=0)
    fanned = IVFIndex.build(tower, n_clusters=10, seed=1, workers=2)
    assert_indexes_identical(inline, fanned)
    rng = np.random.default_rng(99)
    for _ in range(3):
        query = rng.normal(size=tower.dim)
        assert np.array_equal(inline.search(query, 20, nprobe=3),
                              fanned.search(query, 20, nprobe=3))


def test_repeated_search_is_identical():
    tower = make_tower(2)
    ivf = IVFIndex.build(tower, n_clusters=9, seed=2)
    exact = ExactIndex(tower)
    query = np.random.default_rng(4).normal(size=tower.dim)
    for index, kwargs in ((ivf, {"nprobe": 4}), (exact, {})):
        first = index.search(query, 25, **kwargs)
        for _ in range(3):
            assert np.array_equal(index.search(query, 25, **kwargs), first)


def test_probe_order_tie_break_by_cell_id():
    """Identical centroids -> probe order falls back to ascending cell id."""
    n = 12
    tower = ItemTower(vectors=np.ones((n, 3)), bias=np.zeros(n),
                      ids=np.arange(1, n + 1, dtype=np.int64))
    ivf = IVFIndex.build(tower, n_clusters=4, seed=0)
    probes = ivf.probe_order(np.ones(3), nprobe=4)
    assert probes.tolist() == sorted(probes.tolist())


def test_duplicate_ties_rank_by_ascending_id():
    rng = np.random.default_rng(8)
    base = rng.normal(size=5)
    vectors = np.tile(base, (20, 1))
    # Shuffled ids so the canonical order is NOT storage order.
    ids = np.arange(1, 21, dtype=np.int64)
    rng.shuffle(ids)
    tower = ItemTower(vectors=vectors, bias=np.zeros(20), ids=ids)
    exact = ExactIndex(tower)
    assert exact.search(base, 6).tolist() == [1, 2, 3, 4, 5, 6]
    ivf = IVFIndex.build(tower, n_clusters=3, seed=0)
    assert ivf.search(base, 6, nprobe=3).tolist() == [1, 2, 3, 4, 5, 6]
