"""Property-based retrieval tests (seeded random towers, no hypothesis).

Each property is checked over a seeded family of random towers and
queries — the poor man's property-based testing the repo uses instead of
a hypothesis dependency.  The properties:

* IVF with ``nprobe == n_clusters`` IS brute force (bitwise id-for-id),
* recall@shortlist is monotone non-decreasing in ``nprobe`` and in the
  shortlist size (larger candidate sets can only keep or gain true
  top-z members),
* degenerate towers (all-equal rows, zero vectors, duplicates, fewer
  points than clusters) build and search without crashing and never
  return out-of-range or duplicate ids.
"""

import numpy as np
import pytest

from repro.retrieval import (ExactIndex, IVFIndex, ItemTower, SCORERS,
                             top_ids_by_score)

SEEDS = [0, 1, 2, 3, 4]
SCORER_NAMES = sorted(SCORERS)


def random_tower(seed, n=256, d=8, clustered=True):
    rng = np.random.default_rng(seed)
    if clustered:
        centers = rng.normal(size=(8, d)) * 3.0
        which = rng.integers(0, centers.shape[0], size=n)
        vectors = centers[which] + rng.normal(size=(n, d)) * 0.4
    else:
        vectors = rng.normal(size=(n, d))
    bias = rng.normal(size=n) * 0.1
    return ItemTower(vectors=vectors, bias=bias,
                     ids=np.arange(1, n + 1, dtype=np.int64)), rng


def recall_at(shortlist_ids, exact_top_z):
    exact = set(int(i) for i in exact_top_z)
    return len(exact & set(int(i) for i in shortlist_ids)) / len(exact)


@pytest.mark.parametrize("scorer", SCORER_NAMES)
@pytest.mark.parametrize("seed", SEEDS)
def test_full_nprobe_is_brute_force(seed, scorer):
    tower, rng = random_tower(seed)
    exact = ExactIndex(tower, scorer=scorer)
    ivf = IVFIndex.build(tower, n_clusters=12, seed=seed, scorer=scorer)
    for _ in range(5):
        query = rng.normal(size=tower.dim)
        want = exact.search(query, 25)
        got = ivf.search(query, 25, nprobe=ivf.n_clusters)
        assert np.array_equal(want, got)


@pytest.mark.parametrize("seed", SEEDS)
def test_recall_monotone_in_nprobe(seed):
    tower, rng = random_tower(seed)
    exact = ExactIndex(tower)
    ivf = IVFIndex.build(tower, n_clusters=16, seed=seed)
    for _ in range(3):
        query = rng.normal(size=tower.dim)
        top_z = exact.search(query, 10)
        last = -1.0
        for nprobe in range(1, ivf.n_clusters + 1):
            rec = recall_at(ivf.search(query, 40, nprobe=nprobe), top_z)
            assert rec >= last, (nprobe, rec, last)
            last = rec
        assert last == 1.0  # all probes == brute force == perfect recall


@pytest.mark.parametrize("seed", SEEDS)
def test_recall_monotone_in_shortlist_size(seed):
    tower, rng = random_tower(seed)
    exact = ExactIndex(tower)
    ivf = IVFIndex.build(tower, n_clusters=16, seed=seed)
    query = rng.normal(size=tower.dim)
    top_z = exact.search(query, 10)
    last = -1.0
    for shortlist in (5, 10, 20, 40, 80, 160):
        rec = recall_at(ivf.search(query, shortlist, nprobe=4), top_z)
        assert rec >= last, (shortlist, rec, last)
        last = rec


@pytest.mark.parametrize("seed", SEEDS)
def test_shortlists_are_nested_prefixes(seed):
    """search(k1) is literally the first k1 entries of search(k2), k1<k2."""
    tower, rng = random_tower(seed)
    ivf = IVFIndex.build(tower, n_clusters=10, seed=seed)
    query = rng.normal(size=tower.dim)
    big = ivf.search(query, 60, nprobe=3)
    for k in (1, 7, 30):
        assert np.array_equal(ivf.search(query, k, nprobe=3), big[:k])


def _assert_valid_ids(ids, n):
    ids = np.asarray(ids)
    assert ids.dtype.kind == "i"
    if ids.size:
        assert ids.min() >= 1 and ids.max() <= n
    assert len(set(ids.tolist())) == ids.size  # no duplicates


@pytest.mark.parametrize("scorer", SCORER_NAMES)
def test_degenerate_all_equal_rows(scorer):
    n = 40
    tower = ItemTower(vectors=np.ones((n, 4)), bias=np.zeros(n),
                      ids=np.arange(1, n + 1, dtype=np.int64))
    ivf = IVFIndex.build(tower, n_clusters=6, seed=0, scorer=scorer)
    assert ivf.size == n
    got = ivf.search(np.ones(4), 15, nprobe=6)
    _assert_valid_ids(got, n)
    # All scores tie -> canonical ascending-id order.
    assert np.array_equal(got, np.arange(1, 16))


@pytest.mark.parametrize("scorer", SCORER_NAMES)
def test_degenerate_zero_vectors(scorer):
    n = 25
    tower = ItemTower(vectors=np.zeros((n, 6)), bias=np.zeros(n),
                      ids=np.arange(1, n + 1, dtype=np.int64))
    exact = ExactIndex(tower, scorer=scorer)
    ivf = IVFIndex.build(tower, n_clusters=4, seed=1, scorer=scorer)
    query = np.zeros(6)
    _assert_valid_ids(exact.search(query, 10), n)
    got = ivf.search(query, 10, nprobe=4)
    _assert_valid_ids(got, n)
    assert np.array_equal(got, exact.search(query, 10))


def test_more_clusters_than_points_clamps():
    n = 5
    tower, rng = random_tower(9, n=n, d=3)
    ivf = IVFIndex.build(tower, n_clusters=64, seed=2)
    assert ivf.n_clusters == n
    got = ivf.search(rng.normal(size=3), 10, nprobe=64)
    _assert_valid_ids(got, n)
    assert got.size == n  # whole catalog fits in the shortlist


def test_duplicate_vectors_rank_by_id():
    rng = np.random.default_rng(11)
    base = rng.normal(size=8)
    vectors = np.tile(base, (30, 1))
    tower = ItemTower(vectors=vectors, bias=np.zeros(30),
                      ids=np.arange(1, 31, dtype=np.int64))
    ivf = IVFIndex.build(tower, n_clusters=5, seed=4)
    got = ivf.search(base, 10, nprobe=5)
    assert np.array_equal(got, np.arange(1, 11))


def test_top_ids_by_score_tie_break():
    scores = np.array([1.0, 2.0, 2.0, 0.5, 2.0])
    ids = np.array([9, 7, 3, 1, 5], dtype=np.int64)
    assert top_ids_by_score(scores, ids, 4).tolist() == [3, 5, 7, 9]
    with pytest.raises(ValueError):
        top_ids_by_score(scores, ids[:3], 2)


def test_search_never_returns_padding_or_unknown_ids():
    for seed in SEEDS:
        tower, rng = random_tower(seed, n=100)
        ivf = IVFIndex.build(tower, n_clusters=9, seed=seed)
        for nprobe in (1, 3, 9):
            got = ivf.search(rng.normal(size=tower.dim), 30, nprobe=nprobe)
            _assert_valid_ids(got, 100)
            assert 0 not in got
