"""Two-tower factorization against the frozen serving artifacts.

The load-bearing claims:

* the item tower is literally the output embedding table (rows 1..V,
  padding row excluded) plus the output bias,
* for GRU4Rec the head *is* a two-tower dot product, so tower scores
  match the full scorer,
* the re-rank stage (``score_view_candidates`` /
  :func:`repro.retrieval.rerank_top_z`) is **bitwise** identical to full
  scoring restricted to the candidate set — the property that makes
  IVF-served top-z exact over its shortlist,
* replay-mode bundles expose no tower and fall back cleanly.
"""

import numpy as np
import pytest

from repro.retrieval import (SCORERS, build_item_tower, dot_scores,
                             rerank_top_z, top_ids_by_score, user_vector)
from repro.serve import (ScoreView, SessionStore, build_artifacts,
                         score_view_candidates, score_views)
from tests.serve.conftest import random_histories


def _served_view(model, artifacts, seed=21, steps=5):
    store = SessionStore()
    histories = random_histories(seed=seed, num_users=1, num_steps=steps,
                                 num_items=model.num_items)
    for basket in histories[0]:
        store.append_event(0, basket, artifacts)
    return store.view(0, artifacts)


@pytest.fixture(scope="module")
def causer_artifacts(causer_model):
    return build_artifacts(causer_model, generation=1)


@pytest.fixture(scope="module")
def gru_artifacts(gru_model):
    return build_artifacts(gru_model, generation=1)


@pytest.mark.parametrize("fixture", ["causer_artifacts", "gru_artifacts"])
def test_item_tower_is_the_output_head(fixture, request):
    artifacts = request.getfixturevalue(fixture)
    tower = build_item_tower(artifacts)
    assert tower is not None
    assert np.array_equal(tower.vectors, artifacts.output_table[1:])
    assert np.array_equal(tower.bias, artifacts.output_bias[1:])
    assert np.array_equal(tower.ids,
                          np.arange(1, artifacts.num_items + 1))
    for array in (tower.vectors, tower.bias, tower.ids):
        assert not array.flags.writeable


def test_replay_model_has_no_tower(replay_model):
    artifacts = build_artifacts(replay_model, generation=1)
    assert artifacts.mode == "replay"
    assert build_item_tower(artifacts) is None
    view = _served_view(replay_model, artifacts)
    assert user_vector(artifacts, view) is None


def test_user_vector_none_for_missing_or_empty_view(gru_artifacts):
    assert user_vector(gru_artifacts, None) is None
    empty = ScoreView(user_id=0, events=(), states=None, last=None)
    assert user_vector(gru_artifacts, empty) is None


def test_gru_tower_scores_match_full_head(gru_model, gru_artifacts):
    """GRU4Rec's head is exactly two-tower: tower dot == full scorer."""
    view = _served_view(gru_model, gru_artifacts)
    tower = build_item_tower(gru_artifacts)
    query = user_vector(gru_artifacts, view)
    assert query is not None and query.shape == (tower.dim,)
    via_tower = dot_scores(query, tower.vectors, tower.bias)
    full = np.asarray(score_views(gru_artifacts, [view]))[0]
    np.testing.assert_allclose(via_tower, full[1:], rtol=1e-12, atol=1e-12)


def test_causer_user_vector_shape(causer_model, causer_artifacts):
    view = _served_view(causer_model, causer_artifacts)
    tower = build_item_tower(causer_artifacts)
    query = user_vector(causer_artifacts, view)
    assert query is not None and query.shape == (tower.dim,)


@pytest.mark.parametrize("fixture,model_fixture",
                         [("causer_artifacts", "causer_model"),
                          ("gru_artifacts", "gru_model")])
def test_rerank_scores_bitwise_equal_full_restriction(fixture, model_fixture,
                                                      request):
    """score_view_candidates(cands) == full_scores[cands], bit for bit."""
    artifacts = request.getfixturevalue(fixture)
    model = request.getfixturevalue(model_fixture)
    view = _served_view(model, artifacts)
    full = np.asarray(score_views(artifacts, [view]))[0]
    rng = np.random.default_rng(31)
    for size in (1, 7, model.num_items):
        cands = rng.choice(np.arange(1, model.num_items + 1), size=size,
                           replace=False).astype(np.int64)
        restricted = score_view_candidates(artifacts, view, cands)
        assert np.array_equal(restricted, full[cands])


@pytest.mark.parametrize("fixture,model_fixture",
                         [("causer_artifacts", "causer_model"),
                          ("gru_artifacts", "gru_model")])
def test_rerank_top_z_matches_full_ranking(fixture, model_fixture, request):
    artifacts = request.getfixturevalue(fixture)
    model = request.getfixturevalue(model_fixture)
    view = _served_view(model, artifacts, seed=23)
    full = np.asarray(score_views(artifacts, [view]))[0]
    ids = np.arange(1, model.num_items + 1, dtype=np.int64)
    want = [int(i) for i in top_ids_by_score(full[1:], ids, 5)]
    got = rerank_top_z(artifacts, view, ids, 5)
    assert got == want


def test_rerank_empty_candidates(causer_artifacts, causer_model):
    view = _served_view(causer_model, causer_artifacts)
    empty = np.empty(0, dtype=np.int64)
    assert score_view_candidates(causer_artifacts, view, empty).size == 0
    assert rerank_top_z(causer_artifacts, view, empty, 5) == []


def test_scorer_registry_contract():
    assert set(SCORERS) == {"dot", "l2"}
    rng = np.random.default_rng(0)
    query = rng.normal(size=4)
    vectors = rng.normal(size=(9, 4))
    bias = rng.normal(size=9)
    for scorer in SCORERS.values():
        out = scorer(query, vectors, bias)
        assert out.shape == (9,)
