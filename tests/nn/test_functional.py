"""Tests for functional ops: softmax family, dropout, lookups."""

import numpy as np
import pytest

from repro.nn import Tensor, gradient_check
from repro.nn import functional as F


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 6)))
        out = F.softmax(x).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4))
        assert (out > 0).all()

    def test_stability_with_large_values(self):
        x = Tensor(np.array([[1000.0, 1001.0]]))
        out = F.softmax(x).data
        assert np.isfinite(out).all()
        assert out[0, 1] > out[0, 0]

    def test_gradient(self):
        x = Tensor(np.random.default_rng(1).normal(size=(2, 4)),
                   requires_grad=True)
        weights = Tensor(np.random.default_rng(2).normal(size=(2, 4)))
        err = gradient_check(lambda a: (F.softmax(a) * weights).sum(), [x])
        assert err < 1e-6

    def test_matches_log_softmax(self):
        x = Tensor(np.random.default_rng(3).normal(size=(3, 5)))
        np.testing.assert_allclose(np.log(F.softmax(x).data),
                                   F.log_softmax(x).data, atol=1e-10)


class TestMaskedSoftmax:
    def test_masked_positions_zero(self):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4)))
        mask = np.array([[True, True, False, False],
                         [True, False, True, False]])
        out = F.masked_softmax(x, mask).data
        assert (out[~mask] == 0).all()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(2), rtol=1e-6)

    def test_all_masked_row_yields_zeros(self):
        x = Tensor(np.zeros((1, 3)))
        mask = np.zeros((1, 3), dtype=bool)
        out = F.masked_softmax(x, mask).data
        np.testing.assert_allclose(out, np.zeros((1, 3)))

    def test_gradient_flows_through_unmasked(self):
        x = Tensor(np.random.default_rng(1).normal(size=(2, 4)),
                   requires_grad=True)
        mask = np.array([[True, True, True, False]] * 2)
        F.masked_softmax(x, mask).sum().backward()
        assert x.grad is not None

    def test_broadcast_mask_middle_axis(self):
        # The Causer uses (B, T, 1) scores against a (B, T, C) mask.
        x = Tensor(np.random.default_rng(2).normal(size=(2, 5, 1)))
        mask = np.random.default_rng(3).random((2, 5, 3)) > 0.4
        out = F.masked_softmax(x, mask, axis=1).data
        sums = out.sum(axis=1)
        valid_cols = mask.any(axis=1)
        np.testing.assert_allclose(sums[valid_cols], 1.0, rtol=1e-6)


class TestDropout:
    def test_identity_at_eval(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_zero_rate_identity(self):
        x = Tensor(np.ones((4,)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_scaling_preserves_mean(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.5, training=True)


class TestLookups:
    def test_embedding_lookup_gradient_scatter(self):
        weight = Tensor(np.random.default_rng(0).normal(size=(5, 3)),
                        requires_grad=True)
        out = F.embedding_lookup(weight, np.array([1, 1, 4]))
        out.sum().backward()
        assert weight.grad[1, 0] == pytest.approx(2.0)
        assert weight.grad[4, 0] == pytest.approx(1.0)
        assert weight.grad[0, 0] == pytest.approx(0.0)

    def test_multihot_lookup(self):
        weight = Tensor(np.eye(3))
        multihot = np.array([[1.0, 0.0, 1.0]])
        out = F.multihot_lookup(weight, multihot)
        np.testing.assert_allclose(out.data, [[1.0, 0.0, 1.0]])

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), depth=3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_linear_matches_manual(self):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3)))
        w = Tensor(np.random.default_rng(1).normal(size=(4, 3)))
        b = Tensor(np.random.default_rng(2).normal(size=(4,)))
        out = F.linear(x, w, b)
        np.testing.assert_allclose(out.data, x.data @ w.data.T + b.data)
