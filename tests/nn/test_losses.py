"""Tests for loss functions against hand-computed references."""

import numpy as np
import pytest

from repro.nn import Tensor, gradient_check, losses


class TestBCEWithLogits:
    def test_matches_manual(self):
        logits = Tensor(np.array([0.5, -1.0, 2.0]))
        targets = np.array([1.0, 0.0, 1.0])
        out = losses.bce_with_logits(logits, targets).item()
        p = 1 / (1 + np.exp(-logits.data))
        manual = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert out == pytest.approx(manual, rel=1e-10)

    def test_stable_at_extremes(self):
        logits = Tensor(np.array([1000.0, -1000.0]))
        out = losses.bce_with_logits(logits, np.array([1.0, 0.0])).item()
        assert np.isfinite(out)
        assert out == pytest.approx(0.0, abs=1e-8)

    def test_mask_excludes_entries(self):
        logits = Tensor(np.array([[1.0, 100.0]]))
        targets = np.array([[1.0, 0.0]])
        mask = np.array([[1.0, 0.0]])
        masked = losses.bce_with_logits(logits, targets, mask=mask).item()
        unmasked_single = losses.bce_with_logits(
            Tensor(np.array([1.0])), np.array([1.0])).item()
        assert masked == pytest.approx(unmasked_single, rel=1e-10)

    def test_all_masked_returns_zero(self):
        logits = Tensor(np.ones((2, 2)))
        out = losses.bce_with_logits(logits, np.ones((2, 2)),
                                     mask=np.zeros((2, 2)))
        assert out.item() == pytest.approx(0.0)

    def test_gradient(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(3, 2)),
                        requires_grad=True)
        targets = np.array([[1, 0], [0, 1], [1, 1]], dtype=float)
        err = gradient_check(
            lambda x: losses.bce_with_logits(x, targets), [logits])
        assert err < 1e-6


class TestBCEOnProbabilities:
    def test_agrees_with_logit_version(self):
        logits = np.array([0.3, -0.7, 1.2])
        probs = Tensor(1 / (1 + np.exp(-logits)))
        targets = np.array([1.0, 0.0, 1.0])
        a = losses.bce_on_probabilities(probs, targets).item()
        b = losses.bce_with_logits(Tensor(logits), targets).item()
        assert a == pytest.approx(b, rel=1e-6)

    def test_clipping_avoids_infinity(self):
        probs = Tensor(np.array([0.0, 1.0]))
        out = losses.bce_on_probabilities(probs, np.array([1.0, 0.0])).item()
        assert np.isfinite(out)


class TestBPRLoss:
    def test_zero_when_pos_much_larger(self):
        pos = Tensor(np.array([100.0]))
        neg = Tensor(np.array([0.0]))
        assert losses.bpr_loss(pos, neg).item() == pytest.approx(0.0, abs=1e-8)

    def test_symmetric_point(self):
        pos = Tensor(np.array([1.0]))
        neg = Tensor(np.array([1.0]))
        assert losses.bpr_loss(pos, neg).item() == pytest.approx(np.log(2.0))

    def test_gradient_direction(self):
        pos = Tensor(np.array([0.0]), requires_grad=True)
        neg = Tensor(np.array([0.0]), requires_grad=True)
        losses.bpr_loss(pos, neg).backward()
        assert pos.grad[0] < 0  # increasing pos decreases loss
        assert neg.grad[0] > 0


class TestOthers:
    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]))
        out = losses.mse_loss(pred, np.array([0.0, 0.0])).item()
        assert out == pytest.approx(2.5)

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        out = losses.cross_entropy(logits, np.array([0, 1])).item()
        assert out == pytest.approx(0.0, abs=1e-8)

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((1, 4)))
        out = losses.cross_entropy(logits, np.array([2])).item()
        assert out == pytest.approx(np.log(4.0))

    def test_l1_penalty(self):
        t = Tensor(np.array([[-1.0, 2.0], [0.0, -3.0]]))
        assert losses.l1_penalty(t).item() == pytest.approx(6.0)

    def test_l2_penalty(self):
        t = Tensor(np.array([1.0, -2.0]))
        assert losses.l2_penalty(t).item() == pytest.approx(5.0)


class TestFusedCrossEntropy:
    """Gradient and value checks for the fused softmax-cross-entropy kernel.

    ``losses.cross_entropy`` now lowers to a single node whose backward is
    the textbook ``(softmax - onehot) / batch``; these tests pin it against
    finite differences and the composite log-softmax formula it replaced.
    """

    def test_batched_gradient(self):
        rng = np.random.default_rng(11)
        logits = Tensor(rng.normal(size=(5, 7)), requires_grad=True)
        targets = rng.integers(0, 7, size=5)
        err = gradient_check(
            lambda x: losses.cross_entropy(x, targets), [logits])
        assert err < 1e-6

    def test_gradient_is_softmax_minus_onehot(self):
        rng = np.random.default_rng(12)
        data = rng.normal(size=(4, 6))
        targets = np.array([2, 0, 5, 3])
        logits = Tensor(data, requires_grad=True)
        losses.cross_entropy(logits, targets).backward()
        shifted = np.exp(data - data.max(axis=1, keepdims=True))
        softmax = shifted / shifted.sum(axis=1, keepdims=True)
        expected = softmax.copy()
        expected[np.arange(4), targets] -= 1.0
        np.testing.assert_allclose(logits.grad, expected / 4.0, atol=1e-12)

    def test_matches_composite_log_softmax(self):
        rng = np.random.default_rng(13)
        data = rng.normal(size=(3, 5)) * 4.0
        targets = np.array([1, 4, 0])
        fused = losses.cross_entropy(Tensor(data), targets).item()
        log_probs = data - data.max(axis=1, keepdims=True)
        log_probs -= np.log(np.exp(log_probs).sum(axis=1, keepdims=True))
        composite = -log_probs[np.arange(3), targets].mean()
        assert fused == pytest.approx(composite, rel=1e-12)

    def test_stable_for_large_logits(self):
        logits = Tensor(np.array([[1000.0, -1000.0, 500.0]]),
                        requires_grad=True)
        out = losses.cross_entropy(logits, np.array([0]))
        assert np.isfinite(out.item())
        out.backward()
        assert np.all(np.isfinite(logits.grad))


class TestFusedBCEGradients:
    """Extra gradient coverage for the fused BCE-with-logits kernel."""

    def test_masked_gradient(self):
        rng = np.random.default_rng(14)
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        targets = (rng.random((3, 4)) > 0.5).astype(float)
        mask = np.array([[1.0, 1.0, 0.0, 1.0],
                         [0.0, 0.0, 1.0, 1.0],
                         [1.0, 0.0, 0.0, 0.0]])
        err = gradient_check(
            lambda x: losses.bce_with_logits(x, targets, mask=mask), [logits])
        assert err < 1e-6

    def test_masked_entries_get_zero_gradient(self):
        logits = Tensor(np.array([[0.3, -0.8]]), requires_grad=True)
        mask = np.array([[1.0, 0.0]])
        losses.bce_with_logits(logits, np.array([[1.0, 0.0]]),
                               mask=mask).backward()
        assert logits.grad[0, 1] == 0.0
        assert logits.grad[0, 0] != 0.0
