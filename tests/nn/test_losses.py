"""Tests for loss functions against hand-computed references."""

import numpy as np
import pytest

from repro.nn import Tensor, gradient_check, losses


class TestBCEWithLogits:
    def test_matches_manual(self):
        logits = Tensor(np.array([0.5, -1.0, 2.0]))
        targets = np.array([1.0, 0.0, 1.0])
        out = losses.bce_with_logits(logits, targets).item()
        p = 1 / (1 + np.exp(-logits.data))
        manual = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert out == pytest.approx(manual, rel=1e-10)

    def test_stable_at_extremes(self):
        logits = Tensor(np.array([1000.0, -1000.0]))
        out = losses.bce_with_logits(logits, np.array([1.0, 0.0])).item()
        assert np.isfinite(out)
        assert out == pytest.approx(0.0, abs=1e-8)

    def test_mask_excludes_entries(self):
        logits = Tensor(np.array([[1.0, 100.0]]))
        targets = np.array([[1.0, 0.0]])
        mask = np.array([[1.0, 0.0]])
        masked = losses.bce_with_logits(logits, targets, mask=mask).item()
        unmasked_single = losses.bce_with_logits(
            Tensor(np.array([1.0])), np.array([1.0])).item()
        assert masked == pytest.approx(unmasked_single, rel=1e-10)

    def test_all_masked_returns_zero(self):
        logits = Tensor(np.ones((2, 2)))
        out = losses.bce_with_logits(logits, np.ones((2, 2)),
                                     mask=np.zeros((2, 2)))
        assert out.item() == pytest.approx(0.0)

    def test_gradient(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(3, 2)),
                        requires_grad=True)
        targets = np.array([[1, 0], [0, 1], [1, 1]], dtype=float)
        err = gradient_check(
            lambda x: losses.bce_with_logits(x, targets), [logits])
        assert err < 1e-6


class TestBCEOnProbabilities:
    def test_agrees_with_logit_version(self):
        logits = np.array([0.3, -0.7, 1.2])
        probs = Tensor(1 / (1 + np.exp(-logits)))
        targets = np.array([1.0, 0.0, 1.0])
        a = losses.bce_on_probabilities(probs, targets).item()
        b = losses.bce_with_logits(Tensor(logits), targets).item()
        assert a == pytest.approx(b, rel=1e-6)

    def test_clipping_avoids_infinity(self):
        probs = Tensor(np.array([0.0, 1.0]))
        out = losses.bce_on_probabilities(probs, np.array([1.0, 0.0])).item()
        assert np.isfinite(out)


class TestBPRLoss:
    def test_zero_when_pos_much_larger(self):
        pos = Tensor(np.array([100.0]))
        neg = Tensor(np.array([0.0]))
        assert losses.bpr_loss(pos, neg).item() == pytest.approx(0.0, abs=1e-8)

    def test_symmetric_point(self):
        pos = Tensor(np.array([1.0]))
        neg = Tensor(np.array([1.0]))
        assert losses.bpr_loss(pos, neg).item() == pytest.approx(np.log(2.0))

    def test_gradient_direction(self):
        pos = Tensor(np.array([0.0]), requires_grad=True)
        neg = Tensor(np.array([0.0]), requires_grad=True)
        losses.bpr_loss(pos, neg).backward()
        assert pos.grad[0] < 0  # increasing pos decreases loss
        assert neg.grad[0] > 0


class TestOthers:
    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]))
        out = losses.mse_loss(pred, np.array([0.0, 0.0])).item()
        assert out == pytest.approx(2.5)

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        out = losses.cross_entropy(logits, np.array([0, 1])).item()
        assert out == pytest.approx(0.0, abs=1e-8)

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((1, 4)))
        out = losses.cross_entropy(logits, np.array([2])).item()
        assert out == pytest.approx(np.log(4.0))

    def test_l1_penalty(self):
        t = Tensor(np.array([[-1.0, 2.0], [0.0, -3.0]]))
        assert losses.l1_penalty(t).item() == pytest.approx(6.0)

    def test_l2_penalty(self):
        t = Tensor(np.array([1.0, -2.0]))
        assert losses.l2_penalty(t).item() == pytest.approx(5.0)
