"""Tests for parameter initializers."""

import numpy as np
import pytest

from repro.nn import init


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestXavier:
    def test_uniform_bound(self, rng):
        w = init.xavier_uniform((50, 100), rng)
        bound = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= bound

    def test_normal_std(self, rng):
        w = init.xavier_normal((200, 300), rng)
        expected = np.sqrt(2.0 / 500)
        assert w.std() == pytest.approx(expected, rel=0.1)

    def test_gain_scales(self, rng):
        small = init.xavier_uniform((50, 50), np.random.default_rng(1))
        large = init.xavier_uniform((50, 50), np.random.default_rng(1),
                                    gain=2.0)
        np.testing.assert_allclose(large, 2.0 * small)

    def test_fans_1d(self, rng):
        w = init.xavier_uniform((64,), rng)
        assert w.shape == (64,)

    def test_scalar_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            init.xavier_uniform((), rng)


class TestSimpleInits:
    def test_normal_std(self, rng):
        w = init.normal((500, 500), rng, std=0.02)
        assert w.std() == pytest.approx(0.02, rel=0.05)
        assert w.mean() == pytest.approx(0.0, abs=0.001)

    def test_uniform_range(self, rng):
        w = init.uniform((100, 100), rng, low=-0.1, high=0.3)
        assert w.min() >= -0.1
        assert w.max() <= 0.3

    def test_zeros(self):
        np.testing.assert_array_equal(init.zeros((3, 4)), np.zeros((3, 4)))


class TestOrthogonal:
    def test_square_orthogonality(self, rng):
        w = init.orthogonal((32, 32), rng)
        np.testing.assert_allclose(w @ w.T, np.eye(32), atol=1e-10)

    def test_tall_matrix_columns_orthonormal(self, rng):
        w = init.orthogonal((48, 16), rng)
        np.testing.assert_allclose(w.T @ w, np.eye(16), atol=1e-10)

    def test_wide_matrix_rows_orthonormal(self, rng):
        w = init.orthogonal((16, 48), rng)
        np.testing.assert_allclose(w @ w.T, np.eye(16), atol=1e-10)

    def test_gain(self, rng):
        w = init.orthogonal((8, 8), rng, gain=3.0)
        np.testing.assert_allclose(w @ w.T, 9.0 * np.eye(8), atol=1e-9)

    def test_1d_rejected(self, rng):
        with pytest.raises(ValueError):
            init.orthogonal((8,), rng)

    def test_reproducible(self):
        a = init.orthogonal((8, 8), np.random.default_rng(5))
        b = init.orthogonal((8, 8), np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)
