"""Tests for attention modules."""

import numpy as np
import pytest

from repro.nn import (AdditiveAttention, BilinearAttention,
                      MultiHeadSelfAttention, Tensor, TransformerBlock,
                      gradient_check)


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestBilinearAttention:
    def test_weights_sum_to_one(self, rng):
        att = BilinearAttention(4, rng)
        states = Tensor(rng.normal(size=(3, 6, 4)))
        query = Tensor(rng.normal(size=(3, 4)))
        weights = att(states, query).data
        np.testing.assert_allclose(weights.sum(axis=-1), np.ones(3), rtol=1e-6)

    def test_mask_respected(self, rng):
        att = BilinearAttention(4, rng)
        states = Tensor(rng.normal(size=(2, 5, 4)))
        query = Tensor(rng.normal(size=(2, 4)))
        mask = np.array([[True, True, False, False, False]] * 2)
        weights = att(states, query, mask=mask).data
        assert (weights[:, 2:] == 0).all()
        np.testing.assert_allclose(weights.sum(axis=-1), np.ones(2), rtol=1e-6)

    def test_identity_init_recency_bias(self, rng):
        """With A≈I, a query equal to the last state favours similar states."""
        att = BilinearAttention(4, rng, identity_init=True)
        base = rng.normal(size=4)
        states = np.stack([base + rng.normal(size=4) * 2, base]).reshape(1, 2, 4)
        weights = att(Tensor(states), Tensor(base.reshape(1, 4))).data
        assert weights[0, 1] > weights[0, 0]

    def test_raw_scores_shape(self, rng):
        att = BilinearAttention(4, rng)
        scores = att.raw_scores(Tensor(rng.normal(size=(2, 3, 4))),
                                Tensor(rng.normal(size=(2, 4))))
        assert scores.shape == (2, 3)


class TestAdditiveAttention:
    def test_weights_normalized(self, rng):
        att = AdditiveAttention(4, rng)
        states = Tensor(rng.normal(size=(2, 5, 4)))
        query = Tensor(rng.normal(size=(2, 4)))
        weights = att(states, query).data
        np.testing.assert_allclose(weights.sum(axis=-1), np.ones(2), rtol=1e-6)

    def test_gradient_flows(self, rng):
        att = AdditiveAttention(4, rng)
        states = Tensor(rng.normal(size=(1, 3, 4)), requires_grad=True)
        query = Tensor(rng.normal(size=(1, 4)))
        att(states, query).sum().backward()
        assert states.grad is not None


class TestMultiHeadSelfAttention:
    def test_dim_divisibility(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(7, 2, rng)

    def test_output_shape(self, rng):
        att = MultiHeadSelfAttention(8, 2, rng)
        out = att(Tensor(rng.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_causality(self, rng):
        """Changing a future position must not change earlier outputs."""
        att = MultiHeadSelfAttention(8, 2, rng)
        x = rng.normal(size=(1, 4, 8))
        out1 = att(Tensor(x), causal=True).data.copy()
        x2 = x.copy()
        x2[0, 3] += 100.0
        out2 = att(Tensor(x2), causal=True).data
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-10)

    def test_non_causal_sees_future(self, rng):
        att = MultiHeadSelfAttention(8, 2, rng)
        x = rng.normal(size=(1, 4, 8))
        out1 = att(Tensor(x), causal=False).data.copy()
        x2 = x.copy()
        x2[0, 3] += 100.0
        out2 = att(Tensor(x2), causal=False).data
        assert not np.allclose(out1[0, 0], out2[0, 0])

    def test_pad_mask_blocks_attention(self, rng):
        att = MultiHeadSelfAttention(8, 1, rng)
        x = rng.normal(size=(1, 4, 8))
        pad = np.array([[True, True, True, False]])
        out1 = att(Tensor(x), pad_mask=pad, causal=False).data.copy()
        x2 = x.copy()
        x2[0, 3] += 50.0
        out2 = att(Tensor(x2), pad_mask=pad, causal=False).data
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-10)


class TestTransformerBlock:
    def test_shape_preserved(self, rng):
        block = TransformerBlock(8, 2, rng)
        out = block(Tensor(rng.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_residual_path(self, rng):
        """Zeroing attention/FFN weights leaves the input unchanged."""
        block = TransformerBlock(8, 2, rng)
        block.attn.w_o.weight.data[...] = 0.0
        block.ffn2.weight.data[...] = 0.0
        block.ffn2.bias.data[...] = 0.0
        x = rng.normal(size=(1, 3, 8))
        out = block(Tensor(x)).data
        np.testing.assert_allclose(out, x, atol=1e-10)


class TestAttentionGradients:
    """Finite-difference gradient checks for every attention module.

    The earlier tests only asserted that *some* gradient arrives; these
    verify the analytic gradients numerically, for inputs and parameters,
    through the masked-softmax paths the models actually use.
    """

    def test_bilinear_input_gradients(self, rng):
        att = BilinearAttention(3, rng)
        states = Tensor(rng.normal(size=(2, 4, 3)), requires_grad=True)
        query = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        mask = np.array([[True, True, True, False]] * 2)

        def run(s, q):
            return (att(s, q, mask=mask) ** 2).sum()

        assert gradient_check(run, [states, query]) < 1e-5

    def test_bilinear_projection_gradient(self, rng):
        att = BilinearAttention(3, rng)
        states = Tensor(rng.normal(size=(2, 4, 3)))
        query = Tensor(rng.normal(size=(2, 3)))

        def run(_proj):
            return (att.raw_scores(states, query) ** 2).sum()

        assert gradient_check(run, [att.proj]) < 1e-5

    def test_additive_parameter_gradients(self, rng):
        att = AdditiveAttention(3, rng)
        states = Tensor(rng.normal(size=(1, 4, 3)))
        query = Tensor(rng.normal(size=(1, 3)))
        params = [att.w_state.weight, att.w_query.weight,
                  att.w_query.bias, att.v]

        def run(*_params):
            return (att(states, query) ** 2).sum()

        assert gradient_check(run, params) < 1e-5

    def test_multihead_input_gradient_masked(self, rng):
        att = MultiHeadSelfAttention(4, 2, rng)
        x = Tensor(rng.normal(size=(1, 3, 4)), requires_grad=True)
        pad = np.array([[True, True, False]])

        def run(a):
            return (att(a, pad_mask=pad, causal=True) ** 2).sum()

        assert gradient_check(run, [x]) < 1e-5

    def test_multihead_weight_gradients(self, rng):
        att = MultiHeadSelfAttention(4, 2, rng)
        x = Tensor(rng.normal(size=(1, 3, 4)))
        params = [att.w_q.weight, att.w_k.weight, att.w_v.weight,
                  att.w_o.weight]

        def run(*_params):
            return (att(x, causal=True) ** 2).sum()

        assert gradient_check(run, params) < 1e-4

    def test_transformer_block_input_gradient(self, rng):
        block = TransformerBlock(4, 2, rng)
        x = Tensor(rng.normal(size=(1, 3, 4)), requires_grad=True)

        def run(a):
            return (block(a, causal=True) ** 2).sum()

        assert gradient_check(run, [x]) < 1e-4
