"""Unit tests for the autograd engine: every op is gradient-checked."""

import numpy as np
import pytest

from repro.nn import Tensor, concat, gradient_check, maximum, stack, where


def make(shape, seed=0, requires_grad=True):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=requires_grad)


class TestBasics:
    def test_data_coerced_to_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64

    def test_shape_properties(self):
        t = make((2, 3))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert len(t) == 2

    def test_detach_cuts_graph(self):
        t = make((2,))
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_backward_requires_grad(self):
        t = Tensor([1.0], requires_grad=False)
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_shape_mismatch(self):
        t = make((2, 2))
        out = t * 2
        with pytest.raises(ValueError):
            out.backward(np.ones(3))

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(make((1,)))
        assert "requires_grad" not in repr(Tensor([1.0]))


class TestArithmeticGradients:
    def test_add(self):
        a, b = make((3, 2), 1), make((3, 2), 2)
        assert gradient_check(lambda x, y: (x + y).sum(), [a, b]) < 1e-6

    def test_add_broadcast(self):
        a, b = make((3, 2), 1), make((2,), 2)
        assert gradient_check(lambda x, y: (x + y).sum(), [a, b]) < 1e-6

    def test_sub(self):
        a, b = make((2, 2), 1), make((2, 2), 2)
        assert gradient_check(lambda x, y: (x - y).sum(), [a, b]) < 1e-6

    def test_mul_broadcast(self):
        a, b = make((4, 3), 1), make((1, 3), 2)
        assert gradient_check(lambda x, y: (x * y).sum(), [a, b]) < 1e-6

    def test_div(self):
        a = make((3,), 1)
        b = Tensor(np.abs(np.random.default_rng(2).normal(size=(3,))) + 1.0,
                   requires_grad=True)
        assert gradient_check(lambda x, y: (x / y).sum(), [a, b]) < 1e-6

    def test_rsub_rdiv_radd(self):
        a = Tensor([2.0, 4.0], requires_grad=True)
        out = (1.0 - a) + (8.0 / a) + (3.0 + a)
        out.sum().backward()
        # d/da [-a + 8/a + a] = -8/a^2
        np.testing.assert_allclose(a.grad, -8.0 / a.data ** 2)

    def test_pow(self):
        a = Tensor([1.5, 2.5], requires_grad=True)
        assert gradient_check(lambda x: (x ** 3).sum(), [a]) < 1e-6

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            make((2,)) ** make((2,))

    def test_neg(self):
        a = make((2, 2))
        assert gradient_check(lambda x: (-x).sum(), [a]) < 1e-6

    def test_scalar_mul_grad(self):
        a = make((3,))
        (a * 5.0).sum().backward()
        np.testing.assert_allclose(a.grad, 5.0 * np.ones(3))


class TestMatmulGradients:
    def test_2d_2d(self):
        a, b = make((3, 4), 1), make((4, 2), 2)
        assert gradient_check(lambda x, y: (x @ y).sum(), [a, b]) < 1e-6

    def test_batched_3d_2d(self):
        a, b = make((2, 3, 4), 1), make((4, 5), 2)
        assert gradient_check(lambda x, y: (x @ y).sum(), [a, b]) < 1e-6

    def test_batched_3d_3d(self):
        a, b = make((2, 3, 4), 1), make((2, 4, 5), 2)
        assert gradient_check(lambda x, y: (x @ y).sum(), [a, b]) < 1e-6

    def test_vector_matrix(self):
        a, b = make((4,), 1), make((4, 3), 2)
        assert gradient_check(lambda x, y: (x @ y).sum(), [a, b]) < 1e-6

    def test_matrix_vector(self):
        a, b = make((3, 4), 1), make((4,), 2)
        assert gradient_check(lambda x, y: (x @ y).sum(), [a, b]) < 1e-6

    def test_forward_value(self):
        a, b = make((2, 3), 1), make((3, 2), 2)
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)


class TestShapeOps:
    def test_transpose_default(self):
        a = make((2, 3))
        assert gradient_check(lambda x: (x.T * x.T).sum(), [a]) < 1e-6

    def test_transpose_axes(self):
        a = make((2, 3, 4))
        out = a.transpose(0, 2, 1)
        assert out.shape == (2, 4, 3)
        assert gradient_check(
            lambda x: (x.transpose(0, 2, 1) ** 2).sum(), [a]) < 1e-6

    def test_reshape(self):
        a = make((2, 6))
        assert a.reshape(3, 4).shape == (3, 4)
        assert a.reshape((4, 3)).shape == (4, 3)
        assert gradient_check(lambda x: (x.reshape(3, 4) ** 2).sum(), [a]) < 1e-6

    def test_getitem_slice(self):
        a = make((4, 3))
        assert gradient_check(lambda x: (x[1:3] ** 2).sum(), [a]) < 1e-6

    def test_getitem_fancy_accumulates(self):
        a = make((5, 2))
        idx = np.array([0, 0, 3])
        out = a[idx].sum()
        out.backward()
        assert a.grad[0, 0] == pytest.approx(2.0)  # row 0 picked twice
        assert a.grad[3, 0] == pytest.approx(1.0)
        assert a.grad[1, 0] == pytest.approx(0.0)


class TestReductions:
    def test_sum_all(self):
        a = make((3, 4))
        assert gradient_check(lambda x: (x.sum() * 2), [a]) < 1e-6

    def test_sum_axis(self):
        a = make((3, 4))
        assert gradient_check(lambda x: (x.sum(axis=0) ** 2).sum(), [a]) < 1e-6

    def test_sum_keepdims(self):
        a = make((3, 4))
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        assert gradient_check(
            lambda x: (x.sum(axis=1, keepdims=True) ** 2).sum(), [a]) < 1e-6

    def test_mean(self):
        a = make((2, 5))
        (a.mean()).backward()
        np.testing.assert_allclose(a.grad, np.full((2, 5), 0.1))

    def test_mean_axis(self):
        a = make((2, 5))
        assert gradient_check(lambda x: (x.mean(axis=1) ** 2).sum(), [a]) < 1e-6

    def test_max_axis(self):
        a = Tensor([[1.0, 5.0], [7.0, 2.0]], requires_grad=True)
        out = a.max(axis=1)
        np.testing.assert_allclose(out.data, [5.0, 7.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [1, 0]])

    def test_max_all_gradient_split_on_ties(self):
        a = Tensor([3.0, 3.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["exp", "tanh", "sigmoid", "relu", "abs"])
    def test_gradients(self, op):
        a = make((3, 3), seed=hash(op) % 100)
        assert gradient_check(lambda x: getattr(x, op)().sum(), [a]) < 1e-5

    def test_log_sqrt_on_positive(self):
        a = Tensor(np.abs(np.random.default_rng(0).normal(size=(4,))) + 0.5,
                   requires_grad=True)
        assert gradient_check(lambda x: x.log().sum(), [a]) < 1e-6
        assert gradient_check(lambda x: x.sqrt().sum(), [a]) < 1e-6

    def test_sigmoid_extreme_values_stable(self):
        a = Tensor([-1000.0, 1000.0])
        out = a.sigmoid().data
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_clip(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        out = a.clip(-1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestCombinators:
    def test_concat_gradients(self):
        a, b = make((2, 3), 1), make((2, 2), 2)
        assert gradient_check(
            lambda x, y: (concat([x, y], axis=1) ** 2).sum(), [a, b]) < 1e-6

    def test_concat_forward(self):
        a, b = make((2, 3), 1), make((2, 2), 2)
        out = concat([a, b], axis=-1)
        assert out.shape == (2, 5)

    def test_stack(self):
        a, b = make((3,), 1), make((3,), 2)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        assert gradient_check(
            lambda x, y: (stack([x, y], axis=1) ** 2).sum(), [a, b]) < 1e-6

    def test_where(self):
        a, b = make((4,), 1), make((4,), 2)
        cond = np.array([True, False, True, False])
        out = where(cond, a, b)
        np.testing.assert_allclose(out.data, np.where(cond, a.data, b.data))
        out.sum().backward()
        np.testing.assert_allclose(a.grad, cond.astype(float))
        np.testing.assert_allclose(b.grad, (~cond).astype(float))

    def test_maximum(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        out = maximum(a, b)
        np.testing.assert_allclose(out.data, [2.0, 5.0])


class TestGraphMechanics:
    def test_gradient_accumulates_on_reuse(self):
        a = make((2,))
        out = (a * a).sum() + a.sum()
        out.backward()
        np.testing.assert_allclose(a.grad, 2 * a.data + 1.0)

    def test_diamond_graph(self):
        a = make((3,))
        b = a * 2
        out = (b + b * b).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, 2 + 8 * a.data)

    def test_zero_grad(self):
        a = make((2,))
        (a * 2).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_no_grad_through_constants(self):
        a = make((2,))
        c = Tensor([1.0, 2.0])
        ((a * c).sum()).backward()
        assert c.grad is None

    def test_deep_chain(self):
        a = make((2,))
        out = a
        for _ in range(50):
            out = out * 1.01
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.full(2, 1.01 ** 50), rtol=1e-10)
