"""Tests for GRU/LSTM cells and the masked recurrent layer."""

import numpy as np
import pytest

from repro.nn import (GRUCell, LSTMCell, RecurrentLayer, Tensor,
                      fused_gru_step, fused_lstm_step, gradient_check)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestCells:
    def test_gru_step_shape(self, rng):
        cell = GRUCell(4, 6, rng)
        h = cell(Tensor(np.ones((2, 4))), cell.initial_state(2))
        assert h.shape == (2, 6)

    def test_lstm_step_shape(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, c = cell(Tensor(np.ones((2, 4))), cell.initial_state(2))
        assert h.shape == (2, 6)
        assert c.shape == (2, 6)

    def test_gru_gradient(self, rng):
        cell = GRUCell(3, 4, rng)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        err = gradient_check(
            lambda a: (cell(a, cell.initial_state(2)) ** 2).sum(), [x])
        assert err < 1e-5

    def test_lstm_gradient(self, rng):
        cell = LSTMCell(3, 4, rng)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)

        def run(a):
            h, c = cell(a, cell.initial_state(2))
            return (h * h).sum() + c.sum()

        assert gradient_check(run, [x]) < 1e-5

    def test_lstm_forget_bias_init(self, rng):
        cell = LSTMCell(3, 4, rng)
        np.testing.assert_allclose(cell.bias.data[4:8], np.ones(4))

    def test_gru_state_bounded(self, rng):
        cell = GRUCell(3, 4, rng)
        h = cell.initial_state(1)
        for _ in range(100):
            h = cell(Tensor(np.full((1, 3), 10.0)), h)
        assert np.all(np.abs(h.data) <= 1.0 + 1e-9)


class TestRecurrentLayer:
    def test_invalid_cell_type(self, rng):
        with pytest.raises(ValueError):
            RecurrentLayer("rnn", 3, 4, rng)

    @pytest.mark.parametrize("cell_type", ["gru", "lstm"])
    def test_output_shapes(self, rng, cell_type):
        layer = RecurrentLayer(cell_type, 3, 5, rng)
        states, last = layer(Tensor(rng.normal(size=(2, 7, 3))))
        assert states.shape == (2, 7, 5)
        assert last.shape == (2, 5)

    @pytest.mark.parametrize("cell_type", ["gru", "lstm"])
    def test_masked_steps_freeze_state(self, rng, cell_type):
        layer = RecurrentLayer(cell_type, 3, 5, rng)
        inputs = Tensor(rng.normal(size=(1, 4, 3)))
        mask = np.array([[True, True, False, False]])
        states, last = layer(inputs, step_mask=mask)
        # State after masked steps equals state at the last valid step.
        np.testing.assert_allclose(states.data[0, 1], states.data[0, 2])
        np.testing.assert_allclose(states.data[0, 1], last.data[0])

    def test_mask_equivalence_to_truncation(self, rng):
        """Padding + mask must equal running on the shorter sequence."""
        layer = RecurrentLayer("gru", 3, 5, rng)
        seq = rng.normal(size=(1, 3, 3))
        padded = np.concatenate([seq, np.zeros((1, 2, 3))], axis=1)
        mask = np.array([[True] * 3 + [False] * 2])
        _, last_masked = layer(Tensor(padded), step_mask=mask)
        _, last_short = layer(Tensor(seq))
        np.testing.assert_allclose(last_masked.data, last_short.data)

    def test_initial_state_used(self, rng):
        layer = RecurrentLayer("gru", 3, 5, rng)
        inputs = Tensor(rng.normal(size=(2, 1, 3)))
        init = Tensor(rng.normal(size=(2, 5)))
        _, with_init = layer(inputs, initial_state=init)
        _, without = layer(inputs)
        assert not np.allclose(with_init.data, without.data)

    def test_gradient_through_time(self, rng):
        layer = RecurrentLayer("gru", 2, 3, rng)
        x = Tensor(rng.normal(size=(1, 4, 2)), requires_grad=True)

        def run(a):
            states, last = layer(a)
            return (states * states).sum() + last.sum()

        assert gradient_check(run, [x]) < 1e-5

    def test_all_masked_sequence_keeps_zero_state(self, rng):
        layer = RecurrentLayer("gru", 2, 3, rng)
        inputs = Tensor(rng.normal(size=(1, 3, 2)))
        mask = np.zeros((1, 3), dtype=bool)
        states, last = layer(inputs, step_mask=mask)
        np.testing.assert_allclose(last.data, np.zeros((1, 3)))


class TestLSTMGradients:
    """Finite-difference checks for the LSTM paths the suite used to skip.

    The cell's input gradient was already covered; these add the
    parameter-side gradients and the full time-unrolled RecurrentLayer,
    including the masked-step (state-freezing) and user-seeded
    initial-state paths Causer exercises.
    """

    def test_lstm_cell_parameter_gradients(self, rng):
        cell = LSTMCell(3, 4, rng)
        x = Tensor(rng.normal(size=(2, 3)))
        params = [cell.w_ih, cell.w_hh, cell.bias]

        def run(*_params):
            h, c = cell(x, cell.initial_state(2))
            return (h * h).sum() + (c * c).sum()

        assert gradient_check(run, params) < 1e-5

    def test_lstm_layer_gradient_through_time(self, rng):
        layer = RecurrentLayer("lstm", 2, 3, rng)
        x = Tensor(rng.normal(size=(1, 4, 2)), requires_grad=True)

        def run(a):
            states, last = layer(a)
            return (states * states).sum() + last.sum()

        assert gradient_check(run, [x]) < 1e-5

    @pytest.mark.parametrize("cell_type", ["gru", "lstm"])
    def test_masked_layer_input_gradient(self, rng, cell_type):
        layer = RecurrentLayer(cell_type, 2, 3, rng)
        x = Tensor(rng.normal(size=(2, 4, 2)), requires_grad=True)
        mask = np.array([[True, True, False, True],
                         [True, False, False, False]])

        def run(a):
            states, last = layer(a, step_mask=mask)
            return (states * states).sum() + (last * last).sum()

        assert gradient_check(run, [x]) < 1e-5

    def test_lstm_layer_initial_state_gradient(self, rng):
        layer = RecurrentLayer("lstm", 2, 3, rng)
        x = Tensor(rng.normal(size=(2, 3, 2)))
        init = Tensor(rng.normal(size=(2, 3)), requires_grad=True)

        def run(h0):
            states, last = layer(x, initial_state=h0)
            return (states * states).sum() + last.sum()

        assert gradient_check(run, [init]) < 1e-5

    def test_lstm_layer_parameter_gradients(self, rng):
        layer = RecurrentLayer("lstm", 2, 3, rng)
        x = Tensor(rng.normal(size=(1, 3, 2)))
        mask = np.array([[True, False, True]])
        params = [layer.cell.w_ih, layer.cell.w_hh, layer.cell.bias]

        def run(*_params):
            states, last = layer(x, step_mask=mask)
            return (states * states).sum() + last.sum()

        assert gradient_check(run, params) < 1e-5


class TestFusedGRUGradients:
    """Finite-difference checks aimed at the fused GRU kernels.

    The hand-derived backward of ``fused_gru_step``/``fused_gru_sequence``
    replaces a dozen autograd nodes; every input of the fused node gets its
    own check so a wrong analytic term cannot hide behind the others.
    """

    def test_gru_cell_hidden_state_gradient(self, rng):
        cell = GRUCell(3, 4, rng)
        x = Tensor(rng.normal(size=(2, 3)))
        h = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        assert gradient_check(lambda a: (cell(x, a) ** 2).sum(), [h]) < 1e-5

    def test_gru_cell_parameter_gradients(self, rng):
        cell = GRUCell(3, 4, rng)
        x = Tensor(rng.normal(size=(2, 3)))
        h = Tensor(rng.normal(size=(2, 4)))
        params = [cell.w_ih, cell.w_hh, cell.b_ih, cell.b_hh]

        def run(*_params):
            return (cell(x, h) ** 2).sum()

        assert gradient_check(run, params) < 1e-5

    def test_gru_layer_parameter_gradients(self, rng):
        layer = RecurrentLayer("gru", 2, 3, rng)
        x = Tensor(rng.normal(size=(2, 4, 2)))
        mask = np.array([[True, True, False, True],
                         [True, False, False, False]])
        params = [layer.cell.w_ih, layer.cell.w_hh,
                  layer.cell.b_ih, layer.cell.b_hh]

        def run(*_params):
            states, last = layer(x, step_mask=mask)
            return (states * states).sum() + last.sum()

        assert gradient_check(run, params) < 1e-5

    def test_gru_layer_initial_state_gradient(self, rng):
        layer = RecurrentLayer("gru", 2, 3, rng)
        x = Tensor(rng.normal(size=(2, 3, 2)))
        init = Tensor(rng.normal(size=(2, 3)), requires_grad=True)

        def run(h0):
            states, last = layer(x, initial_state=h0)
            return (states * states).sum() + last.sum()

        assert gradient_check(run, [init]) < 1e-5


class TestFusedStepKeepRule:
    """Direct unit tests of the per-step ``keep`` skip rule.

    Where ``keep`` is 0 the fused step must carry the previous state through
    unchanged — value AND gradient — implementing the paper's rule that
    causally-filtered (all-zero) inputs leave the user state untouched.
    """

    def test_gru_step_keep_zero_passes_state_through(self, rng):
        cell = GRUCell(3, 4, rng)
        x = Tensor(rng.normal(size=(2, 3)))
        h = Tensor(rng.normal(size=(2, 4)))
        keep = np.array([[1.0], [0.0]])
        out = fused_gru_step(x, h, cell.w_ih, cell.w_hh,
                             cell.b_ih, cell.b_hh, keep=keep)
        active = fused_gru_step(x, h, cell.w_ih, cell.w_hh,
                                cell.b_ih, cell.b_hh)
        np.testing.assert_allclose(out.data[0], active.data[0])
        np.testing.assert_array_equal(out.data[1], h.data[1])

    def test_lstm_step_keep_zero_passes_state_through(self, rng):
        cell = LSTMCell(3, 4, rng)
        x = Tensor(rng.normal(size=(2, 3)))
        h = Tensor(rng.normal(size=(2, 4)))
        c = Tensor(rng.normal(size=(2, 4)))
        keep = np.array([[0.0], [1.0]])
        h_out, c_out = fused_lstm_step(x, h, c, cell.w_ih, cell.w_hh,
                                       cell.bias, keep=keep)
        np.testing.assert_array_equal(h_out.data[0], h.data[0])
        np.testing.assert_array_equal(c_out.data[0], c.data[0])

    def test_gru_step_keep_gradient_routes_to_previous_state(self, rng):
        cell = GRUCell(3, 4, rng)
        keep = np.array([[1.0], [0.0]])
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        h = Tensor(rng.normal(size=(2, 4)), requires_grad=True)

        def run(a, b):
            out = fused_gru_step(a, b, cell.w_ih, cell.w_hh,
                                 cell.b_ih, cell.b_hh, keep=keep)
            return (out * out).sum()

        assert gradient_check(run, [x, h]) < 1e-5
        x.grad = None
        h.grad = None
        # A skipped row contributes no gradient to its input...
        out = fused_gru_step(x, h, cell.w_ih, cell.w_hh,
                             cell.b_ih, cell.b_hh, keep=keep)
        (out * out).sum().backward()
        np.testing.assert_array_equal(x.grad[1], np.zeros(3))
        # ...while its previous-state gradient is exactly the upstream grad.
        np.testing.assert_allclose(h.grad[1], 2.0 * h.data[1])

    def test_lstm_step_keep_gradient(self, rng):
        cell = LSTMCell(3, 4, rng)
        keep = np.array([[0.0], [1.0]])
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        h = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        c = Tensor(rng.normal(size=(2, 4)), requires_grad=True)

        def run(a, b, d):
            h_out, c_out = fused_lstm_step(a, b, d, cell.w_ih, cell.w_hh,
                                           cell.bias, keep=keep)
            return (h_out * h_out).sum() + (c_out * c_out).sum()

        assert gradient_check(run, [x, h, c]) < 1e-5
