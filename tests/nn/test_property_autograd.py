"""Hypothesis property tests for the autograd engine.

These check structural invariants over randomly generated shapes and
values: gradient shapes always match parameter shapes, softmax is a
distribution, broadcasting gradients reduce correctly, and the chain rule
composes.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, gradient_check
from repro.nn import functional as F

finite_floats = st.floats(min_value=-5.0, max_value=5.0,
                          allow_nan=False, allow_infinity=False)


def arrays(max_side=4, min_dims=1, max_dims=3):
    return hnp.arrays(dtype=np.float64,
                      shape=hnp.array_shapes(min_dims=min_dims,
                                             max_dims=max_dims,
                                             min_side=1, max_side=max_side),
                      elements=finite_floats)


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_grad_shape_matches_param_shape(values):
    t = Tensor(values, requires_grad=True)
    ((t * t).sum()).backward()
    assert t.grad.shape == t.data.shape


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_sum_gradient_is_ones(values):
    t = Tensor(values, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(values))


@settings(max_examples=40, deadline=None)
@given(arrays(max_dims=2))
def test_softmax_is_distribution(values):
    out = F.softmax(Tensor(values)).data
    assert (out >= 0).all()
    np.testing.assert_allclose(out.sum(axis=-1),
                               np.ones(out.shape[:-1]), rtol=1e-9)


@settings(max_examples=40, deadline=None)
@given(arrays(max_dims=2))
def test_log_softmax_consistent(values):
    x = Tensor(values)
    np.testing.assert_allclose(F.log_softmax(x).data,
                               np.log(F.softmax(x).data + 1e-300), atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
def test_broadcast_add_gradients_reduce(rows, cols, seed):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    b = Tensor(rng.normal(size=(cols,)), requires_grad=True)
    (a + b).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones((rows, cols)))
    np.testing.assert_allclose(b.grad, np.full(cols, float(rows)))


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_mul_chain_rule_matches_numeric(seed):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    b = Tensor(rng.normal(size=(3,)), requires_grad=True)
    err = gradient_check(lambda x, y: ((x * y).tanh()).sum(), [a, b])
    assert err < 1e-5


@settings(max_examples=30, deadline=None)
@given(arrays(max_dims=2))
def test_sigmoid_range(values):
    out = Tensor(values).sigmoid().data
    assert ((out >= 0) & (out <= 1)).all()


@settings(max_examples=30, deadline=None)
@given(arrays(max_dims=2))
def test_relu_idempotent(values):
    t = Tensor(values)
    once = t.relu().data
    twice = t.relu().relu().data
    np.testing.assert_allclose(once, twice)


@settings(max_examples=30, deadline=None)
@given(arrays(min_dims=2, max_dims=2))
def test_transpose_involution(values):
    t = Tensor(values, requires_grad=True)
    np.testing.assert_allclose(t.T.T.data, values)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 5), st.integers(1, 5))
def test_detach_blocks_gradient(rows, cols):
    t = Tensor(np.ones((rows, cols)), requires_grad=True)
    out = (t.detach() * 2).sum()
    assert not out.requires_grad
