"""Row-sparse gradient path: representation, engine parity, lazy optimizers.

The load-bearing guarantee is *bit* equivalence, not mere closeness:
wherever the docstring contract in :mod:`repro.nn.optim` promises the lazy
row path matches the dense optimizer, these tests assert
``np.array_equal`` on whole trajectories, so any reformulation of the
update arithmetic (rebinding instead of in-place, numpy pow instead of
Python pow, per-row instead of global bias correction) shows up as a hard
failure rather than tolerance creep.
"""

import pickle

import numpy as np
import pytest

from repro.analysis.sanitizer import (GradientAnomalyError,
                                      GradientSanitizer, detect_anomaly)
from repro.models import GRU4Rec, TrainConfig
from repro.nn import (Adagrad, Adam, Parameter, RowSparseGrad, SGD,
                      SparseAdam, Tensor, densify_grad, make_optimizer,
                      rowsparse_from_gather)
from repro.nn.functional import embedding_lookup

RNG = np.random.default_rng


def sparse_of(dense_grad, rows, shape):
    """Build the RowSparseGrad equivalent of ``dense_grad`` on ``rows``."""
    rows = np.asarray(rows, dtype=np.int64)
    return RowSparseGrad(rows.copy(),
                         np.ascontiguousarray(dense_grad[rows]), shape)


# ----------------------------------------------------------------------
# Representation: coalescing, merge, densify fallback, pickling
# ----------------------------------------------------------------------
class TestRowSparseGrad:
    def test_coalesce_matches_dense_scatter_bitwise(self):
        """Duplicate rows sum in the same order as the dense scatter."""
        rng = RNG(0)
        shape = (64, 5)
        index = rng.integers(0, 8, size=37)  # heavy duplication
        upstream = rng.normal(size=(37, 5))
        sparse = rowsparse_from_gather(shape, index, upstream,
                                       densify_fraction=1.01)
        dense = np.zeros(shape)
        np.add.at(dense, index, upstream)  # element-order accumulation
        assert isinstance(sparse, RowSparseGrad)
        # np.add.at and the composite bincount both accumulate per-row in
        # input order, so the touched rows must agree to the last ulp.
        assert np.array_equal(sparse.densify(), dense)
        assert np.array_equal(sparse.indices, np.unique(index))

    def test_merge_reproduces_dense_accumulation_order(self):
        rng = RNG(1)
        shape = (32, 3)
        a = rowsparse_from_gather(shape, rng.integers(0, 6, 11),
                                  rng.normal(size=(11, 3)),
                                  densify_fraction=1.01)
        b = rowsparse_from_gather(shape, rng.integers(3, 9, 7),
                                  rng.normal(size=(7, 3)),
                                  densify_fraction=1.01)
        merged = a.merge(b)
        reference = a.densify()
        reference += b.densify()  # dense `grad += update` order
        assert np.array_equal(merged.densify(), reference)

    def test_densify_fallback_threshold(self):
        shape = (10, 2)
        grad = np.ones((6, 2))
        wide = rowsparse_from_gather(shape, np.arange(6), grad)
        assert isinstance(wide, np.ndarray)  # 6 >= 0.5 * 10 rows
        narrow = rowsparse_from_gather(shape, np.array([1, 1, 2, 3, 3, 3]),
                                       grad)
        assert isinstance(narrow, RowSparseGrad)  # 3 < 0.5 * 10 rows
        forced = rowsparse_from_gather(shape, np.arange(6), grad,
                                       densify_fraction=1.01)
        assert isinstance(forced, RowSparseGrad)
        assert np.array_equal(forced.densify(), wide)

    def test_pickle_round_trips_both_objects(self):
        grad = RowSparseGrad(np.array([2, 5], dtype=np.int64),
                             np.arange(6.0).reshape(2, 3), (8, 3))
        back = pickle.loads(pickle.dumps(grad))
        assert np.array_equal(back.indices, grad.indices)
        assert np.array_equal(back.values, grad.values)
        assert back.shape == grad.shape

        tensor = Parameter(np.zeros((4, 2)))
        tensor.sparse_grad = True
        assert pickle.loads(pickle.dumps(tensor)).sparse_grad is True
        # Pre-sparse pickles carried a 4-tuple state; the flag defaults off.
        legacy = Tensor.__new__(Tensor)
        legacy.__setstate__((np.zeros(2), None, True, None))
        assert legacy.sparse_grad is False


# ----------------------------------------------------------------------
# Engine: gather backward parity and accumulation
# ----------------------------------------------------------------------
class TestGatherBackward:
    def test_sparse_gather_grad_matches_dense_bitwise(self):
        rng = RNG(2)
        data = rng.normal(size=(200, 4))
        index = rng.integers(0, 200, size=(6, 9))  # duplicates across batch
        coeff = Tensor(rng.normal(size=(6, 9, 4)))
        dense_p, sparse_p = Parameter(data.copy()), Parameter(data.copy())
        sparse_p.sparse_grad = True
        ((dense_p[index] * coeff).sum()).backward()
        ((sparse_p[index] * coeff).sum()).backward()
        assert isinstance(sparse_p.grad, RowSparseGrad)
        assert np.array_equal(densify_grad(sparse_p.grad), dense_p.grad)

    def test_embedding_lookup_takes_sparse_path(self):
        weight = Parameter(RNG(3).normal(size=(100, 8)))
        weight.sparse_grad = True
        out = embedding_lookup(weight, np.array([[3, 7, 7]]))
        out.sum().backward()
        assert isinstance(weight.grad, RowSparseGrad)
        assert weight.grad.nnz_rows == 2

    def test_mixed_sparse_and_dense_accumulation(self):
        """A param fed by a gather AND a dense op ends with a dense grad."""
        rng = RNG(4)
        data = rng.normal(size=(50, 3))
        index = rng.integers(0, 50, size=12)
        other = Tensor(rng.normal(size=(50, 3)))
        dense_p, sparse_p = Parameter(data.copy()), Parameter(data.copy())
        sparse_p.sparse_grad = True
        for param in (dense_p, sparse_p):
            loss = (param[index].sum() * 2.0) + (param * other).sum()
            loss.backward()
        assert isinstance(sparse_p.grad, np.ndarray)
        assert np.array_equal(sparse_p.grad, dense_p.grad)


# ----------------------------------------------------------------------
# Lazy optimizers: bit-identical trajectories
# ----------------------------------------------------------------------
def run_pair(optim_factory, touch_rows_fn, vocab=24, dim=3, steps=12,
             seed=7):
    """Run dense vs sparse twins and yield per-step parameter pairs.

    ``touch_rows_fn(step)`` returns the sorted unique rows touched at that
    step; the dense twin sees the densified gradient (zeros elsewhere),
    the sparse twin sees the RowSparseGrad.
    """
    rng = RNG(seed)
    init = rng.normal(size=(vocab, dim))
    dense_p, sparse_p = Parameter(init.copy()), Parameter(init.copy())
    opt_d, opt_s = optim_factory(dense_p), optim_factory(sparse_p)
    shape = (vocab, dim)
    for step in range(steps):
        rows = np.asarray(touch_rows_fn(step), dtype=np.int64)
        grad = np.zeros(shape)
        grad[rows] = rng.normal(size=(rows.size, dim))
        dense_p.grad = grad
        sparse_p.grad = sparse_of(grad, rows, shape)
        opt_d.step()
        opt_s.step()
        yield step, dense_p.data, sparse_p.data


class TestBitIdenticalTrajectories:
    FULL_FACTORIES = [
        lambda p: SGD([p], lr=0.05),
        lambda p: SGD([p], lr=0.05, momentum=0.9, weight_decay=1e-2),
        lambda p: SparseAdam([p], lr=1e-2, weight_decay=1e-2),
        lambda p: Adam([p], lr=1e-2),
        lambda p: Adagrad([p], lr=0.1),
    ]

    @pytest.mark.parametrize("factory", FULL_FACTORIES)
    def test_full_coverage_matches_dense(self, factory):
        """Every row touched every step: all optimizers are bit-exact."""
        vocab = 24
        for step, dense, sparse in run_pair(factory,
                                            lambda _: np.arange(vocab),
                                            vocab=vocab):
            assert np.array_equal(dense, sparse), f"diverged at step {step}"

    @pytest.mark.parametrize("factory", [
        lambda p: SGD([p], lr=0.05),
        lambda p: Adagrad([p], lr=0.1),
    ])
    def test_partial_coverage_sgd_adagrad(self, factory):
        """Plain SGD/Adagrad are bit-exact under ANY touch pattern."""
        rng = RNG(11)
        patterns = [np.unique(rng.integers(0, 24, size=6))
                    for _ in range(12)]
        for step, dense, sparse in run_pair(factory,
                                            lambda s: patterns[s]):
            assert np.array_equal(dense, sparse), f"diverged at step {step}"

    def test_adam_staggered_suffix_and_frozen_rows(self):
        """Rows entering at different steps, then touched every step,
        follow the dense trajectory bit-for-bit; never-touched rows stay
        bitwise frozen at their initial values."""
        vocab, dim = 8, 3
        first_touch = np.array([1, 1, 3, 5, 9, 2, 7, 99])  # row 7: never
        init_snapshot = {}

        def touched(step):
            return np.flatnonzero(first_touch <= step + 1)

        factory = lambda p: SparseAdam([p], lr=1e-2)
        for step, dense, sparse in run_pair(factory, touched, vocab=vocab,
                                            dim=dim, steps=12):
            if step == 0:
                init_snapshot["frozen"] = sparse[7].copy()
            assert np.array_equal(dense, sparse), f"diverged at step {step}"
        assert np.array_equal(sparse[7], init_snapshot["frozen"])

    def test_adam_dense_grad_on_sparse_tracked_param(self):
        """A dense grad arriving after sparse steps touches every row and
        keeps the trajectory aligned with the all-dense twin."""
        vocab = 16

        def touched(step):
            return np.arange(vocab) if step >= 3 else np.array([1, 4, 9])

        rng = RNG(13)
        init = rng.normal(size=(vocab, 2))
        dense_p, sparse_p = Parameter(init.copy()), Parameter(init.copy())
        opt_d, opt_s = Adam([dense_p], lr=1e-2), Adam([sparse_p], lr=1e-2)
        for step in range(8):
            rows = touched(step)
            grad = np.zeros((vocab, 2))
            grad[rows] = rng.normal(size=(rows.size, 2))
            dense_p.grad = grad
            if step >= 3:
                sparse_p.grad = grad.copy()  # dense representation
            else:
                sparse_p.grad = sparse_of(grad, rows, (vocab, 2))
            opt_d.step()
            opt_s.step()
            # Rows touched every step since their first touch stay exact.
            assert np.array_equal(dense_p.data[[1, 4, 9]],
                                  sparse_p.data[[1, 4, 9]])


# ----------------------------------------------------------------------
# Clipping, state keying, in-place state
# ----------------------------------------------------------------------
class TestClipAndState:
    def test_clip_grad_norm_sparse_dense_parity(self):
        """Integer-valued grads make both sums exact → identical norms
        and bit-identical clipped gradients."""
        rng = RNG(17)
        shape = (40, 4)
        rows = np.unique(rng.integers(0, 40, size=9))
        grad = np.zeros(shape)
        grad[rows] = rng.integers(-5, 6, size=(rows.size, 4)).astype(float)
        dense_p, sparse_p = Parameter(np.zeros(shape)), Parameter(
            np.zeros(shape))
        dense_p.grad = grad.copy()
        sparse_p.grad = sparse_of(grad, rows, shape)
        norm_d = SGD([dense_p], lr=0.1).clip_grad_norm(2.0)
        norm_s = SGD([sparse_p], lr=0.1).clip_grad_norm(2.0)
        assert norm_d == norm_s
        assert np.array_equal(densify_grad(sparse_p.grad), dense_p.grad)

    def test_state_keyed_by_index_not_id(self):
        """Two same-shaped params must never share state buffers — the old
        ``id(param)``-keyed dicts aliased state when the allocator reused
        an address."""
        init = np.ones((6, 2))
        p0, p1 = Parameter(init.copy()), Parameter(init.copy())
        opt = Adam([p0, p1], lr=1e-2)
        p0.grad = np.full((6, 2), 0.5)
        p1.grad = np.full((6, 2), -2.0)
        opt.step()
        assert set(opt._m.keys()) == {0, 1}
        assert opt._m[0] is not opt._m[1]
        assert not np.array_equal(opt._m[0], opt._m[1])
        # Recreating a param (allowing id() reuse) must not leak state.
        del p0
        p2 = Parameter(init.copy())
        opt2 = Adagrad([p2], lr=0.1)
        p2.grad = np.ones((6, 2))
        opt2.step()
        assert set(opt2._accum.keys()) == {0}
        assert np.array_equal(opt2._accum[0], np.ones((6, 2)))

    @pytest.mark.parametrize("factory,state_attr", [
        (lambda p: SGD([p], lr=0.05, momentum=0.9), "_velocity"),
        (lambda p: Adam([p], lr=1e-2), "_m"),
        (lambda p: Adam([p], lr=1e-2), "_v"),
        (lambda p: Adagrad([p], lr=0.1), "_accum"),
    ])
    def test_state_updated_in_place(self, factory, state_attr):
        """The fixed ``accum += g**2`` (vs legacy ``accum = accum + g**2``)
        must keep the same buffer across steps — no per-step reallocation
        of table-sized state."""
        param = Parameter(np.ones((50, 4)))
        opt = factory(param)
        rng = RNG(19)
        param.grad = rng.normal(size=(50, 4))
        opt.step()
        buffer_id = id(getattr(opt, state_attr)[0])
        for _ in range(3):
            param.grad = rng.normal(size=(50, 4))
            opt.step()
            assert id(getattr(opt, state_attr)[0]) == buffer_id


# ----------------------------------------------------------------------
# Sanitizer: sparse-gradient contract checks
# ----------------------------------------------------------------------
class TestSanitizerSparse:
    def test_clean_sparse_backward_passes(self):
        with detect_anomaly():
            weight = Parameter(RNG(23).normal(size=(60, 3)))
            weight.sparse_grad = True
            (weight[np.array([2, 5, 5])].sum()).backward()
        assert isinstance(weight.grad, RowSparseGrad)

    def test_shape_violation_reported(self):
        sanitizer = GradientSanitizer()
        target = Parameter(np.zeros((5, 2)))
        wrong = RowSparseGrad(np.array([0], dtype=np.int64),
                              np.ones((1, 2)), (4, 2))
        with pytest.raises(GradientAnomalyError) as err:
            sanitizer.on_accumulate(target, wrong)
        assert err.value.kind == "shape"

    def test_out_of_range_rows_reported(self):
        sanitizer = GradientSanitizer()
        target = Parameter(np.zeros((5, 2)))
        oob = RowSparseGrad(np.array([7], dtype=np.int64),
                            np.ones((1, 2)), (5, 2))
        with pytest.raises(GradientAnomalyError) as err:
            sanitizer.on_accumulate(target, oob)
        assert err.value.kind == "shape"
        assert "out-of-range" in str(err.value)

    def test_non_finite_rows_named(self):
        sanitizer = GradientSanitizer()
        target = Parameter(np.zeros((10, 2)))
        values = np.ones((3, 2))
        values[1, 0] = np.nan  # poisons row id 6
        bad = RowSparseGrad(np.array([2, 6, 9], dtype=np.int64),
                            values, (10, 2))
        with pytest.raises(GradientAnomalyError) as err:
            sanitizer.on_accumulate(target, bad)
        assert err.value.kind == "gradient"
        assert "[6]" in str(err.value)


# ----------------------------------------------------------------------
# Wiring: config flag, module toggle, model-level equivalence
# ----------------------------------------------------------------------
class TestModelWiring:
    def test_train_config_defaults_sparse_on(self):
        assert TrainConfig().sparse_grads is True

    def test_set_sparse_grads_toggles_embeddings(self, tiny_dataset):
        cfg = TrainConfig(embedding_dim=8, hidden_dim=8, seed=0)
        model = GRU4Rec(tiny_dataset.corpus.num_users,
                        tiny_dataset.num_items, cfg)
        model.set_sparse_grads(True)
        assert model.item_embedding.weight.sparse_grad is True
        assert model.output_bias.sparse_grad is True
        model.set_sparse_grads(False)
        assert model.item_embedding.weight.sparse_grad is False
        assert model.output_bias.sparse_grad is False

    def test_make_optimizer_knows_sparseadam(self):
        param = Parameter(np.zeros(3))
        opt = make_optimizer("sparseadam", [param], lr=1e-3)
        assert isinstance(opt, SparseAdam)

    def test_model_training_equivalent_sparse_vs_dense(self, tiny_dataset,
                                                       tiny_split):
        scores = {}
        for sparse in (False, True):
            cfg = TrainConfig(embedding_dim=8, hidden_dim=8, num_epochs=2,
                              batch_size=64, max_history=8, seed=0,
                              sparse_grads=sparse)
            model = GRU4Rec(tiny_dataset.corpus.num_users,
                            tiny_dataset.num_items, cfg)
            fit = model.fit(tiny_split.train)
            assert np.isfinite(fit.final_loss)
            scores[sparse] = model.score_samples(tiny_split.test[:4])
        np.testing.assert_allclose(scores[True], scores[False],
                                   rtol=1e-6, atol=1e-8)
