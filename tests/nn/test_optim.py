"""Tests for optimizers, gradient clipping and LR schedules."""

import numpy as np
import pytest

from repro.nn import (Adagrad, Adam, Parameter, SGD, StepLR, Tensor,
                      make_optimizer)


def quadratic_loss(param):
    """(param - 3)^2 summed — minimized at 3."""
    diff = param - Tensor(np.full(param.shape, 3.0))
    return (diff * diff).sum()


def run_steps(optimizer, param, steps=200):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = quadratic_loss(param)
        loss.backward()
        optimizer.step()
    return param.data


class TestConvergence:
    @pytest.mark.parametrize("factory", [
        lambda p: SGD([p], lr=0.1),
        lambda p: SGD([p], lr=0.05, momentum=0.9),
        lambda p: Adam([p], lr=0.1),
        lambda p: Adagrad([p], lr=0.8),
    ])
    def test_reaches_minimum(self, factory):
        param = Parameter(np.zeros(4))
        optimizer = factory(param)
        final = run_steps(optimizer, param)
        np.testing.assert_allclose(final, np.full(4, 3.0), atol=0.05)

    def test_weight_decay_shrinks_solution(self):
        clean = Parameter(np.zeros(2))
        run_steps(SGD([clean], lr=0.1), clean)
        decayed = Parameter(np.zeros(2))
        run_steps(SGD([decayed], lr=0.1, weight_decay=1.0), decayed)
        assert np.all(decayed.data < clean.data)


class TestMechanics:
    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=-1.0)

    def test_none_grads_skipped(self):
        p1 = Parameter(np.ones(2))
        p2 = Parameter(np.ones(2))
        opt = Adam([p1, p2], lr=0.1)
        (p1 * 2).sum().backward()
        opt.step()  # p2 has no grad — must not crash
        np.testing.assert_allclose(p2.data, np.ones(2))
        assert not np.allclose(p1.data, np.ones(2))

    def test_clip_grad_norm(self):
        p = Parameter(np.ones(4))
        opt = SGD([p], lr=0.1)
        p.grad = np.full(4, 10.0)
        pre_norm = opt.clip_grad_norm(1.0)
        assert pre_norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clip_no_op_when_small(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        p.grad = np.array([0.1, 0.1])
        opt.clip_grad_norm(5.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])

    def test_zero_grad(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        p.grad = np.ones(2)
        opt.zero_grad()
        assert p.grad is None


class TestStepLR:
    def test_decays_on_schedule(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        sched.step()
        assert sched.lr == 1.0
        sched.step()
        assert sched.lr == 0.5

    def test_invalid_step_size(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("adam", Adam), ("sgd", SGD), ("adagrad", Adagrad), ("Adam", Adam),
    ])
    def test_known_names(self, name, cls):
        opt = make_optimizer(name, [Parameter(np.ones(1))], lr=0.1)
        assert isinstance(opt, cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_optimizer("lion", [Parameter(np.ones(1))], lr=0.1)
