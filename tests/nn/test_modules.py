"""Tests for Module/Parameter plumbing and common layers."""

import numpy as np
import pytest

from repro.nn import (Dropout, Embedding, LayerNorm, Linear, MLP, Module,
                      Parameter, Sequential, Tensor, gradient_check)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestModulePlumbing:
    def test_parameters_deduplicated(self, rng):
        class Shared(Module):
            def __init__(self):
                super().__init__()
                self.a = Parameter(np.ones(3))
                self.b = self.a  # alias

        mod = Shared()
        assert len(list(mod.parameters())) == 1

    def test_named_parameters_nested(self, rng):
        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.layer = Linear(2, 3, rng)

        names = dict(Outer().named_parameters())
        assert "layer.weight" in names
        assert "layer.bias" in names

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Linear(2, 2, rng), Dropout(0.5))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_zero_grad(self, rng):
        layer = Linear(2, 2, rng)
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_num_parameters(self, rng):
        layer = Linear(3, 4, rng)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_state_dict_roundtrip(self, rng):
        src = Linear(3, 4, rng)
        dst = Linear(3, 4, np.random.default_rng(99))
        dst.load_state_dict(src.state_dict())
        np.testing.assert_allclose(src.weight.data, dst.weight.data)

    def test_state_dict_missing_key(self, rng):
        layer = Linear(2, 2, rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({})

    def test_state_dict_shape_mismatch(self, rng):
        layer = Linear(2, 2, rng)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(5, 3, rng)
        assert layer(Tensor(np.ones((7, 5)))).shape == (7, 3)

    def test_no_bias(self, rng):
        layer = Linear(5, 3, rng, bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 5))))
        np.testing.assert_allclose(out.data, np.zeros((1, 3)))

    def test_gradient(self, rng):
        layer = Linear(3, 2, rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        err = gradient_check(lambda a, w, b: (layer(a) ** 2).sum(),
                             [x, layer.weight, layer.bias])
        assert err < 1e-6


class TestEmbedding:
    def test_padding_row_zero(self, rng):
        emb = Embedding(10, 4, rng, padding_idx=0)
        np.testing.assert_allclose(emb.weight.data[0], np.zeros(4))

    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 4)

    def test_zero_padding_row_after_update(self, rng):
        emb = Embedding(10, 4, rng, padding_idx=0)
        emb.weight.data[0] = 1.0
        emb.zero_padding_row()
        np.testing.assert_allclose(emb.weight.data[0], np.zeros(4))


class TestLayerNorm:
    def test_normalizes(self, rng):
        ln = LayerNorm(8)
        x = Tensor(rng.normal(size=(4, 8)) * 10 + 5)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-8)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-4)

    def test_gradient(self, rng):
        ln = LayerNorm(4)
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        err = gradient_check(lambda a: (ln(a) ** 2).sum(), [x])
        assert err < 1e-5


class TestMLP:
    def test_needs_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_forward_shape(self, rng):
        mlp = MLP([4, 8, 2], rng)
        assert mlp(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_unknown_activation(self, rng):
        mlp = MLP([2, 2], rng, activation="bogus", final_activation=True)
        with pytest.raises(ValueError):
            mlp(Tensor(np.ones((1, 2))))

    @pytest.mark.parametrize("act", ["relu", "tanh", "sigmoid"])
    def test_activations_run(self, rng, act):
        mlp = MLP([3, 3, 3], rng, activation=act)
        out = mlp(Tensor(rng.normal(size=(2, 3))))
        assert np.isfinite(out.data).all()
