"""Golden-value regression tests for the optimized engine hot paths.

The ``tests/golden/*.npz`` fixtures were recorded by
``tests/golden/generate_goldens.py`` at the commit *before* the fused-kernel
performance pass, using the original composite (many-node) implementations.
These tests load the recorded parameters and inputs into the live modules
and assert the current code reproduces every forward output and gradient to
1e-10 — so any future "optimization" that drifts numerically fails loudly.
"""

import os

import numpy as np
import pytest

from repro.causal.dag_constraint import (h_tensor, h_value, h_value_and_grad,
                                         polynomial_h_value)
from repro.nn import BilinearAttention, GRUCell, LSTMCell, Tensor

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "golden")

TOL = 1e-10


def load(name):
    path = os.path.join(GOLDEN_DIR, name)
    assert os.path.exists(path), f"golden fixture missing: {path}"
    return np.load(path)


def assert_close(actual, expected, label):
    actual = np.asarray(actual)
    assert actual.shape == expected.shape, label
    worst = float(np.abs(actual - expected).max())
    assert worst < TOL, f"{label}: max abs diff {worst:.3e} exceeds {TOL}"


class TestGRUCellGolden:
    def test_forward_and_gradients(self):
        d = load("gru_cell.npz")
        cell = GRUCell(d["x"].shape[1], d["h"].shape[1],
                       np.random.default_rng(0))
        for param, key in [(cell.w_ih, "w_ih"), (cell.w_hh, "w_hh"),
                           (cell.b_ih, "b_ih"), (cell.b_hh, "b_hh")]:
            param.data[...] = d[key]
        x = Tensor(d["x"], requires_grad=True)
        h = Tensor(d["h"], requires_grad=True)
        out = cell(x, h)
        assert_close(out.data, d["out"], "gru forward")
        loss = (out * Tensor(d["upstream"])).sum()
        loss.backward()
        assert_close(x.grad, d["dx"], "gru dx")
        assert_close(h.grad, d["dh"], "gru dh")
        assert_close(cell.w_ih.grad, d["dw_ih"], "gru dw_ih")
        assert_close(cell.w_hh.grad, d["dw_hh"], "gru dw_hh")
        assert_close(cell.b_ih.grad, d["db_ih"], "gru db_ih")
        assert_close(cell.b_hh.grad, d["db_hh"], "gru db_hh")


class TestLSTMCellGolden:
    def test_forward_and_gradients(self):
        d = load("lstm_cell.npz")
        cell = LSTMCell(d["x"].shape[1], d["h"].shape[1],
                        np.random.default_rng(0))
        cell.w_ih.data[...] = d["w_ih"]
        cell.w_hh.data[...] = d["w_hh"]
        cell.bias.data[...] = d["bias"]
        x = Tensor(d["x"], requires_grad=True)
        h = Tensor(d["h"], requires_grad=True)
        c = Tensor(d["c"], requires_grad=True)
        h_next, c_next = cell(x, (h, c))
        assert_close(h_next.data, d["h_next"], "lstm h_next")
        assert_close(c_next.data, d["c_next"], "lstm c_next")
        loss = ((h_next * Tensor(d["upstream_h"])).sum()
                + (c_next * Tensor(d["upstream_c"])).sum())
        loss.backward()
        assert_close(x.grad, d["dx"], "lstm dx")
        assert_close(h.grad, d["dh"], "lstm dh")
        assert_close(c.grad, d["dc"], "lstm dc")
        assert_close(cell.w_ih.grad, d["dw_ih"], "lstm dw_ih")
        assert_close(cell.w_hh.grad, d["dw_hh"], "lstm dw_hh")
        assert_close(cell.bias.grad, d["dbias"], "lstm dbias")


class TestAttentionGolden:
    def test_forward_and_gradients(self):
        d = load("attention.npz")
        att = BilinearAttention(d["proj"].shape[0], np.random.default_rng(0))
        att.proj.data[...] = d["proj"]
        states = Tensor(d["states"], requires_grad=True)
        query = Tensor(d["query"], requires_grad=True)
        out = att(states, query, mask=d["mask"])
        assert_close(out.data, d["out"], "attention forward")
        loss = (out * Tensor(d["upstream"])).sum()
        loss.backward()
        assert_close(states.grad, d["dstates"], "attention dstates")
        assert_close(query.grad, d["dquery"], "attention dquery")
        assert_close(att.proj.grad, d["dproj"], "attention dproj")


class TestDagConstraintGolden:
    def test_h_value_and_gradients(self):
        d = load("dag_h.npz")
        weights = d["weights"]
        assert h_value(weights) == pytest.approx(float(d["h"]), abs=TOL)
        tensor = Tensor(weights, requires_grad=True)
        node = h_tensor(tensor)
        assert_close(node.data, d["h_tensor_value"], "h_tensor value")
        node.backward()
        assert_close(tensor.grad, d["grad"], "h_tensor grad")
        value, grad = h_value_and_grad(weights)
        assert value == pytest.approx(float(d["closed_form_value"]), abs=TOL)
        assert_close(grad, d["closed_form_grad"], "closed-form grad")
        assert polynomial_h_value(weights, 10) == pytest.approx(
            float(d["polynomial_order10"]), abs=TOL)
