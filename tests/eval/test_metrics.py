"""Tests for ranking metrics against hand-computed values."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import (dcg_at_z, f1_at_z, hit_rate_at_z, ideal_dcg,
                        mean_metric, mrr_at_z, ndcg_at_z, precision_at_z,
                        recall_at_z)


class TestPrecisionRecallF1:
    def test_perfect(self):
        assert precision_at_z([1, 2], {1, 2}) == 1.0
        assert recall_at_z([1, 2], {1, 2}) == 1.0
        assert f1_at_z([1, 2], {1, 2}) == 1.0

    def test_half_precision(self):
        assert precision_at_z([1, 9], {1}) == 0.5

    def test_partial_recall(self):
        assert recall_at_z([1], {1, 2, 3, 4}) == 0.25

    def test_f1_formula(self):
        # P = 1/5, R = 1/2 -> F1 = 2PR/(P+R)
        recommended = [1, 8, 9, 10, 11]
        relevant = {1, 2}
        p, r = 0.2, 0.5
        assert f1_at_z(recommended, relevant) == pytest.approx(
            2 * p * r / (p + r))

    def test_no_overlap(self):
        assert f1_at_z([7, 8], {1}) == 0.0

    def test_empty_inputs(self):
        assert precision_at_z([], {1}) == 0.0
        assert recall_at_z([1], set()) == 0.0


class TestNDCG:
    def test_hit_at_top(self):
        assert ndcg_at_z([1, 8, 9], {1}) == pytest.approx(1.0)

    def test_hit_at_position_two(self):
        expected = (1 / np.log2(3)) / 1.0
        assert ndcg_at_z([8, 1, 9], {1}) == pytest.approx(expected)

    def test_dcg_accumulates(self):
        value = dcg_at_z([1, 2], {1, 2})
        assert value == pytest.approx(1.0 + 1 / np.log2(3))

    def test_ideal_dcg_caps_at_z(self):
        assert ideal_dcg(10, 2) == pytest.approx(1.0 + 1 / np.log2(3))

    def test_ndcg_normalization(self):
        # Two relevant items in a 5-slot list, both found at top.
        assert ndcg_at_z([1, 2, 8, 9, 10], {1, 2}) == pytest.approx(1.0)

    def test_no_relevant(self):
        assert ndcg_at_z([1, 2], set()) == 0.0


class TestHitAndMRR:
    def test_hit(self):
        assert hit_rate_at_z([3, 4], {4}) == 1.0
        assert hit_rate_at_z([3, 4], {5}) == 0.0

    def test_mrr(self):
        assert mrr_at_z([9, 9, 1], {1}) == pytest.approx(1 / 3)
        assert mrr_at_z([9], {1}) == 0.0


class TestMeanMetric:
    def test_mean(self):
        assert mean_metric([0.0, 1.0]) == 0.5

    def test_empty(self):
        assert mean_metric([]) == 0.0


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100_000), z=st.integers(1, 10))
def test_metric_bounds_property(seed, z):
    rng = np.random.default_rng(seed)
    recommended = list(rng.choice(np.arange(1, 50), size=z, replace=False))
    relevant = set(rng.choice(np.arange(1, 50),
                              size=int(rng.integers(1, 6)),
                              replace=False).tolist())
    for metric in (precision_at_z, recall_at_z, f1_at_z, ndcg_at_z,
                   hit_rate_at_z, mrr_at_z):
        value = metric(recommended, relevant)
        assert 0.0 <= value <= 1.0


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_ndcg_rewards_earlier_hits(seed):
    rng = np.random.default_rng(seed)
    target = int(rng.integers(1, 20))
    others = [i for i in range(20, 26)]
    early = [target] + others[:4]
    late = others[:4] + [target]
    assert ndcg_at_z(early, {target}) >= ndcg_at_z(late, {target})
