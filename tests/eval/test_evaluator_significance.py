"""Tests for the evaluation harness, t-tests and explanation scoring."""

import numpy as np
import pytest

from repro.data import EvalSample, ExplanationSample
from repro.eval import (bootstrap_confidence_interval, evaluate_explanations,
                        evaluate_rankings, paired_t_test,
                        top_k_history_items)


def sample(target):
    return EvalSample(user_id=0, history=((1,),), target=tuple(target))


class TestEvaluateRankings:
    def test_perfect_rankings(self):
        samples = [sample([2]), sample([3])]
        result = evaluate_rankings([[2, 9, 8], [3, 9, 8]], samples, z=3)
        assert result.mean("ndcg") == pytest.approx(1.0)
        assert result.mean("hit") == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_rankings([[1]], [], z=5)

    def test_truncates_to_z(self):
        samples = [sample([5])]
        # Hit is at position 4, beyond z=3 -> no credit.
        result = evaluate_rankings([[1, 2, 3, 5]], samples, z=3)
        assert result.mean("hit") == 0.0

    def test_percentages(self):
        result = evaluate_rankings([[2]], [sample([2])], z=1)
        assert result.as_percentages()["f1"] == pytest.approx(100.0)

    def test_per_user_traces_kept(self):
        samples = [sample([2]), sample([9])]
        result = evaluate_rankings([[2], [1]], samples, z=1)
        assert result.per_user["hit"] == [1.0, 0.0]


class TestPairedTTest:
    def test_clear_difference(self):
        a = [0.9] * 30
        b = [0.1] * 30
        rng = np.random.default_rng(0)
        a = list(np.array(a) + rng.normal(0, 0.01, 30))
        b = list(np.array(b) + rng.normal(0, 0.01, 30))
        test = paired_t_test(a, b)
        assert test.significant()
        assert test.star == "*"

    def test_identical_vectors(self):
        test = paired_t_test([0.5] * 10, [0.5] * 10)
        assert test.p_value == 1.0
        assert test.star == ""

    def test_negative_difference_no_star(self):
        rng = np.random.default_rng(1)
        a = list(rng.normal(0.1, 0.01, 30))
        b = list(rng.normal(0.9, 0.01, 30))
        test = paired_t_test(a, b)
        assert test.significant()
        assert test.star == ""  # significant but worse

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [1.0, 2.0])

    def test_short_input(self):
        test = paired_t_test([1.0], [0.0])
        assert test.p_value == 1.0

    def test_bootstrap_interval_contains_mean(self):
        rng = np.random.default_rng(2)
        values = rng.normal(0.5, 0.1, 200)
        lo, hi = bootstrap_confidence_interval(values)
        assert lo < values.mean() < hi

    def test_bootstrap_empty(self):
        assert bootstrap_confidence_interval([]) == (0.0, 0.0)


class TestExplanationEvaluation:
    def make_sample(self):
        return ExplanationSample(user_id=0,
                                 history=((4,), (5,), (6,)),
                                 target_item=9, cause_items=(5,))

    def test_top_k_selection(self):
        s = self.make_sample()
        picked = top_k_history_items(s, np.array([0.1, 0.9, 0.5]), k=2)
        assert picked == [5, 6]

    def test_top_k_dedupes_items(self):
        s = ExplanationSample(user_id=0, history=((4,), (5,), (4,)),
                              target_item=9, cause_items=(4,))
        picked = top_k_history_items(s, np.array([0.2, 0.1, 0.9]), k=2)
        assert picked == [4, 5]

    def test_score_length_mismatch(self):
        with pytest.raises(ValueError):
            top_k_history_items(self.make_sample(), np.array([1.0]), k=1)

    def test_evaluate_explanations_perfect(self):
        s = self.make_sample()
        result = evaluate_explanations(
            [s], lambda sample: np.array([0.0, 1.0, 0.0]), k=1)
        assert result.f1 == pytest.approx(1.0)
        assert result.ndcg == pytest.approx(1.0)

    def test_evaluate_explanations_miss(self):
        s = self.make_sample()
        result = evaluate_explanations(
            [s], lambda sample: np.array([1.0, 0.0, 0.5]), k=1)
        assert result.f1 == 0.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            evaluate_explanations([], lambda s: np.zeros(1))

    def test_percentages(self):
        s = self.make_sample()
        result = evaluate_explanations(
            [s], lambda sample: np.array([0.0, 1.0, 0.0]), k=1)
        assert result.as_percentages()["ndcg"] == pytest.approx(100.0)
