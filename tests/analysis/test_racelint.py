"""Unit tests for the CL001–CL005 concurrency lint rules (racelint).

Each rule gets positive cases (the seeded violation fires, attributed to
the right line) and negative cases (the sanctioned patterns used by
``repro.serve`` stay clean).  The seeded lock-inversion fixture shared
with the runtime sanitizer tests is linted from its real source file, so
static and dynamic detection are exercised against the same code.
"""

import textwrap

import pytest

from repro.analysis.engine import LintEngine

from . import inversion_fixture


def lint(source, families=("CL",)):
    engine = LintEngine(families=families)
    findings, _ = engine.run_source(textwrap.dedent(source), "serve/mod.py")
    return findings


def rule_ids(findings):
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# CL001 — unguarded shared mutation
# ----------------------------------------------------------------------
class TestCL001:
    def test_unguarded_write_fires(self):
        findings = lint("""
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, item):
                    self._items.append(item)
        """)
        assert rule_ids(findings) == ["CL001"]
        assert "self._items" in findings[0].message
        assert "Store.add" in findings[0].message

    def test_guarded_write_is_clean(self):
        assert lint("""
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, item):
                    with self._lock:
                        self._items.append(item)
        """) == []

    def test_condition_guard_counts(self):
        """A Condition is an owned lock and guards like one (MicroBatcher)."""
        assert lint("""
            import threading

            class Batcher:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._nonempty = threading.Condition(self._lock)
                    self._queue = []

                def submit(self, item):
                    with self._nonempty:
                        self._queue.append(item)
                        self._nonempty.notify()
        """) == []

    def test_aug_assign_and_subscript_store_fire(self):
        findings = lint("""
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0
                    self._by_key = {}

                def bump(self, key):
                    self._n += 1
                    self._by_key[key] = self._n
        """)
        assert rule_ids(findings) == ["CL001", "CL001"]

    def test_locked_suffix_convention_exempts(self):
        assert lint("""
            import threading

            class App:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._counts = None

                def _counts_locked(self):
                    self._counts = [0]
                    return self._counts
        """) == []

    def test_threading_local_attrs_exempt(self):
        assert lint("""
            import threading

            class San:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._tls = threading.local()

                def held(self):
                    self._tls.held = []
                    return self._tls.held
        """) == []

    def test_lockless_class_out_of_scope(self):
        assert lint("""
            class Plain:
                def set(self, v):
                    self._v = v
        """) == []

    def test_nested_def_does_not_inherit_guard(self):
        """A closure defined under the lock runs later, maybe without it."""
        findings = lint("""
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def make_writer(self):
                    with self._lock:
                        def write(item):
                            self._items.append(item)
                    return write
        """)
        assert rule_ids(findings) == ["CL001"]


# ----------------------------------------------------------------------
# CL002 — bare acquire/release
# ----------------------------------------------------------------------
class TestCL002:
    def test_bare_pair_fires_twice(self):
        findings = lint("""
            def f(lock):
                lock.acquire()
                try:
                    pass
                finally:
                    lock.release()
        """)
        assert rule_ids(findings) == ["CL002", "CL002"]

    def test_with_statement_is_clean(self):
        assert lint("""
            def f(lock):
                with lock:
                    pass
        """) == []

    def test_sanitizer_module_is_exempt(self):
        engine = LintEngine(families=("CL",))
        findings, _ = engine.run_source(
            "def f(lock):\n    lock.acquire()\n",
            "src/repro/analysis/concurrency.py")
        assert findings == []


# ----------------------------------------------------------------------
# CL003 — blocking call while holding a lock
# ----------------------------------------------------------------------
class TestCL003:
    def test_join_and_sleep_under_lock_fire(self):
        findings = lint("""
            import threading
            import time

            class Runner:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._worker = threading.Thread(target=None, daemon=True)

                def stop(self):
                    with self._lock:
                        self._worker.join()
                        time.sleep(0.1)
        """)
        assert rule_ids(findings) == ["CL003", "CL003"]
        assert "self._worker.join" in findings[0].message

    def test_wait_on_held_condition_is_sanctioned(self):
        """`with cond: cond.wait()` releases the lock — MicroBatcher's loop."""
        assert lint("""
            import threading

            class Batcher:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._nonempty = threading.Condition(self._lock)

                def take(self):
                    with self._nonempty:
                        self._nonempty.wait(timeout=0.5)
        """) == []

    def test_foreign_wait_under_lock_fires(self):
        findings = lint("""
            import threading

            class App:
                def __init__(self):
                    self._lock = threading.Lock()

                def bad(self, event):
                    with self._lock:
                        event.wait()
        """)
        assert rule_ids(findings) == ["CL003"]

    def test_queue_get_under_lock_fires(self):
        findings = lint("""
            import threading

            class Drain:
                def __init__(self):
                    self._lock = threading.Lock()

                def pull(self, result_queue):
                    with self._lock:
                        return result_queue.get(timeout=1.0)
        """)
        assert rule_ids(findings) == ["CL003"]

    def test_dict_get_under_lock_is_clean(self):
        """Plain dict .get must not be mistaken for queue.get."""
        assert lint("""
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._map = {}

                def lookup(self, key):
                    with self._lock:
                        return self._map.get(key)
        """) == []

    def test_join_outside_lock_is_clean(self):
        assert lint("""
            import threading

            class Runner:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._closed = False
                    self._worker = threading.Thread(target=None, daemon=True)

                def stop(self):
                    with self._lock:
                        self._closed = True
                    self._worker.join(timeout=5.0)
        """) == []


# ----------------------------------------------------------------------
# CL004 — static lock-order inversion
# ----------------------------------------------------------------------
class TestCL004:
    def test_seeded_fixture_is_detected_with_both_sites(self):
        """The shared inversion fixture must trip CL004 at the acquiring
        site, naming both locks and pointing at the conflicting line."""
        with open(inversion_fixture.__file__, "r", encoding="utf-8") as fh:
            source = fh.read()
        engine = LintEngine(families=("CL",))
        findings, _ = engine.run_source(source, inversion_fixture.__file__)
        inversions = [f for f in findings if f.rule_id == "CL004"]
        assert len(inversions) == 1
        finding = inversions[0]
        assert "InvertedPair._alpha" in finding.message
        assert "InvertedPair._beta" in finding.message
        # Anchored to the inner acquisition of the second ordering (ba),
        # citing the line of the first ordering (ab's inner with).
        lines = source.splitlines()
        assert "with self._alpha:" in lines[finding.line - 1]
        import re
        cited = int(re.search(r"line (\d+)", finding.message).group(1))
        assert "with self._beta:" in lines[cited - 1]

    def test_consistent_order_is_clean(self):
        assert lint("""
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
        """) == []

    def test_module_level_lockish_names_participate(self):
        findings = lint("""
            def f(a_lock, b_lock):
                with a_lock:
                    with b_lock:
                        pass

            def g(a_lock, b_lock):
                with b_lock:
                    with a_lock:
                        pass
        """)
        assert rule_ids(findings) == ["CL004"]

    def test_indirect_cycle_detected(self):
        findings = lint("""
            import threading

            class Trio:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self._c = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._b:
                        with self._c:
                            pass

                def three(self):
                    with self._c:
                        with self._a:
                            pass
        """)
        assert rule_ids(findings) == ["CL004"]
        assert "cycle" in findings[0].message


# ----------------------------------------------------------------------
# CL005 — thread lifecycle ownership
# ----------------------------------------------------------------------
class TestCL005:
    def test_thread_without_daemon_fires(self):
        findings = lint("""
            import threading

            def spawn():
                return threading.Thread(target=print)
        """)
        assert rule_ids(findings) == ["CL005"]

    def test_explicit_daemon_is_clean(self):
        assert lint("""
            import threading

            def spawn():
                return threading.Thread(target=print, daemon=True)
        """) == []

    def test_mp_context_process_fires(self):
        findings = lint("""
            import multiprocessing as mp

            def spawn(ctx):
                return ctx.Process(target=print)
        """)
        assert rule_ids(findings) == ["CL005"]


# ----------------------------------------------------------------------
# Suppression + family plumbing
# ----------------------------------------------------------------------
def test_cl_suppression_syntax_works():
    engine = LintEngine(families=("CL",))
    findings, suppressed = engine.run_source(textwrap.dedent("""
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._hits = 0

            def touch(self):
                self._hits += 1  # gradlint: disable=CL001 — stat, races ok
    """), "serve/mod.py")
    assert findings == []
    assert suppressed == 1


def test_family_filter_excludes_other_families():
    source = """
        import numpy as np

        def f(model):
            np.random.seed(0)
    """
    assert lint(source, families=("CL",)) == []
    assert rule_ids(lint(source, families=("GL",))) == ["GL004"]


def test_repo_serve_layer_is_racelint_clean():
    """The acceptance bar: CL001–CL005 clean over the serving stack."""
    import os

    import repro

    from repro.analysis.engine import lint_paths

    root = os.path.dirname(repro.__file__)
    report = lint_paths([os.path.join(root, "serve"),
                         os.path.join(root, "parallel"),
                         os.path.join(root, "analysis")], families=("CL",))
    assert report.findings == [], report.render_text()
    assert report.files_checked > 0
