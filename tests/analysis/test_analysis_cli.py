"""End-to-end tests for ``python -m repro.analysis`` (the gradlint CLI).

A fixture tree seeds one violation of every rule; the CLI must exit
non-zero on it, exit zero on a clean tree, and speak JSON.
"""

import json
import textwrap

import pytest

from repro.analysis.cli import main

RULE_IDS = ("GL001", "GL002", "GL003", "GL004", "GL005", "GL006", "GL007",
            "GL008", "CL001", "CL002", "CL003", "CL004", "CL005")


@pytest.fixture
def violating_tree(tmp_path):
    """One seeded violation per rule, across a realistic mini-layout."""
    nn = tmp_path / "nn"
    nn.mkdir()
    # GL001 + GL003-exemption interplay: tensor.py is sanctioned for
    # mutation but not for missing _unbroadcast.
    (nn / "tensor.py").write_text(textwrap.dedent("""
        def __mul__(self, other_t):
            def backward(grad):
                self._accumulate(grad * other_t.data)
            return Tensor._make(self.data * other_t.data, (self, other_t), backward)
    """))
    # GL002: graph bypass inside a differentiable layer.
    (nn / "functional.py").write_text(
        "def softmax(x):\n    return Tensor(x.data.max(axis=-1))\n")
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    # GL006: phantom export.
    (pkg / "__init__.py").write_text(
        'from .trainer import fit\n\n__all__ = ["fit", "predict"]\n')
    # GL003 + GL004 + GL005 + GL007 in one training module.
    (pkg / "trainer.py").write_text(textwrap.dedent("""
        import numpy as np

        def fit(model):
            noise = np.random.randn(4)
            model.weight.data[...] = noise
            norm = (model.weight.grad ** 2).sum()
            try:
                model.step()
            except:
                pass
    """))
    # GL008: memmap inflation in a repro/data module.
    data = tmp_path / "repro" / "data"
    data.mkdir(parents=True)
    (data / "loader.py").write_text(textwrap.dedent("""
        import numpy as np

        def load_column(path):
            col = np.load(path, mmap_mode="r")
            return np.asarray(col)
    """))
    # CL001–CL005 in one server module.
    (pkg / "server.py").write_text(textwrap.dedent("""
        import threading
        import time

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._other_lock = threading.Lock()
                self._items = []
                self._worker = threading.Thread(target=self.drain)

            def add(self, item):
                self._items.append(item)

            def swap(self):
                with self._lock:
                    with self._other_lock:
                        pass

            def swap_back(self):
                with self._other_lock:
                    with self._lock:
                        pass

            def drain(self):
                self._lock.acquire()
                try:
                    with self._other_lock:
                        self._worker.join()
                finally:
                    self._lock.release()
    """))
    return tmp_path


@pytest.fixture
def clean_tree(tmp_path):
    (tmp_path / "ok.py").write_text(
        "import numpy as np\n\nrng = np.random.default_rng(3)\n")
    return tmp_path


def test_exit_nonzero_on_seeded_violations(violating_tree, capsys):
    assert main([str(violating_tree)]) == 1
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out, f"{rule_id} missing from CLI output"


def test_exit_zero_on_clean_tree(clean_tree, capsys):
    assert main([str(clean_tree)]) == 0
    assert "clean" in capsys.readouterr().out


def test_json_format(violating_tree, capsys):
    assert main([str(violating_tree), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro.analysis/v2"
    assert payload["files_checked"] == 6
    found_rules = {f["rule"] for f in payload["findings"]}
    assert found_rules == set(RULE_IDS)
    sample = payload["findings"][0]
    assert {"path", "line", "col", "rule", "family", "severity",
            "message"} <= set(sample)
    assert all(f["family"] == f["rule"][:2] for f in payload["findings"])
    assert set(payload["families"]) == {"GL", "CL"}
    assert payload["families"]["CL"] >= 5


def test_select_and_ignore(violating_tree, capsys):
    assert main([str(violating_tree), "--select", "GL004"]) == 1
    out = capsys.readouterr().out
    assert "GL004" in out and "GL005" not in out

    assert main([str(violating_tree), "--ignore"] + list(RULE_IDS)) == 2
    assert "no rules selected" in capsys.readouterr().out


def test_rules_family_filter(violating_tree, capsys):
    """--rules CL runs racelint alone (the blocking CI step)."""
    assert main([str(violating_tree), "--rules", "CL"]) == 1
    out = capsys.readouterr().out
    assert "CL001" in out and "CL004" in out
    assert "GL" not in out

    assert main([str(violating_tree), "--rules", "ZZ"]) == 2
    assert "no rules selected" in capsys.readouterr().out


def test_suppressed_violation_passes(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(
        "import numpy as np\n"
        "np.random.seed(0)  # gradlint: disable=GL004 — fixture needs it\n")
    assert main([str(tmp_path)]) == 0
    assert "1 suppressed" in capsys.readouterr().out


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out
    assert "disable=" in out


def test_missing_path_is_an_error_not_clean(tmp_path, capsys):
    """A typo'd path in CI must not read as a clean run."""
    missing = str(tmp_path / "nowhere")
    assert main([missing]) == 2
    assert "no such file or directory" in capsys.readouterr().out


def test_single_file_target(violating_tree, capsys):
    path = str(violating_tree / "pkg" / "trainer.py")
    assert main([path]) == 1
    out = capsys.readouterr().out
    assert "GL004" in out and "GL001" not in out
