"""Tests for the runtime gradient sanitizer and the training-loop guards.

The headline scenario (acceptance criterion): a tensor poisoned *after* its
creation, mid-graph, is attributed to its creating op at ``backward()``
time, with the recorded creation traceback attached.
"""

import numpy as np
import pytest

from repro.analysis import (GradientAnomalyError, anomaly_mode_enabled,
                            detect_anomaly, set_detect_anomaly)
from repro.core import Causer, CauserConfig
from repro.nn import Tensor


class TestAnomalyDetection:
    def test_poisoned_tensor_names_creating_op(self):
        """NaN injected mid-graph is traced back to the op that built the node."""
        with detect_anomaly():
            a = Tensor(np.ones(3), requires_grad=True)
            b = a * 2.0
            loss = (b * b).sum()
            b.data[1] = np.nan  # poison after creation
            with pytest.raises(GradientAnomalyError) as excinfo:
                loss.backward()
        err = excinfo.value
        assert err.kind == "poisoned"
        assert err.op == "__mul__"
        assert "__mul__" in str(err)
        # The recorded creation traceback points at this test.
        assert "test_poisoned_tensor_names_creating_op" in str(err)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_nonfinite_forward_value_raises_at_creation(self):
        with detect_anomaly():
            with pytest.raises(GradientAnomalyError) as excinfo:
                Tensor(np.array([1.0])) / Tensor(np.array([0.0]))
        assert excinfo.value.kind == "forward"
        assert excinfo.value.op == "__truediv__"

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_nonfinite_gradient_names_op(self):
        """sqrt is finite at 0 but its gradient is not."""
        with detect_anomaly():
            x = Tensor(np.array([0.0, 1.0]), requires_grad=True)
            loss = x.sqrt().sum()
            with pytest.raises(GradientAnomalyError) as excinfo:
                loss.backward()
        assert excinfo.value.kind == "gradient"
        assert excinfo.value.op == "sqrt"

    def test_shape_contract_violation(self):
        """A hand-rolled backward closure that forgets to un-broadcast."""
        with detect_anomaly():
            x = Tensor(np.ones((2, 3)), requires_grad=True)
            rogue = Tensor._make(x.data.sum(axis=0), (x,),
                                 lambda grad: x._accumulate(grad))
            with pytest.raises(GradientAnomalyError) as excinfo:
                rogue.sum().backward()
        assert excinfo.value.kind == "shape"
        assert "(3,)" in str(excinfo.value) and "(2, 3)" in str(excinfo.value)

    def test_clean_graph_passes_and_matches_plain_mode(self):
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        (x * x).sum().backward()
        plain_grad = x.grad.copy()
        with detect_anomaly():
            y = Tensor(np.arange(6, dtype=float).reshape(2, 3),
                       requires_grad=True)
            (y * y).sum().backward()
        np.testing.assert_allclose(y.grad, plain_grad)


class TestModeManagement:
    def test_context_manager_restores_state(self):
        assert not anomaly_mode_enabled()
        with detect_anomaly():
            assert anomaly_mode_enabled()
        assert not anomaly_mode_enabled()

    def test_nested_contexts(self):
        with detect_anomaly():
            with detect_anomaly():
                assert anomaly_mode_enabled()
            assert anomaly_mode_enabled()
        assert not anomaly_mode_enabled()

    def test_global_toggle(self):
        set_detect_anomaly(True)
        try:
            assert anomaly_mode_enabled()
        finally:
            set_detect_anomaly(False)
        assert not anomaly_mode_enabled()

    def test_disabled_mode_propagates_nan_silently(self):
        """Without anomaly mode the engine keeps its zero-overhead path."""
        a = Tensor(np.ones(3), requires_grad=True)
        b = a * 2.0
        b.data[1] = np.nan
        (b * b).sum().backward()
        assert np.isnan(a.grad).any()


def tiny_causer(dataset, **overrides):
    defaults = dict(embedding_dim=6, hidden_dim=6, num_epochs=1,
                    batch_size=64, max_history=6, num_clusters=4,
                    epsilon=0.2, seed=0, pretrain_graph=False)
    defaults.update(overrides)
    return Causer(dataset.corpus.num_users, dataset.num_items,
                  dataset.features, CauserConfig(**defaults))


class TestTrainingGuards:
    """The augmented-Lagrangian loop fails fast instead of stalling."""

    def test_poisoned_weights_abort_with_iterate(self, tiny_dataset,
                                                 tiny_split):
        model = tiny_causer(tiny_dataset)
        model.graph.weights.data[0, 1] = np.nan
        with pytest.raises(RuntimeError, match=r"epoch 1, batch 1"):
            model.fit(tiny_split.train)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_guard_names_bad_parameters(self, tiny_dataset, tiny_split):
        model = tiny_causer(tiny_dataset)
        model.graph.weights.data[0, 1] = np.inf
        with pytest.raises(RuntimeError, match=r"graph\.weights\.data"):
            model.fit(tiny_split.train)

    def test_h_guard_names_epoch(self, tiny_dataset):
        model = tiny_causer(tiny_dataset)
        with pytest.raises(RuntimeError, match=r"h\(W\).*epoch 3"):
            model._check_finite_h(float("nan"), epoch=2)

    def test_anomaly_mode_attributes_training_nan_to_op(self, tiny_dataset,
                                                        tiny_split):
        """--detect-anomaly semantics: the creating op is reported."""
        model = tiny_causer(tiny_dataset)
        model.graph.weights.data[0, 1] = np.nan
        with detect_anomaly():
            with pytest.raises(GradientAnomalyError) as excinfo:
                model.fit(tiny_split.train)
        assert excinfo.value.op is not None
        assert excinfo.value.kind in ("forward", "poisoned")

    def test_healthy_training_with_anomaly_mode(self, tiny_dataset,
                                                tiny_split):
        model = tiny_causer(tiny_dataset)
        with detect_anomaly():
            fit = model.fit(tiny_split.train)
        assert np.isfinite(fit.final_loss)


class TestTrainingCli:
    def test_detect_anomaly_flag_accepted(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["table2", "--detect-anomaly"])
        assert args.detect_anomaly

    def test_table2_runs_under_detect_anomaly(self, capsys):
        from repro.cli import main
        assert main(["table2", "--scale", "0.02", "--quick",
                     "--detect-anomaly"]) == 0
        assert "Table II" in capsys.readouterr().out
