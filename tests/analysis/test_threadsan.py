"""Tests for the runtime thread sanitizer (`repro.analysis.threadsan`).

The seeded lock-inversion fixture shared with the static CL004 tests must
be caught dynamically too, with both acquisition stacks attributed; the
long-hold and torn-read detectors get direct unit coverage; and restore()
must put the original primitives back.
"""

import threading
import time

import pytest

from repro.analysis import LockProxy, ThreadSanitizer, threadsan

from .inversion_fixture import InvertedPair


def run_in_thread(fn):
    error = []

    def target():
        try:
            fn()
        except BaseException as exc:  # pragma: no cover - surfaced below
            error.append(exc)

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout=10.0)
    assert not thread.is_alive(), "test thread wedged"
    if error:
        raise error[0]


# ----------------------------------------------------------------------
# lock-order inversion
# ----------------------------------------------------------------------
def test_seeded_inversion_fixture_is_detected():
    """The MUST-detect acceptance case: InvertedPair trips threadsan, and
    the finding carries the stacks of both acquiring sites."""
    pair = InvertedPair()
    with threadsan() as san:
        san.instrument(pair, "_alpha", "_beta")
        run_in_thread(pair.ab)
        run_in_thread(pair.ba)
        findings = san.findings
    inversions = [f for f in findings if f.kind == "lock-inversion"]
    assert len(inversions) == 1
    finding = inversions[0]
    assert "InvertedPair._alpha" in finding.message
    assert "InvertedPair._beta" in finding.message
    # Attribution: the offending stack is the second ordering (ba), the
    # conflicting stack is the first (ab).
    assert "in ba" in finding.where
    assert "in ab" in finding.also


def test_inversion_detected_single_threaded():
    """Order discipline is checked even when no deadlock actually fires."""
    pair = InvertedPair()
    with threadsan() as san:
        san.instrument(pair, "_alpha", "_beta")
        pair.ab()
        pair.ba()
        assert [f.kind for f in san.findings] == ["lock-inversion"]


def test_inversion_reported_once_per_pair():
    pair = InvertedPair()
    with threadsan() as san:
        san.instrument(pair, "_alpha", "_beta")
        for _ in range(5):
            pair.ab()
            pair.ba()
        assert len(san.findings) == 1


def test_consistent_order_is_clean():
    pair = InvertedPair()
    with threadsan() as san:
        san.instrument(pair, "_alpha", "_beta")
        for _ in range(5):
            pair.ab()
        assert san.findings == []


# ----------------------------------------------------------------------
# long hold
# ----------------------------------------------------------------------
def test_long_hold_detected_with_acquisition_stack():
    with threadsan(long_hold_ms=5.0) as san:
        lock = san.wrap_lock(threading.Lock(), "slow_lock")
        with lock:
            time.sleep(0.03)
        findings = san.findings
    assert [f.kind for f in findings] == ["long-hold"]
    assert "slow_lock" in findings[0].message
    assert "test_long_hold_detected" in findings[0].where


def test_fast_hold_is_clean():
    with threadsan(long_hold_ms=500.0) as san:
        lock = san.wrap_lock(threading.Lock(), "fast_lock")
        with lock:
            pass
        assert san.findings == []


def test_condition_wait_does_not_count_as_holding():
    """Condition.wait releases the lock; waiting must not be a long hold."""
    with threadsan(long_hold_ms=20.0) as san:
        cond = san.wrap_lock(threading.Condition(), "cond")
        with cond:
            cond.wait(timeout=0.08)   # 4x the threshold, but not *holding*
        assert san.findings == []


def test_rlock_reentry_is_not_an_edge_or_double_release():
    with threadsan() as san:
        rlock = san.wrap_lock(threading.RLock(), "re_lock")
        with rlock:
            with rlock:
                pass
            # Still held here: depth bookkeeping must survive re-entry.
            assert rlock.wrapped._is_owned()
        assert san.findings == []


# ----------------------------------------------------------------------
# torn reads (generation shadow checking)
# ----------------------------------------------------------------------
def test_generation_regression_on_one_thread_is_torn_read():
    with threadsan() as san:
        san.observe_generation("reg", 3, fingerprint=id(object()))
        san.observe_generation("reg", 2, fingerprint=id(object()))
        findings = san.findings
    assert [f.kind for f in findings] == ["torn-read"]
    assert "3 -> 2" in findings[0].message


def test_same_generation_different_identity_is_torn_read():
    with threadsan() as san:
        san.observe_generation("reg", 7, fingerprint=1111)
        san.observe_generation("reg", 7, fingerprint=2222)
        findings = san.findings
    assert [f.kind for f in findings] == ["torn-read"]
    assert "generation 7" in findings[0].message


def test_monotonic_generations_across_threads_are_clean():
    """Per-thread monotonicity only: one thread seeing gen 5 then another
    thread seeing gen 4 is scheduling, not a torn read."""
    with threadsan() as san:
        san.observe_generation("reg", 5, fingerprint=5)
        run_in_thread(lambda: san.observe_generation("reg", 4,
                                                     fingerprint=4))
        assert san.findings == []


# ----------------------------------------------------------------------
# instrumentation + restore
# ----------------------------------------------------------------------
def test_wrap_lock_is_idempotent():
    san = ThreadSanitizer()
    lock = san.wrap_lock(threading.Lock(), "x")
    assert san.wrap_lock(lock, "y") is lock


def test_instrument_and_restore_roundtrip():
    pair = InvertedPair()
    original_alpha = pair._alpha
    with threadsan() as san:
        san.instrument(pair, "_alpha", "_beta")
        assert isinstance(pair._alpha, LockProxy)
        assert pair._alpha.wrapped is original_alpha
        pair.ab()
    assert pair._alpha is original_alpha
    assert not isinstance(pair._beta, LockProxy)
    # The fixture still works un-instrumented.
    assert pair.ab() == 2


def test_instrument_app_wires_the_serving_stack():
    from repro.serve import ServeApp

    app = ServeApp(max_wait_ms=0.0)
    try:
        with threadsan() as san:
            san.instrument_app(app)
            assert isinstance(app.registry._lock, LockProxy)
            assert isinstance(app.sessions._lock, LockProxy)
            assert isinstance(app.batcher._nonempty, LockProxy)
            assert isinstance(app.metrics._lock, LockProxy)
            assert isinstance(app._pop_lock, LockProxy)
            status, _, _ = app.handle("GET", "/healthz")
            assert status == 200
            assert san.findings == []
        assert not isinstance(app.registry._lock, LockProxy)
        assert not isinstance(app._pop_lock, LockProxy)
    finally:
        app.close()


def test_render_report_mentions_kind_and_site():
    pair = InvertedPair()
    with threadsan() as san:
        san.instrument(pair, "_alpha", "_beta")
        pair.ab()
        pair.ba()
    report = san.render_report()
    assert "lock-inversion" in report
    assert "offending site" in report
    assert "conflicting site" in report
    assert "1 finding(s)" in report


def test_clean_report_text():
    with threadsan() as san:
        pass
    assert san.render_report() == "threadsan: no findings"
