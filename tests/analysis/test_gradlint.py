"""Rule-by-rule tests for the gradlint static-analysis engine.

Each rule gets a seeded violation (must be caught) and a near-miss (must
not be flagged); suppression syntax and the repo-wide clean-tree invariant
are covered at the end.
"""

import os
import textwrap

import pytest

from repro.analysis import LintEngine, lint_paths
from repro.analysis.engine import discover_files

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def run(source, path="pkg/module.py", **engine_kwargs):
    engine = LintEngine(**engine_kwargs)
    findings, suppressed = engine.run_source(textwrap.dedent(source), path)
    return findings, suppressed


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestMissingUnbroadcast:
    VIOLATION = """
    def __mul__(self, other_t):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * other_t.data)
        return Tensor._make(self.data * other_t.data, (self, other_t), backward)
    """

    def test_raw_foreign_product_flagged(self):
        findings, _ = run(self.VIOLATION)
        assert rule_ids(findings) == ["GL001"]
        assert "_unbroadcast" in findings[0].message

    def test_wrapped_accumulate_clean(self):
        findings, _ = run("""
        def backward(grad):
            self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
        """)
        assert findings == []

    def test_own_data_reference_clean(self):
        # `self.data` inside `self._accumulate` is shape-safe by definition.
        findings, _ = run("""
        def backward(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1))
        """)
        assert findings == []

    def test_only_backward_functions_scanned(self):
        findings, _ = run("""
        def forward(grad):
            self._accumulate(grad * other_t.data)
        """)
        assert findings == []


class TestGraphBypass:
    def test_data_method_flagged_in_layer_file(self):
        findings, _ = run("y = Tensor(x.data.max(axis=-1))",
                          path="src/repro/nn/functional.py")
        assert rule_ids(findings) == ["GL002"]

    def test_np_call_on_data_flagged(self):
        findings, _ = run("y = np.exp(x.data)",
                          path="src/repro/nn/rnn.py")
        assert rule_ids(findings) == ["GL002"]

    def test_other_files_out_of_scope(self):
        findings, _ = run("y = np.exp(x.data)", path="src/repro/models/bpr.py")
        assert findings == []

    def test_graph_ops_clean(self):
        findings, _ = run("y = (x * x).sum(axis=-1)",
                          path="src/repro/nn/attention.py")
        assert findings == []


class TestInPlaceMutation:
    def test_subscript_store_flagged(self):
        findings, _ = run("model.weight.data[...] = seed")
        assert rule_ids(findings) == ["GL003"]

    def test_augmented_store_flagged(self):
        findings, _ = run("param.data += update")
        assert rule_ids(findings) == ["GL003"]

    def test_grad_rebind_flagged(self):
        findings, _ = run("param.grad = fake_grad")
        assert rule_ids(findings) == ["GL003"]

    def test_sanctioned_files_exempt(self):
        for path in ("src/repro/nn/tensor.py", "src/repro/nn/optim.py",
                     "src/repro/nn/module.py"):
            findings, _ = run("param.data -= lr * param.grad", path=path)
            assert findings == []

    def test_plain_data_attribute_clean(self):
        # Ordinary classes may own a `data` attribute.
        findings, _ = run("self.data = np.asarray(rows)")
        assert findings == []


class TestLegacyNumpyRandom:
    @pytest.mark.parametrize("call", [
        "np.random.seed(0)",
        "np.random.randn(3, 3)",
        "np.random.choice(items)",
        "numpy.random.shuffle(deck)",
        "np.random.RandomState(1)",
    ])
    def test_legacy_calls_flagged(self, call):
        findings, _ = run(call)
        assert rule_ids(findings) == ["GL004"]

    def test_default_rng_clean(self):
        findings, _ = run("rng = np.random.default_rng(7)")
        assert findings == []

    def test_generator_annotation_clean(self):
        findings, _ = run("""
        def f(rng: np.random.Generator) -> None:
            return rng.normal(size=3)
        """)
        assert findings == []


class TestSwallowedException:
    def test_bare_except_flagged(self):
        findings, _ = run("""
        try:
            risky()
        except:
            handle()
        """)
        assert rule_ids(findings) == ["GL005"]

    def test_broad_pass_flagged(self):
        findings, _ = run("""
        try:
            risky()
        except Exception:
            pass
        """)
        assert rule_ids(findings) == ["GL005"]

    def test_narrow_pass_clean(self):
        findings, _ = run("""
        try:
            risky()
        except ValueError:
            pass
        """)
        assert findings == []

    def test_broad_with_handling_clean(self):
        findings, _ = run("""
        try:
            risky()
        except Exception as exc:
            log(exc)
            raise
        """)
        assert findings == []


class TestAllDrift:
    def test_phantom_export_flagged(self):
        findings, _ = run("""
        from .mod import real_name

        __all__ = ["real_name", "phantom_name"]
        """, path="pkg/__init__.py")
        assert rule_ids(findings) == ["GL006"]
        assert "phantom_name" in findings[0].message

    def test_missing_reexport_warned(self):
        findings, _ = run("""
        from .mod import exported, forgotten

        __all__ = ["exported"]
        """, path="pkg/__init__.py")
        assert rule_ids(findings) == ["GL006"]
        assert findings[0].severity == "warning"
        assert "forgotten" in findings[0].message

    def test_consistent_init_clean(self):
        findings, _ = run("""
        from .mod import name_a, name_b
        from . import sub

        __all__ = ["name_a", "name_b", "sub"]
        """, path="pkg/__init__.py")
        assert findings == []

    def test_non_init_files_out_of_scope(self):
        findings, _ = run('__all__ = ["phantom"]', path="pkg/module.py")
        assert findings == []


class TestDenseGradAssumption:
    def test_grad_attribute_access_flagged(self):
        findings, _ = run("norm = param.grad.sum()", select=["GL007"])
        assert rule_ids(findings) == ["GL007"]
        assert "repro.nn.sparse" in findings[0].message

    def test_grad_arithmetic_flagged(self):
        findings, _ = run("total += (param.grad ** 2).sum()",
                          select=["GL007"])
        assert "GL007" in rule_ids(findings)

    def test_grad_inplace_scale_flagged(self):
        findings, _ = run("param.grad *= scale", select=["GL007"])
        assert rule_ids(findings) == ["GL007"]

    def test_grad_indexing_flagged(self):
        findings, _ = run("rows = param.grad[indices]", select=["GL007"])
        assert rule_ids(findings) == ["GL007"]

    def test_np_call_on_grad_flagged(self):
        findings, _ = run("ok = np.isfinite(param.grad).all()",
                          select=["GL007"])
        assert "GL007" in rule_ids(findings)

    def test_sparse_helpers_clean(self):
        findings, _ = run("""
        total = grad_sq_sum(param.grad)
        grad_scale_(param.grad, scale)
        ok = grad_all_finite(param.grad)
        dense = densify_grad(param.grad)
        sparse = isinstance(param.grad, RowSparseGrad)
        """, select=["GL007"])
        assert findings == []

    def test_bare_grad_reference_clean(self):
        # Passing `.grad` around or checking for None assumes nothing.
        findings, _ = run("""
        if param.grad is not None:
            stash.append(param.grad)
        """, select=["GL007"])
        assert findings == []

    def test_sparse_aware_files_exempt(self):
        for path in ("src/repro/nn/optim.py", "src/repro/nn/sparse.py",
                     "src/repro/nn/tensor.py",
                     "src/repro/analysis/sanitizer.py"):
            findings, _ = run("param.grad *= scale", path=path,
                              select=["GL007"])
            assert findings == []

    def test_suppression_applies(self):
        findings, suppressed = run(
            "h = param.grad.shape  # gradlint: disable=GL007 — dense-only "
            "debug helper", select=["GL007"])
        assert findings == []
        assert suppressed == 1


class TestMemmapInflation:
    DATA_PATH = "src/repro/data/eventlog.py"

    def test_tainted_name_flagged(self):
        findings, _ = run("""
        col = np.load(path, mmap_mode="r")
        dense = np.asarray(col)
        """, path=self.DATA_PATH, select=["GL008"])
        assert rule_ids(findings) == ["GL008"]
        assert "slice" in findings[0].message

    def test_direct_nesting_flagged(self):
        findings, _ = run('dense = np.array(np.load(p, mmap_mode="r"))',
                          path=self.DATA_PATH, select=["GL008"])
        assert rule_ids(findings) == ["GL008"]

    def test_column_view_flagged(self):
        findings, _ = run("""
        items = store.column(k, "item")
        flat = np.ascontiguousarray(items)
        """, path=self.DATA_PATH, select=["GL008"])
        assert rule_ids(findings) == ["GL008"]

    def test_sliced_window_clean(self):
        # Converting a slice is the sanctioned idiom: the copy is O(window).
        findings, _ = run("""
        col = np.load(path, mmap_mode="r")
        window = np.asarray(col[start:stop])
        """, path=self.DATA_PATH, select=["GL008"])
        assert findings == []

    def test_plain_load_clean(self):
        # Without mmap_mode, np.load already returns a resident array.
        findings, _ = run("""
        col = np.load(path)
        dense = np.asarray(col)
        """, path=self.DATA_PATH, select=["GL008"])
        assert findings == []

    def test_non_data_files_out_of_scope(self):
        findings, _ = run("""
        col = np.load(path, mmap_mode="r")
        dense = np.asarray(col)
        """, path="src/repro/io.py", select=["GL008"])
        assert findings == []

    def test_suppression_applies(self):
        findings, suppressed = run("""
        col = store.column(k, "user")
        dense = np.asarray(col)  # gradlint: disable=GL008 — tiny index col
        """, path=self.DATA_PATH, select=["GL008"])
        assert findings == []
        assert suppressed == 1


class TestSuppression:
    def test_inline_disable(self):
        findings, suppressed = run("np.random.seed(0)  # gradlint: disable=GL004 — fixture")
        assert findings == []
        assert suppressed == 1

    def test_disable_next_skips_comment_lines(self):
        findings, suppressed = run("""
        # gradlint: disable-next=GL004 — a justification that is long
        # enough to span a second comment line before the statement.
        np.random.seed(0)
        """)
        assert findings == []
        assert suppressed == 1

    def test_disable_file(self):
        findings, suppressed = run("""
        # gradlint: disable-file=GL004 — generated fixture module
        np.random.seed(0)
        np.random.randn(2)
        """)
        assert findings == []
        assert suppressed == 2

    def test_bare_disable_suppresses_all_rules_on_line(self):
        findings, _ = run("np.random.seed(0)  # gradlint: disable")
        assert findings == []

    def test_unrelated_rule_not_suppressed(self):
        findings, _ = run("np.random.seed(0)  # gradlint: disable=GL005")
        assert rule_ids(findings) == ["GL004"]


class TestEngine:
    def test_select_restricts_rules(self):
        source = """
        np.random.seed(0)
        try:
            risky()
        except:
            pass
        """
        findings, _ = run(source, select=["GL005"])
        assert rule_ids(findings) == ["GL005"]
        findings, _ = run(source, ignore=["GL005"])
        assert rule_ids(findings) == ["GL004"]

    def test_syntax_error_reported_not_raised(self):
        findings, _ = run("def broken(:\n    pass")
        assert rule_ids(findings) == ["GL000"]

    def test_discover_skips_hidden_and_pycache(self, tmp_path):
        (tmp_path / "keep.py").write_text("x = 1\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "skip.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "skip.py").write_text("x = 1\n")
        files = discover_files([str(tmp_path)])
        assert [os.path.basename(f) for f in files] == ["keep.py"]


class TestRepoIsClean:
    """Acceptance criterion: the shipped tree lints clean."""

    def test_src_and_examples_lint_clean(self):
        report = lint_paths([os.path.join(REPO_ROOT, "src"),
                             os.path.join(REPO_ROOT, "examples")])
        assert report.files_checked > 70
        messages = [f.render() for f in report.findings]
        assert messages == []
        # The intentional detaches/seed-writes are suppressed, not hidden.
        # (The fused masked_softmax kernel retired one former GL002 site.)
        assert report.suppressed >= 4
