"""Seeded lock-order inversion, detected statically (CL004) and at runtime.

Two methods acquire the same pair of locks in opposite orders — the
classic deadlock precondition.  The attribute names deliberately avoid
"lock"-ish tokens so detection must come from class-level lock ownership
(the ``threading.Lock()`` factory assignments), not name heuristics.

This module is lint *fixture data*: it is imported by the tests and also
fed to the lint engine as source, so it must stay syntactically importable
and must keep exactly one inversion (between ``_alpha`` and ``_beta``).
"""

import threading


class InvertedPair:
    """Owns two locks; ``ab()`` and ``ba()`` nest them in opposite orders."""

    def __init__(self):
        self._alpha = threading.Lock()
        self._beta = threading.Lock()
        self._value = 0

    def ab(self):
        with self._alpha:
            with self._beta:
                self._value += 1
        return self._value

    def ba(self):
        with self._beta:
            with self._alpha:
                self._value -= 1
        return self._value
