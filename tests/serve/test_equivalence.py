"""Served scores must reproduce offline ``score_samples`` / ``recommend``.

This is the subsystem's acceptance bar: for every servable model class the
online path (incremental sessions + micro-batched scoring) returns the same
ranking the offline evaluator would, and checkpoints round-trip through
``repro.io`` without drifting a single score.
"""

import numpy as np
import pytest

from repro.data.interactions import EvalSample
from repro.exp import ALL_MODEL_NAMES, BenchmarkSettings, build_model
from repro.io import load_model, save_model
from repro.serve import SessionStore, build_artifacts, score_views
from tests.serve.conftest import random_histories

TRAINED_FIXTURES = ["served_causer", "served_lstm_causer", "served_gru4rec"]

#: Every registered class except Pop (intentionally not serializable).
SERVABLE_NAMES = [name for name in ALL_MODEL_NAMES if name != "Pop"]


def _feed(client, histories):
    for user, baskets in histories.items():
        for basket in baskets:
            status, _ = client.post("/v1/events",
                                    {"user_id": user, "basket": list(basket)})
            assert status == 200


def _offline_samples(histories):
    return [EvalSample(user_id=user, history=baskets, target=())
            for user, baskets in histories.items()]


@pytest.mark.parametrize("fixture_name", TRAINED_FIXTURES)
class TestServedMatchesOffline:
    def test_raw_scores_allclose(self, fixture_name, request):
        model = request.getfixturevalue(fixture_name)
        artifacts = build_artifacts(model, generation=1)
        histories = random_histories(seed=11, num_users=6, num_steps=5,
                                     num_items=model.num_items)
        store = SessionStore()
        for user, baskets in histories.items():
            for basket in baskets:
                store.append_event(user, basket, artifacts)
        views = [store.view(user, artifacts) for user in histories]
        served = np.asarray(score_views(artifacts, views))
        offline = model.score_samples(_offline_samples(histories))
        # Column 0 is padding (offline masks it to -inf); compare the rest.
        np.testing.assert_allclose(served[:, 1:], offline[:, 1:],
                                   rtol=1e-9, atol=1e-9)

    def test_topz_through_http(self, fixture_name, request, make_app):
        model = request.getfixturevalue(fixture_name)
        _, client = make_app(model)
        histories = random_histories(seed=13, num_users=5, num_steps=4,
                                     num_items=model.num_items)
        _feed(client, histories)
        for user, baskets in histories.items():
            status, body = client.post("/v1/recommend",
                                       {"user_id": user, "z": 5})
            assert status == 200 and body["source"] == "model"
            offline = model.recommend(
                [EvalSample(user_id=user, history=baskets, target=())],
                z=5)[0]
            assert body["items"] == offline

    def test_explicit_history_request(self, fixture_name, request, make_app):
        model = request.getfixturevalue(fixture_name)
        _, client = make_app(model)
        history = [[3], [7, 9], [2]]
        status, body = client.post(
            "/v1/recommend", {"user_id": 2, "history": history, "z": 5})
        assert status == 200 and body["source"] == "model"
        sample = EvalSample(user_id=2,
                            history=tuple(tuple(b) for b in history),
                            target=())
        assert body["items"] == model.recommend([sample], z=5)[0]


class TestWindowing:
    def test_long_session_matches_offline_truncation(self, served_causer,
                                                     make_app):
        """Sessions keep the trailing window; padding truncates identically."""
        _, client = make_app(served_causer)
        steps = served_causer.config.max_history + 3
        baskets = [(step % served_causer.num_items + 1,)
                   for step in range(steps)]
        _feed(client, {8: baskets})
        _, body = client.post("/v1/recommend", {"user_id": 8, "z": 5})
        offline = served_causer.recommend(
            [EvalSample(user_id=8, history=tuple(baskets), target=())],
            z=5)[0]
        assert body["items"] == offline


class TestHotSwapEquivalence:
    def test_swap_matches_new_model_offline(self, served_causer,
                                            served_gru4rec, make_app):
        app, client = make_app(served_causer)
        histories = random_histories(seed=17, num_users=3, num_steps=4,
                                     num_items=served_causer.num_items)
        _feed(client, histories)
        app.install_model(served_gru4rec)
        for user, baskets in histories.items():
            _, body = client.post("/v1/recommend", {"user_id": user, "z": 5})
            offline = served_gru4rec.recommend(
                [EvalSample(user_id=user, history=baskets, target=())],
                z=5)[0]
            assert body["items"] == offline


@pytest.mark.parametrize("name", SERVABLE_NAMES)
class TestEveryRegisteredClassServes:
    def test_roundtrip_then_serve(self, name, tiny_dataset, tmp_path,
                                  make_app):
        settings = BenchmarkSettings(embedding_dim=8, hidden_dim=8,
                                     max_history=8, quick=True)
        model = build_model(name, tiny_dataset, settings)
        path = tmp_path / "model.npz"
        save_model(model, path)
        restored = load_model(path)

        sample = EvalSample(user_id=3, history=((2,), (5, 7), (4,)),
                            target=())
        np.testing.assert_allclose(restored.score_samples([sample]),
                                   model.score_samples([sample]),
                                   rtol=0, atol=1e-12)

        app, client = make_app()
        app.load_checkpoint(path)
        _feed(client, {3: sample.history})
        status, body = client.post("/v1/recommend", {"user_id": 3, "z": 5})
        assert status == 200 and body["source"] == "model"
        assert body["items"] == restored.recommend([sample], z=5)[0]
