"""Serve-suite fixtures: small trained models and app factories."""

import numpy as np
import pytest

from repro.core import Causer, CauserConfig
from repro.models import GRU4Rec, TrainConfig
from repro.serve import InProcessClient, ServeApp


@pytest.fixture(scope="package")
def served_causer(tiny_dataset, tiny_split):
    """A trained GRU Causer in the serving-friendly shared filtering mode."""
    config = CauserConfig(embedding_dim=8, hidden_dim=8, num_epochs=2,
                          batch_size=64, num_clusters=4, epsilon=0.2,
                          eta=0.5, seed=0, max_history=8)
    model = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                   tiny_dataset.features, config)
    model.fit(tiny_split.train)
    return model


@pytest.fixture(scope="package")
def served_lstm_causer(tiny_dataset, tiny_split):
    config = CauserConfig(embedding_dim=8, hidden_dim=8, num_epochs=1,
                          batch_size=64, num_clusters=4, epsilon=0.2,
                          eta=0.5, seed=1, max_history=8, cell_type="lstm")
    model = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                   tiny_dataset.features, config)
    model.fit(tiny_split.train)
    return model


@pytest.fixture(scope="package")
def served_gru4rec(tiny_dataset, tiny_split):
    config = TrainConfig(embedding_dim=8, hidden_dim=8, num_epochs=1,
                         batch_size=64, seed=0, max_history=8)
    model = GRU4Rec(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                    config)
    model.fit(tiny_split.train)
    return model


@pytest.fixture
def make_app():
    """Factory building (ServeApp, InProcessClient) pairs, closed on exit."""
    apps = []

    def _make(model=None, **kwargs):
        kwargs.setdefault("max_wait_ms", 0.5)
        app = ServeApp(**kwargs)
        if model is not None:
            app.install_model(model)
        apps.append(app)
        return app, InProcessClient(app)

    yield _make
    for app in apps:
        app.close()


def random_histories(seed, num_users, num_steps, num_items, max_basket=2):
    """Deterministic per-user histories of small baskets."""
    rng = np.random.default_rng(seed)
    histories = {}
    for user in range(num_users):
        baskets = []
        for _ in range(num_steps):
            width = int(rng.integers(1, max_basket + 1))
            baskets.append(tuple(
                int(i) for i in rng.integers(1, num_items + 1, size=width)))
        histories[user] = tuple(baskets)
    return histories
