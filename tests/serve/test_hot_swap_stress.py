"""Real-thread stress test: hot swaps under concurrent traffic + threadsan.

Reader threads drive ``/v1/events`` and ``/v1/recommend`` through the
:class:`InProcessClient` while a writer thread swaps checkpoint
generations back and forth.  With the runtime thread sanitizer
instrumenting every serving lock and the generation shadow-checker armed,
the assertions are:

* every request succeeds (no 500s under concurrent swapping),
* no lost session updates — each user is owned by exactly one event
  thread, so the ``session_length`` echoed for that user's k-th event is
  deterministic regardless of interleaving with swaps,
* generations observed by each thread never move backwards (no torn
  reads across the swap), and
* ``threadsan`` reports **zero** findings.

The long-hold threshold is deliberately generous: scoring a batch while
another thread swaps artifacts is allowed to be slow on CI machines; this
test polices correctness, not latency.
"""

import threading

from repro.analysis import threadsan

EVENT_THREADS = 3
EVENTS_PER_USER = 30
RECOMMEND_THREADS = 2
RECOMMENDS_PER_THREAD = 60
SWAPS = 12


def test_concurrent_hot_swap_stress(served_causer, served_gru4rec, make_app):
    app, client = make_app(served_causer, max_wait_ms=0.2)
    num_items = min(served_causer.num_items, served_gru4rec.num_items)
    failures = []
    start = threading.Barrier(EVENT_THREADS + RECOMMEND_THREADS + 1)

    def eventer(thread_id):
        # Each thread owns a disjoint user id, so session_length is
        # deterministic for it: min(k, max_history truncation never
        # shrinks len(events) below k while k <= max_history... the
        # store truncates events to the model window, so expect
        # min(k, window) once k exceeds it.
        user_id = 100 + thread_id
        start.wait(timeout=30)
        window = served_causer.config.max_history
        for k in range(1, EVENTS_PER_USER + 1):
            basket = [1 + (thread_id * 7 + k) % num_items]
            status, body = client.post(
                "/v1/events", {"user_id": user_id, "basket": basket})
            if status != 200:
                failures.append(f"event {status}: {body}")
                return
            expected = min(k, window)
            if body["session_length"] != expected:
                failures.append(
                    f"lost update for user {user_id}: event #{k} echoed "
                    f"session_length={body['session_length']}, "
                    f"expected {expected}")
                return

    def recommender(thread_id):
        start.wait(timeout=30)
        last_generation = 0
        for k in range(RECOMMENDS_PER_THREAD):
            user_id = 100 + (thread_id + k) % EVENT_THREADS
            status, body = client.post(
                "/v1/recommend", {"user_id": user_id, "z": 3})
            if status != 200:
                failures.append(f"recommend {status}: {body}")
                return
            generation = body["generation"]
            if generation is None or generation < last_generation:
                failures.append(
                    f"generation moved backwards on one reader: "
                    f"{last_generation} -> {generation}")
                return
            last_generation = generation
            if not body["items"]:
                failures.append(f"empty recommendation: {body}")
                return

    def swapper():
        start.wait(timeout=30)
        for k in range(SWAPS):
            model = served_gru4rec if k % 2 else served_causer
            app.install_model(model)

    with threadsan(long_hold_ms=2000.0) as san:
        san.instrument_app(app)
        threads = ([threading.Thread(target=eventer, args=(i,), daemon=True)
                    for i in range(EVENT_THREADS)]
                   + [threading.Thread(target=recommender, args=(i,),
                                       daemon=True)
                      for i in range(RECOMMEND_THREADS)]
                   + [threading.Thread(target=swapper, daemon=True)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "stress thread wedged"
        assert failures == []
        # The batcher worker holds proxied locks; stop it before restore.
        app.close()
        assert san.findings == [], san.render_report()

    # After restore the app serves normally with the original locks.
    status, body = client.get("/healthz")
    assert status == 200
    assert body["status"] == "ok"


def test_ivf_hot_swap_stress(served_causer, served_gru4rec, make_app):
    """Hot swaps rebuilding the IVF index mid-traffic under full threadsan.

    The swapper alternates model classes, so every install retrains the
    coarse quantizer and republishes a fresh :class:`RetrievalArtifact`
    inside the new bundle.  Readers must never observe a mixed-generation
    (index, embedding) pair — asserted structurally (the index rides
    inside the generation-counted bundle) and dynamically (the defensive
    ``serve_retrieval_generation_mismatch_total`` counter stays absent),
    with per-thread monotone generations and zero sanitizer findings.
    """
    from repro.retrieval import RetrievalConfig

    config = RetrievalConfig(mode="ivf", shortlist=10, nprobe=2,
                             n_clusters=4, seed=0)
    app, client = make_app(served_causer, max_wait_ms=0.2, retrieval=config)
    num_items = min(served_causer.num_items, served_gru4rec.num_items)
    failures = []
    start = threading.Barrier(EVENT_THREADS + RECOMMEND_THREADS + 1)

    def eventer(thread_id):
        user_id = 200 + thread_id
        start.wait(timeout=30)
        for k in range(1, EVENTS_PER_USER + 1):
            basket = [1 + (thread_id * 5 + k) % num_items]
            status, body = client.post(
                "/v1/events", {"user_id": user_id, "basket": basket})
            if status != 200:
                failures.append(f"event {status}: {body}")
                return

    def recommender(thread_id):
        start.wait(timeout=30)
        last_generation = 0
        for k in range(RECOMMENDS_PER_THREAD):
            user_id = 200 + (thread_id + k) % EVENT_THREADS
            status, body = client.post(
                "/v1/recommend", {"user_id": user_id, "z": 3})
            if status != 200:
                failures.append(f"recommend {status}: {body}")
                return
            generation = body["generation"]
            if generation is None or generation < last_generation:
                failures.append(
                    f"generation moved backwards on one reader: "
                    f"{last_generation} -> {generation}")
                return
            last_generation = generation
            if body["source"] == "model" and body.get("retrieval") not in (
                    "ivf", "exact"):
                failures.append(f"unlabeled retrieval source: {body}")
                return

    def swapper():
        start.wait(timeout=30)
        for k in range(SWAPS):
            model = served_gru4rec if k % 2 else served_causer
            artifacts = app.install_model(model)
            if artifacts.retrieval is None:
                failures.append(
                    f"swap #{k} published no retrieval artifact")
                return
            if artifacts.retrieval.generation != artifacts.generation:
                failures.append(
                    f"swap #{k} published a mixed-generation pair: index "
                    f"gen {artifacts.retrieval.generation}, bundle gen "
                    f"{artifacts.generation}")
                return

    with threadsan(long_hold_ms=2000.0) as san:
        san.instrument_app(app)
        threads = ([threading.Thread(target=eventer, args=(i,), daemon=True)
                    for i in range(EVENT_THREADS)]
                   + [threading.Thread(target=recommender, args=(i,),
                                       daemon=True)
                      for i in range(RECOMMEND_THREADS)]
                   + [threading.Thread(target=swapper, daemon=True)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "stress thread wedged"
        assert failures == []
        app.close()
        assert san.findings == [], san.render_report()

    # The defensive mismatch counter must never have fired: the metric is
    # only created on first increment, so its absence is the assertion.
    status, text = client.get("/metrics")
    assert status == 200
    assert "serve_retrieval_generation_mismatch_total" not in text


def test_swap_during_traffic_preserves_per_user_history(served_causer,
                                                        served_lstm_causer,
                                                        make_app):
    """Events appended across a swap land in one coherent session whose
    state is rebuilt under the new generation (no torn adoption)."""
    app, client = make_app(served_causer, max_wait_ms=0.0)
    with threadsan(long_hold_ms=2000.0) as san:
        san.instrument_app(app)
        for k in range(1, 5):
            status, body = client.post(
                "/v1/events", {"user_id": 9, "basket": [k]})
            assert status == 200 and body["session_length"] == k
        app.install_model(served_lstm_causer)
        for k in range(5, 8):
            status, body = client.post(
                "/v1/events", {"user_id": 9, "basket": [k]})
            assert status == 200 and body["session_length"] == k
        status, body = client.post("/v1/recommend", {"user_id": 9})
        assert status == 200
        assert body["source"] == "model"
        assert body["generation"] == 2
        app.close()
        assert san.findings == [], san.render_report()
