"""Metrics registry: counters, histograms, Prometheus export."""

import math

import numpy as np

from repro.serve import MetricsRegistry
from repro.serve.metrics import _Histogram, _series_key


class TestSeriesKey:
    def test_bare_and_labeled(self):
        assert _series_key("hits", None) == "hits"
        key = _series_key("hits", {"b": "2", "a": "1"})
        assert key == 'hits{a="1",b="2"}'  # labels sorted → stable identity


class TestCounters:
    def test_inc_and_read(self):
        reg = MetricsRegistry()
        reg.inc("requests")
        reg.inc("requests", by=2.0)
        assert reg.counter_value("requests") == 3.0
        assert reg.counter_value("missing") == 0.0

    def test_labeled_series_are_independent(self):
        reg = MetricsRegistry()
        reg.inc("requests", {"endpoint": "/a"})
        reg.inc("requests", {"endpoint": "/b"}, by=4)
        assert reg.counter_value("requests", {"endpoint": "/a"}) == 1.0
        assert reg.counter_value("requests", {"endpoint": "/b"}) == 4.0


class TestHistograms:
    def test_percentiles_ordered(self):
        reg = MetricsRegistry()
        rng = np.random.default_rng(0)
        for value in rng.exponential(size=500):
            reg.observe("latency", value)
        pct = reg.percentiles("latency")
        assert set(pct) == {"p50", "p95", "p99"}
        assert pct["p50"] < pct["p95"] < pct["p99"]
        assert reg.observation_count("latency") == 500

    def test_empty_histogram_is_nan(self):
        reg = MetricsRegistry()
        assert math.isnan(reg.percentile("latency", 50))

    def test_ring_buffer_keeps_exact_count_and_sum(self):
        hist = _Histogram(window=4)
        for value in range(10):
            hist.observe(float(value))
        assert hist.count == 10
        assert hist.total == sum(range(10))
        assert hist.filled().size == 4  # only the window is retained


class TestRender:
    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.inc("serve_requests_total", {"endpoint": "/v1/recommend"})
        for value in (0.001, 0.002, 0.003):
            reg.observe("serve_latency_seconds", value)
        text = reg.render()
        assert "# TYPE serve_requests_total counter" in text
        assert 'serve_requests_total{endpoint="/v1/recommend"} 1' in text
        assert "# TYPE serve_latency_seconds summary" in text
        assert 'serve_latency_seconds{quantile="0.5"}' in text
        assert "serve_latency_seconds_count 3" in text
        assert "serve_latency_seconds_sum 0.006" in text
        assert text.endswith("\n")
