"""Checkpoint registry: artifact precompute, dispatch, hot swap."""

import numpy as np
import pytest

from repro.core import Causer, CauserConfig
from repro.io import save_model
from repro.models import NARM, TrainConfig
from repro.serve import (CausalServingArtifacts, CheckpointRegistry,
                         GRUServingArtifacts, build_artifacts)


class TestBuildArtifacts:
    def test_causer_precompute(self, served_causer):
        art = build_artifacts(served_causer, generation=1)
        assert isinstance(art, CausalServingArtifacts)
        assert art.mode == "incremental"
        matrix = served_causer.item_causal_matrix()
        np.testing.assert_array_equal(art.item_matrix, matrix)
        expected_gate = np.where(matrix > served_causer.config.epsilon,
                                 matrix, 0.0)
        np.testing.assert_array_equal(art.gated_matrix, expected_gate)
        np.testing.assert_array_equal(
            art.hard_clusters, served_causer.clusters.hard_assignments())
        assert art.recurrent.cell_type == "gru"
        assert art.recurrent.track_states
        assert art.recurrent.max_history == served_causer.config.max_history
        assert art.supports_explain

    def test_causer_input_table_matches_model(self, served_causer):
        """The frozen input table equals encode() + free item embeddings."""
        art = build_artifacts(served_causer, generation=1)
        expected = (served_causer.clusters.encode().data
                    + served_causer.item_embedding.weight.data)
        np.testing.assert_allclose(art.recurrent.input_table, expected,
                                   atol=1e-12)

    def test_gru4rec_incremental(self, served_gru4rec):
        art = build_artifacts(served_gru4rec, generation=1)
        assert isinstance(art, GRUServingArtifacts)
        assert art.mode == "incremental"
        assert not art.recurrent.track_states
        assert not art.supports_explain

    def test_strict_causer_falls_back_to_replay(self, tiny_dataset):
        config = CauserConfig(embedding_dim=8, hidden_dim=8, num_clusters=4,
                              filtering_mode="strict", seed=0)
        model = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                       tiny_dataset.features, config)
        art = build_artifacts(model, generation=1)
        assert art.mode == "replay"
        assert art.supports_explain  # still a Causer: /v1/explain works

    def test_attention_model_replays(self, tiny_dataset):
        model = NARM(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                     TrainConfig(embedding_dim=8, hidden_dim=8, seed=0))
        art = build_artifacts(model, generation=1)
        assert art.mode == "replay"
        assert art.recurrent is None


class TestCheckpointRegistry:
    def test_install_bumps_generation(self, served_causer, served_gru4rec):
        registry = CheckpointRegistry()
        assert registry.current() is None
        first = registry.install(served_causer)
        second = registry.install(served_gru4rec)
        assert second.generation == first.generation + 1
        assert registry.current() is second
        registry.clear()
        assert registry.current() is None

    def test_load_from_file(self, served_causer, tmp_path):
        path = tmp_path / "causer.npz"
        save_model(served_causer, path)
        registry = CheckpointRegistry()
        art = registry.load(path)
        assert art.path == str(path)
        assert art.model_class == "Causer"
        np.testing.assert_allclose(art.item_matrix,
                                   served_causer.item_causal_matrix(),
                                   atol=1e-12)


class TestItemMatrixCache:
    def test_cache_hit_returns_same_object(self, served_causer):
        first = served_causer.item_causal_matrix()
        second = served_causer.item_causal_matrix()
        assert first is second
        assert not first.flags.writeable

    def test_cache_invalidated_on_parameter_update(self, served_causer):
        before = served_causer.item_causal_matrix()
        weights = served_causer.graph.weights.data
        original = weights.copy()
        try:
            weights[0, 1] += 0.25
            after = served_causer.item_causal_matrix()
            assert after is not before
            assert not np.array_equal(after, before)
        finally:
            weights[...] = original

    def test_cached_matrix_is_read_only(self, served_causer):
        matrix = served_causer.item_causal_matrix()
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0
