"""Serve-level retrieval contracts.

* ``--retrieval exact`` is the legacy full-scoring path with a label:
  its top-z must be byte-identical to an app with no retrieval config at
  all, for **every** registered model class.
* ``--retrieval ivf`` returns ids that are always a subset of the IVF
  shortlist, never the padding item, and its re-rank is bit-identical to
  full scoring restricted to the same shortlist.
* Replay-mode models (no frozen head) fall back to exact scoring and say
  so in the response.
"""

import numpy as np
import pytest

from repro.cli import build_parser
from repro.exp import BenchmarkSettings, build_model
from repro.retrieval import RetrievalConfig, user_vector
from repro.serve import score_view_candidates, score_views
from tests.serve.conftest import random_histories
from tests.serve.test_equivalence import SERVABLE_NAMES, _feed

IVF_CONFIG = dict(mode="ivf", shortlist=12, nprobe=2, n_clusters=4, seed=0)


def _recommendations(client, histories, z=5):
    out = {}
    for user in histories:
        status, body = client.post("/v1/recommend", {"user_id": user, "z": z})
        assert status == 200
        out[user] = body
    return out


@pytest.mark.parametrize("name", SERVABLE_NAMES)
def test_exact_mode_is_byte_identical_to_legacy(name, tiny_dataset, make_app):
    settings = BenchmarkSettings(embedding_dim=8, hidden_dim=8,
                                 max_history=8, quick=True)
    model = build_model(name, tiny_dataset, settings)
    _, legacy = make_app(model)
    _, exact = make_app(model, retrieval=RetrievalConfig(mode="exact"))
    histories = random_histories(seed=41, num_users=4, num_steps=4,
                                 num_items=model.num_items)
    _feed(legacy, histories)
    _feed(exact, histories)
    legacy_out = _recommendations(legacy, histories)
    exact_out = _recommendations(exact, histories)
    for user in histories:
        assert "retrieval" not in legacy_out[user]
        assert exact_out[user]["retrieval"] == "exact"
        stripped = dict(exact_out[user])
        del stripped["retrieval"]
        assert stripped == legacy_out[user]


@pytest.mark.parametrize("fixture", ["served_causer", "served_gru4rec"])
class TestIVFServe:
    def test_items_subset_of_shortlist_no_padding(self, fixture, request,
                                                  make_app):
        model = request.getfixturevalue(fixture)
        app, client = make_app(model, retrieval=RetrievalConfig(**IVF_CONFIG))
        histories = random_histories(seed=43, num_users=5, num_steps=4,
                                     num_items=model.num_items)
        _feed(client, histories)
        artifacts = app.registry.current()
        assert artifacts.retrieval is not None
        config = artifacts.retrieval.config
        for user, body in _recommendations(client, histories).items():
            assert body["retrieval"] == "ivf"
            view = app.sessions.view(user, artifacts)
            query = user_vector(artifacts, view)
            shortlist = artifacts.retrieval.index.search(
                query, config.shortlist, nprobe=config.nprobe)
            assert set(body["items"]) <= set(int(i) for i in shortlist)
            assert 0 not in body["items"]
            assert all(1 <= i <= model.num_items for i in body["items"])

    def test_rerank_bitwise_matches_full_restriction(self, fixture, request,
                                                     make_app):
        model = request.getfixturevalue(fixture)
        app, client = make_app(model, retrieval=RetrievalConfig(**IVF_CONFIG))
        histories = random_histories(seed=47, num_users=3, num_steps=5,
                                     num_items=model.num_items)
        _feed(client, histories)
        artifacts = app.registry.current()
        config = artifacts.retrieval.config
        for user in histories:
            view = app.sessions.view(user, artifacts)
            query = user_vector(artifacts, view)
            shortlist = artifacts.retrieval.index.search(
                query, config.shortlist, nprobe=config.nprobe)
            restricted = score_view_candidates(artifacts, view, shortlist)
            full = np.asarray(score_views(artifacts, [view]))[0]
            assert np.array_equal(restricted, full[shortlist])


def test_replay_model_falls_back_to_exact(tiny_dataset, make_app):
    settings = BenchmarkSettings(embedding_dim=8, hidden_dim=8,
                                 max_history=8, quick=True)
    model = build_model("NARM", tiny_dataset, settings)
    app, client = make_app(model, retrieval=RetrievalConfig(**IVF_CONFIG))
    artifacts = app.registry.current()
    assert artifacts.retrieval is None  # no frozen head -> no tower
    histories = random_histories(seed=53, num_users=2, num_steps=3,
                                 num_items=model.num_items)
    _feed(client, histories)
    for body in _recommendations(client, histories).values():
        assert body["source"] == "model"
        assert body["retrieval"] == "exact"


def test_ivf_metrics_exported(served_causer, make_app):
    app, client = make_app(served_causer,
                           retrieval=RetrievalConfig(**IVF_CONFIG))
    histories = random_histories(seed=59, num_users=3, num_steps=3,
                                 num_items=served_causer.num_items)
    _feed(client, histories)
    _recommendations(client, histories)
    status, text = client.get("/metrics")
    assert status == 200
    assert 'serve_retrieval_requests_total{mode="ivf"}' in text
    assert 'serve_retrieval_stage_seconds' in text
    assert ("serve_shortlist_hit_total" in text
            or "serve_shortlist_miss_total" in text)
    assert "serve_retrieval_generation_mismatch_total" not in text


def test_healthz_reports_retrieval(served_causer, make_app):
    _, client = make_app(served_causer,
                         retrieval=RetrievalConfig(**IVF_CONFIG))
    status, body = client.get("/healthz")
    assert status == 200
    described = body["checkpoint"]["retrieval"]
    assert described["mode"] == "ivf"
    assert described["shortlist"] == IVF_CONFIG["shortlist"]
    assert described["n_clusters"] == IVF_CONFIG["n_clusters"]


def test_cli_accepts_retrieval_flags():
    parser = build_parser()
    args = parser.parse_args(["serve", "--retrieval", "ivf",
                              "--shortlist", "64", "--nprobe", "4"])
    assert args.retrieval == "ivf"
    assert args.shortlist == 64 and args.nprobe == 4
    assert parser.parse_args(["serve"]).retrieval is None
    with pytest.raises(SystemExit):
        parser.parse_args(["serve", "--retrieval", "bogus"])


def test_retrieval_config_validation():
    with pytest.raises(ValueError):
        RetrievalConfig(mode="annoy")
    with pytest.raises(ValueError):
        RetrievalConfig(shortlist=0)
    with pytest.raises(ValueError):
        RetrievalConfig(nprobe=0)
    with pytest.raises(ValueError):
        RetrievalConfig(n_clusters=0)
