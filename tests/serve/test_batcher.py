"""Micro-batcher: coalescing, ordering, failure isolation, shutdown."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import MetricsRegistry, MicroBatcher


class TestMicroBatcher:
    def test_results_match_payloads(self):
        batcher = MicroBatcher(lambda items: [x * 2 for x in items],
                               max_batch_size=4, max_wait_ms=5.0)
        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(batcher.submit, range(20)))
            assert results == [x * 2 for x in range(20)]
        finally:
            batcher.close()

    def test_concurrent_submits_coalesce(self):
        batch_sizes = []
        barrier = threading.Barrier(6)

        def score(items):
            batch_sizes.append(len(items))
            return items

        batcher = MicroBatcher(score, max_batch_size=8, max_wait_ms=50.0)

        def submit(x):
            barrier.wait()  # release all submitters at once
            return batcher.submit(x)

        try:
            with ThreadPoolExecutor(max_workers=6) as pool:
                list(pool.map(submit, range(6)))
            assert max(batch_sizes) > 1
            assert sum(batch_sizes) == 6
        finally:
            batcher.close()

    def test_max_batch_size_respected(self):
        batch_sizes = []

        def slow_score(items):
            batch_sizes.append(len(items))
            time.sleep(0.02)  # let the queue build up behind the worker
            return items

        batcher = MicroBatcher(slow_score, max_batch_size=3, max_wait_ms=50.0)
        try:
            with ThreadPoolExecutor(max_workers=10) as pool:
                list(pool.map(batcher.submit, range(10)))
            assert max(batch_sizes) <= 3
        finally:
            batcher.close()

    def test_error_propagates_to_submitter(self):
        calls = []

        def flaky(items):
            calls.append(list(items))
            if len(calls) == 1:
                raise RuntimeError("scorer exploded")
            return items

        batcher = MicroBatcher(flaky, max_batch_size=4, max_wait_ms=1.0)
        try:
            with pytest.raises(RuntimeError, match="scorer exploded"):
                batcher.submit(1)
            assert batcher.submit(2) == 2  # batcher survives the failure
        finally:
            batcher.close()

    def test_result_count_mismatch_is_an_error(self):
        batcher = MicroBatcher(lambda items: [], max_batch_size=4,
                               max_wait_ms=1.0)
        try:
            with pytest.raises(RuntimeError, match="results"):
                batcher.submit(1)
        finally:
            batcher.close()

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(lambda items: items)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(1)

    def test_metrics_recorded(self):
        metrics = MetricsRegistry()
        batcher = MicroBatcher(lambda items: items, max_wait_ms=1.0,
                               metrics=metrics)
        try:
            batcher.submit("x")
        finally:
            batcher.close()
        assert metrics.observation_count("serve_batch_size") == 1
        assert metrics.observation_count("serve_batch_wait_seconds") == 1

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda items: items, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda items: items, max_wait_ms=-1.0)
