"""Session-store behaviour: incremental state, windowing, LRU, hot swap."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.fused import fused_gru_step, fused_lstm_step
from repro.serve.sessions import (DEGRADED_MAX_EVENTS, RecurrentServingParams,
                                  SessionState, SessionStore, gru_step,
                                  lstm_step)


def _params(cell_type="gru", num_items=12, dim=4, hidden=5, max_history=6,
            seed=0, track_states=False):
    rng = np.random.default_rng(seed)
    table = rng.normal(size=(num_items + 1, dim)) * 0.3
    if cell_type == "gru":
        return RecurrentServingParams(
            cell_type="gru", input_table=table,
            w_ih=rng.normal(size=(3 * hidden, dim)) * 0.2,
            w_hh=rng.normal(size=(3 * hidden, hidden)) * 0.2,
            b_ih=rng.normal(size=3 * hidden) * 0.1,
            b_hh=rng.normal(size=3 * hidden) * 0.1, bias=None,
            init_h=lambda user: np.zeros((1, hidden)),
            max_history=max_history, track_states=track_states)
    return RecurrentServingParams(
        cell_type="lstm", input_table=table,
        w_ih=rng.normal(size=(4 * hidden, dim)) * 0.2,
        w_hh=rng.normal(size=(4 * hidden, hidden)) * 0.2,
        b_ih=None, b_hh=None, bias=rng.normal(size=4 * hidden) * 0.1,
        init_h=lambda user: np.zeros((1, hidden)),
        max_history=max_history, track_states=track_states)


def _artifacts(params, generation=1):
    return SimpleNamespace(generation=generation, recurrent=params)


class TestStepKernelParity:
    """Serving steps must be bitwise-equal to the training fused kernels."""

    def test_gru_step_matches_fused(self):
        params = _params("gru")
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 4))
        h = rng.normal(size=(1, 5))
        served = gru_step(x, h, params.w_ih, params.w_hh,
                          params.b_ih, params.b_hh)
        fused = fused_gru_step(Tensor(x), Tensor(h), Tensor(params.w_ih),
                               Tensor(params.w_hh), Tensor(params.b_ih),
                               Tensor(params.b_hh))
        np.testing.assert_array_equal(served, fused.data)

    def test_lstm_step_matches_fused(self):
        params = _params("lstm")
        rng = np.random.default_rng(4)
        x = rng.normal(size=(1, 4))
        h = rng.normal(size=(1, 5))
        c = rng.normal(size=(1, 5))
        served_h, served_c = lstm_step(x, h, c, params.w_ih, params.w_hh,
                                       params.bias)
        fused_h, fused_c = fused_lstm_step(Tensor(x), Tensor(h), Tensor(c),
                                           Tensor(params.w_ih),
                                           Tensor(params.w_hh),
                                           Tensor(params.bias))
        np.testing.assert_array_equal(served_h, fused_h.data)
        np.testing.assert_array_equal(served_c, fused_c.data)

    def test_keep_false_freezes_state(self):
        """The ε skip rule: keep=False carries the state through untouched."""
        params = _params("gru")
        h = np.random.default_rng(5).normal(size=(1, 5))
        assert gru_step(np.ones((1, 4)), h, params.w_ih, params.w_hh,
                        params.b_ih, params.b_hh, keep=False) is h
        lstm = _params("lstm")
        c = h.copy()
        out_h, out_c = lstm_step(np.ones((1, 4)), h, c, lstm.w_ih,
                                 lstm.w_hh, lstm.bias, keep=False)
        assert out_h is h and out_c is c


@pytest.mark.parametrize("cell_type", ["gru", "lstm"])
class TestIncrementalReplayBitIdentity:
    def test_append_equals_replay(self, cell_type):
        """Event-by-event updates == full replay, to the last bit."""
        params = _params(cell_type, track_states=True)
        events = [(1, 3), (2,), (7, 8), (4,)]
        incremental = SessionState(user_id=2)
        for basket in events:
            incremental.append(basket, params)
        replayed = SessionState(user_id=2, events=list(events))
        replayed.replay(params)
        np.testing.assert_array_equal(incremental.h, replayed.h)
        if cell_type == "lstm":
            np.testing.assert_array_equal(incremental.c, replayed.c)
        np.testing.assert_array_equal(np.asarray(incremental.states),
                                      np.asarray(replayed.states))

    def test_window_overflow_replays_tail(self, cell_type):
        """Past ``max_history`` the oldest event drops and the window replays."""
        params = _params(cell_type, max_history=3)
        session = SessionState(user_id=0)
        all_events = [(i % 12 + 1,) for i in range(7)]
        for basket in all_events:
            session.append(basket, params)
        assert session.events == all_events[-3:]
        fresh = SessionState(user_id=0, events=list(all_events[-3:]))
        fresh.replay(params)
        np.testing.assert_array_equal(session.h, fresh.h)


class TestSessionStore:
    def test_lru_eviction(self):
        params = _params()
        store = SessionStore(capacity=2)
        art = _artifacts(params)
        store.append_event(1, (3,), art)
        store.append_event(2, (4,), art)
        store.append_event(1, (5,), art)   # touch 1 → 2 is now LRU
        store.append_event(3, (6,), art)   # evicts 2
        assert 1 in store and 3 in store and 2 not in store
        assert store.evictions == 1

    def test_degraded_mode_keeps_events_only(self):
        store = SessionStore()
        for i in range(DEGRADED_MAX_EVENTS + 10):
            session = store.append_event(0, (i % 9 + 1,), None)
        assert len(session.events) == DEGRADED_MAX_EVENTS
        assert session.h is None

    def test_hot_swap_resyncs_lazily(self):
        """A generation bump rebuilds state under the new weights on touch."""
        old = _artifacts(_params(seed=0), generation=1)
        new = _artifacts(_params(seed=9), generation=2)
        store = SessionStore()
        events = [(2,), (5,), (7,)]
        for basket in events:
            store.append_event(4, basket, old)
        view = store.view(4, new)
        expected = SessionState(user_id=4, events=list(events))
        expected.replay(new.recurrent)
        np.testing.assert_array_equal(view.last, expected.h)

    def test_view_snapshot_is_decoupled(self):
        params = _params(track_states=True)
        art = _artifacts(params)
        store = SessionStore()
        store.append_event(1, (2,), art)
        view = store.view(1, art)
        before = view.last.copy()
        store.append_event(1, (3,), art)  # advances the live session
        np.testing.assert_array_equal(view.last, before)
        assert view.events == ((2,),)

    def test_ephemeral_view_not_stored(self):
        store = SessionStore()
        view = store.ephemeral_view(7, [(1,), (2,)], _artifacts(_params()))
        assert view.steps == 2
        assert 7 not in store

    def test_drop_and_missing(self):
        store = SessionStore()
        assert store.view(42) is None
        store.append_event(42, (1,), None)
        assert store.drop(42) and not store.drop(42)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SessionStore(capacity=0)
