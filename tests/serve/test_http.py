"""HTTP layer: routes, validation, fallback, explain, real sockets."""

import json
import urllib.request

import pytest

from repro.serve import ServeServer


class TestDegradedMode:
    def test_healthz_degraded(self, make_app):
        _, client = make_app()
        status, body = client.get("/healthz")
        assert status == 200
        assert body["status"] == "degraded"
        assert body["checkpoint"] is None

    def test_popularity_fallback_ranks_observed_events(self, make_app):
        _, client = make_app()
        for _ in range(3):
            client.post("/v1/events", {"user_id": 1, "basket": [7]})
        client.post("/v1/events", {"user_id": 1, "basket": [4]})
        status, body = client.post("/v1/recommend", {"user_id": 99, "z": 2})
        assert status == 200
        assert body["source"] == "popularity"
        assert body["items"][0] == 7  # most frequent first
        assert 0 not in body["items"]  # padding never recommended

    def test_empty_session_falls_back_even_with_model(self, served_causer,
                                                      make_app):
        _, client = make_app(served_causer)
        status, body = client.post("/v1/recommend", {"user_id": 5})
        assert status == 200
        assert body["source"] == "popularity"


class TestValidation:
    def test_missing_user_id(self, make_app):
        _, client = make_app()
        status, body = client.post("/v1/recommend", {})
        assert status == 400
        assert "user_id" in body["error"]

    def test_bad_basket(self, make_app):
        _, client = make_app()
        for basket in ([], [0], ["x"], None):
            status, body = client.post("/v1/events",
                                       {"user_id": 1, "basket": basket})
            assert status == 400

    def test_out_of_catalog_item(self, served_causer, make_app):
        _, client = make_app(served_causer)
        too_big = served_causer.num_items + 1
        status, body = client.post("/v1/events",
                                   {"user_id": 1, "basket": [too_big]})
        assert status == 400
        assert "catalog" in body["error"]

    def test_unknown_path_and_wrong_method(self, make_app):
        _, client = make_app()
        assert client.get("/v1/nope")[0] == 404
        assert client.get("/v1/recommend")[0] == 405
        assert client.request("POST", "/healthz")[0] == 405

    def test_bad_z(self, make_app):
        _, client = make_app()
        status, _ = client.post("/v1/recommend", {"user_id": 1, "z": 0})
        assert status == 400


class TestEventsAndHealth:
    def test_session_length_grows(self, served_causer, make_app):
        app, client = make_app(served_causer)
        for step in range(3):
            status, body = client.post("/v1/events",
                                       {"user_id": 2, "basket": [step + 1]})
            assert status == 200
            assert body["session_length"] == step + 1
        status, body = client.get("/healthz")
        assert body["status"] == "ok"
        assert body["sessions"] == 1
        assert body["checkpoint"]["model_class"] == "Causer"


class TestExplain:
    def test_explain_requires_causer(self, served_gru4rec, make_app):
        _, client = make_app(served_gru4rec)
        status, body = client.post(
            "/v1/explain", {"user_id": 1, "target_item": 2})
        assert status == 409
        assert "Causer" in body["error"]

    def test_explain_without_checkpoint(self, make_app):
        _, client = make_app()
        status, _ = client.post("/v1/explain",
                                {"user_id": 1, "target_item": 2})
        assert status == 409

    def test_explain_top_edges(self, served_causer, make_app):
        _, client = make_app(served_causer)
        history = [[3], [7], [9], [11]]
        status, body = client.post(
            "/v1/explain", {"user_id": 1, "target_item": 5,
                            "history": history, "top": 3})
        assert status == 200
        edges = body["edges"]
        assert len(edges) == 3
        # Ranked by combined score, descending.
        combined = [edge["combined"] for edge in edges]
        assert combined == sorted(combined, reverse=True)
        assert {edge["item"] for edge in edges} <= {3, 7, 9, 11}
        for edge in edges:
            assert set(edge) == {"item", "position", "causal_effect",
                                 "attention", "combined"}

    def test_explain_uses_session_events(self, served_causer, make_app):
        _, client = make_app(served_causer)
        for item in (3, 7):
            client.post("/v1/events", {"user_id": 4, "basket": [item]})
        status, body = client.post(
            "/v1/explain", {"user_id": 4, "target_item": 5})
        assert status == 200
        assert {edge["item"] for edge in body["edges"]} == {3, 7}

    def test_explain_no_session(self, served_causer, make_app):
        _, client = make_app(served_causer)
        status, _ = client.post("/v1/explain",
                                {"user_id": 123, "target_item": 5})
        assert status == 404


class TestMetricsEndpoint:
    def test_prometheus_text(self, served_causer, make_app):
        _, client = make_app(served_causer)
        client.post("/v1/events", {"user_id": 1, "basket": [3]})
        client.post("/v1/recommend", {"user_id": 1})
        client.post("/v1/recommend", {})  # a 400, counted as an error
        status, text = client.get("/metrics")
        assert status == 200
        assert isinstance(text, str)
        assert "# TYPE serve_requests_total counter" in text
        assert 'endpoint="/v1/recommend"' in text
        assert "serve_errors_total" in text
        assert 'serve_request_latency_seconds{quantile="0.99"' in text


class TestHotSwap:
    def test_generation_visible_and_sessions_survive(self, served_causer,
                                                     served_gru4rec,
                                                     make_app):
        app, client = make_app(served_causer)
        client.post("/v1/events", {"user_id": 1, "basket": [3]})
        _, first = client.post("/v1/recommend", {"user_id": 1})
        assert first["model"] == "Causer" and first["generation"] == 1
        app.install_model(served_gru4rec)
        _, second = client.post("/v1/recommend", {"user_id": 1})
        assert second["model"] == "GRU4Rec" and second["generation"] == 2
        # The session's events survived the swap and still score.
        assert second["source"] == "model"


class TestRealHTTP:
    def test_end_to_end_over_sockets(self, served_causer, make_app):
        app, _ = make_app(served_causer)
        server = ServeServer(app, host="127.0.0.1", port=0).start()
        host, port = server.address
        base = f"http://{host}:{port}"
        try:
            with urllib.request.urlopen(base + "/healthz") as resp:
                assert resp.status == 200
                assert json.loads(resp.read())["status"] == "ok"
            payload = json.dumps({"user_id": 1, "basket": [3]}).encode()
            req = urllib.request.Request(
                base + "/v1/events", data=payload,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(req) as resp:
                assert json.loads(resp.read())["session_length"] == 1
            payload = json.dumps({"user_id": 1}).encode()
            req = urllib.request.Request(
                base + "/v1/recommend", data=payload,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(req) as resp:
                body = json.loads(resp.read())
                assert body["source"] == "model"
                assert len(body["items"]) == 5
            bad = urllib.request.Request(base + "/v1/recommend",
                                         data=b"not json{")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(bad)
            assert excinfo.value.code == 400
        finally:
            server.shutdown()
