"""Tests for the Table IV baseline models on the shared interface."""

import numpy as np
import pytest

from repro.eval import evaluate_model
from repro.models import (BPR, FPMC, GRU4Rec, MMSARec, NARM, NCF,
                          PopularityRecommender, SASRec, STAMP, TrainConfig,
                          VTRNN)

QUICK = TrainConfig(embedding_dim=8, hidden_dim=8, num_epochs=2,
                    batch_size=64, max_history=8, seed=0)


def build(name, dataset):
    num_users = dataset.corpus.num_users
    num_items = dataset.num_items
    builders = {
        "Pop": lambda: PopularityRecommender(num_items),
        "BPR": lambda: BPR(num_users, num_items, QUICK),
        "NCF": lambda: NCF(num_users, num_items, QUICK),
        "FPMC": lambda: FPMC(num_users, num_items, QUICK),
        "GRU4Rec": lambda: GRU4Rec(num_users, num_items, QUICK),
        "NARM": lambda: NARM(num_users, num_items, QUICK),
        "STAMP": lambda: STAMP(num_users, num_items, QUICK),
        "SASRec": lambda: SASRec(num_users, num_items, QUICK),
        "VTRNN": lambda: VTRNN(num_users, num_items, dataset.features, QUICK),
        "MMSARec": lambda: MMSARec(num_users, num_items, dataset.features,
                                   QUICK),
    }
    return builders[name]()


ALL = ["Pop", "BPR", "NCF", "FPMC", "GRU4Rec", "NARM", "STAMP", "SASRec",
       "VTRNN", "MMSARec"]


@pytest.fixture(scope="module")
def fitted_models(tiny_dataset, tiny_split):
    models = {}
    for name in ALL:
        model = build(name, tiny_dataset)
        models[name] = (model, model.fit(tiny_split.train))
    return models


class TestSharedInterface:
    @pytest.mark.parametrize("name", ALL)
    def test_fit_records_losses(self, fitted_models, name):
        _, fit = fitted_models[name]
        assert len(fit.epoch_losses) >= 1
        assert np.isfinite(fit.final_loss)

    @pytest.mark.parametrize("name", ALL)
    def test_score_shape(self, fitted_models, tiny_dataset, tiny_split, name):
        model, _ = fitted_models[name]
        scores = model.score_samples(tiny_split.test[:4])
        assert scores.shape == (4, tiny_dataset.num_items + 1)
        assert np.isfinite(scores).all()

    @pytest.mark.parametrize("name", ALL)
    def test_recommend_valid_items(self, fitted_models, tiny_split, name):
        model, _ = fitted_models[name]
        rankings = model.recommend(tiny_split.test[:4], z=5)
        for ranking in rankings:
            assert len(ranking) == 5
            assert len(set(ranking)) == 5
            assert 0 not in ranking  # padding never recommended

    @pytest.mark.parametrize("name", ALL)
    def test_recommend_respects_scores(self, fitted_models, tiny_split, name):
        model, _ = fitted_models[name]
        scores = model.score_samples(tiny_split.test[:2])
        rankings = model.recommend(tiny_split.test[:2], z=3)
        for row, ranking in enumerate(rankings):
            row_scores = scores[row].copy()
            row_scores[0] = -np.inf
            best = int(np.argmax(row_scores))
            assert ranking[0] == best


class TestTrainingImproves:
    @pytest.mark.parametrize("name", ["GRU4Rec", "NARM", "STAMP", "NCF"])
    def test_loss_decreases(self, tiny_dataset, tiny_split, name):
        cfg = TrainConfig(embedding_dim=8, hidden_dim=8, num_epochs=4,
                          batch_size=64, seed=0)
        if name == "NCF":
            model = NCF(tiny_dataset.corpus.num_users,
                        tiny_dataset.num_items, cfg)
        else:
            cls = {"GRU4Rec": GRU4Rec, "NARM": NARM, "STAMP": STAMP}[name]
            model = cls(tiny_dataset.corpus.num_users,
                        tiny_dataset.num_items, cfg)
        fit = model.fit(tiny_split.train)
        assert fit.epoch_losses[-1] < fit.epoch_losses[0]

    def test_sequential_beats_random_ranking(self, tiny_dataset, tiny_split):
        cfg = TrainConfig(embedding_dim=16, hidden_dim=16, num_epochs=6,
                          batch_size=64, seed=0)
        model = GRU4Rec(tiny_dataset.corpus.num_users,
                        tiny_dataset.num_items, cfg)
        model.fit(tiny_split.train)
        result = evaluate_model(model, tiny_split.test, z=5)
        random_hit = 5 / tiny_dataset.num_items
        assert result.mean("hit") > 2 * random_hit


class TestModelSpecifics:
    def test_pop_scores_are_counts(self, tiny_dataset, tiny_split):
        model = PopularityRecommender(tiny_dataset.num_items)
        model.fit(tiny_split.train)
        scores = model.score_samples(tiny_split.test[:2])
        np.testing.assert_allclose(scores[0], scores[1])
        counts = tiny_split.train.item_popularity()
        np.testing.assert_allclose(scores[0], counts)

    def test_bpr_personalizes(self, fitted_models, tiny_split):
        model, _ = fitted_models["BPR"]
        scores = model.score_samples(tiny_split.test[:2])
        assert not np.allclose(scores[0], scores[1])

    def test_fpmc_uses_last_basket(self, fitted_models, tiny_split):
        model, _ = fitted_models["FPMC"]
        a = tiny_split.test[0]
        from repro.data import EvalSample
        b = EvalSample(user_id=a.user_id, history=a.history[:-1],
                       target=a.target)
        if not b.history:
            pytest.skip("history too short for this sample")
        scores_a = model.score_samples([a])
        scores_b = model.score_samples([b])
        assert not np.allclose(scores_a, scores_b)

    def test_vtrnn_feature_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            VTRNN(10, tiny_dataset.num_items,
                  tiny_dataset.features[:-2], QUICK)

    def test_mmsarec_feature_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            MMSARec(10, tiny_dataset.num_items,
                    tiny_dataset.features[:-2], QUICK)

    def test_bpr_empty_corpus_rejected(self, tiny_dataset):
        from repro.data import SequenceCorpus
        model = BPR(5, tiny_dataset.num_items, QUICK)
        with pytest.raises(ValueError):
            model.fit(SequenceCorpus(num_items=tiny_dataset.num_items))
