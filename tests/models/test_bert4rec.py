"""Tests for the BERT4Rec baseline."""

import numpy as np
import pytest

from repro.data import EvalSample
from repro.eval import evaluate_model
from repro.models import BERT4Rec, TrainConfig

QUICK = TrainConfig(embedding_dim=8, hidden_dim=8, num_epochs=2,
                    batch_size=64, max_history=8, seed=0)


@pytest.fixture(scope="module")
def fitted(tiny_dataset, tiny_split):
    model = BERT4Rec(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                     QUICK)
    fit = model.fit(tiny_split.train)
    return model, fit


class TestBERT4Rec:
    def test_mask_token_allocated(self, tiny_dataset):
        model = BERT4Rec(5, tiny_dataset.num_items, QUICK)
        assert model.mask_token == tiny_dataset.num_items + 1
        assert (model.token_embedding.num_embeddings
                == tiny_dataset.num_items + 2)

    def test_trains(self, fitted):
        _, fit = fitted
        assert fit.epoch_losses[-1] < fit.epoch_losses[0]

    def test_scores(self, fitted, tiny_dataset, tiny_split):
        model, _ = fitted
        scores = model.score_samples(tiny_split.test[:4])
        assert scores.shape == (4, tiny_dataset.num_items + 1)
        assert np.isfinite(scores).all()

    def test_bidirectional_context(self, fitted, tiny_dataset):
        """Changing the FIRST history item must change the representation —
        the mask position attends to the whole history."""
        model, _ = fitted
        base = EvalSample(user_id=0, history=((1,), (2,), (3,)), target=(4,))
        changed = EvalSample(user_id=0, history=((5,), (2,), (3,)),
                             target=(4,))
        a = model.score_samples([base])
        b = model.score_samples([changed])
        assert not np.allclose(a, b)

    def test_beats_random(self, fitted, tiny_dataset, tiny_split):
        model, _ = fitted
        result = evaluate_model(model, tiny_split.test, z=5)
        assert result.mean("hit") > 5 / tiny_dataset.num_items

    def test_runner_integration(self, tiny_dataset):
        from repro.exp import build_model, quick_settings
        model = build_model("BERT4Rec", tiny_dataset, quick_settings())
        assert isinstance(model, BERT4Rec)
