"""Tests for the hierarchical RNN baseline."""

import numpy as np
import pytest

from repro.data import EvalSample
from repro.eval import evaluate_model
from repro.models import HRNN, TrainConfig

QUICK = TrainConfig(embedding_dim=8, hidden_dim=8, num_epochs=2,
                    batch_size=64, max_history=8, seed=0)


@pytest.fixture(scope="module")
def fitted(tiny_dataset, tiny_split):
    model = HRNN(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                 QUICK, session_length=3)
    fit = model.fit(tiny_split.train)
    return model, fit


class TestHRNN:
    def test_session_length_validated(self, tiny_dataset):
        with pytest.raises(ValueError):
            HRNN(5, tiny_dataset.num_items, QUICK, session_length=0)

    def test_trains(self, fitted):
        _, fit = fitted
        assert fit.epoch_losses[-1] < fit.epoch_losses[0]

    def test_scores_shape(self, fitted, tiny_dataset, tiny_split):
        model, _ = fitted
        scores = model.score_samples(tiny_split.test[:4])
        assert scores.shape == (4, tiny_dataset.num_items + 1)
        assert np.isfinite(scores).all()

    def test_cross_session_memory(self, fitted):
        """Items before a session boundary still influence the output
        (through the user-level GRU)."""
        model, _ = fitted
        base = EvalSample(user_id=0,
                          history=((1,), (2,), (3,), (4,), (5,)),
                          target=(6,))
        changed = EvalSample(user_id=0,
                             history=((7,), (2,), (3,), (4,), (5,)),
                             target=(6,))
        a = model.score_samples([base])
        b = model.score_samples([changed])
        assert not np.allclose(a, b)

    def test_beats_random(self, fitted, tiny_dataset, tiny_split):
        model, _ = fitted
        result = evaluate_model(model, tiny_split.test, z=5)
        assert result.mean("hit") > 5 / tiny_dataset.num_items

    def test_runner_integration(self, tiny_dataset):
        from repro.exp import build_model, quick_settings
        model = build_model("HRNN", tiny_dataset, quick_settings())
        assert isinstance(model, HRNN)
