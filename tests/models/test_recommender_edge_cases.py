"""Edge cases of the shared ranking interface."""

import numpy as np
import pytest

from repro.data import EvalSample, SequenceCorpus, UserSequence
from repro.models import PopularityRecommender
from repro.models.base import Recommender


class FixedScores(Recommender):
    """Test double returning a predetermined score matrix."""

    def __init__(self, scores):
        self._scores = np.asarray(scores, dtype=np.float64)

    def score_samples(self, samples):
        return np.tile(self._scores, (len(samples), 1))


def sample():
    return EvalSample(user_id=0, history=((1,),), target=(2,))


class TestRecommendEdgeCases:
    def test_z_larger_than_catalog(self):
        model = FixedScores([0.0, 3.0, 1.0, 2.0])  # 3 real items
        ranking = model.recommend([sample()], z=10)[0]
        assert len(ranking) <= 10
        assert ranking[0] == 1

    def test_padding_never_recommended_even_if_best(self):
        model = FixedScores([100.0, 1.0, 2.0])
        ranking = model.recommend([sample()], z=2)[0]
        assert 0 not in ranking
        assert ranking == [2, 1]

    def test_descending_order(self):
        model = FixedScores([0.0, 5.0, 9.0, 1.0, 7.0])
        ranking = model.recommend([sample()], z=3)[0]
        assert ranking == [2, 4, 1]

    def test_negative_scores_ok(self):
        model = FixedScores([0.0, -5.0, -1.0, -3.0])
        ranking = model.recommend([sample()], z=2)[0]
        assert ranking == [2, 3]

    def test_base_class_abstract_methods(self):
        base = Recommender()
        with pytest.raises(NotImplementedError):
            base.fit(SequenceCorpus(num_items=2))
        with pytest.raises(NotImplementedError):
            base.score_samples([sample()])


class TestPopularityEdgeCases:
    def test_fit_on_minimal_corpus(self):
        corpus = SequenceCorpus(num_items=3, sequences=[
            UserSequence(user_id=0, baskets=((1,), (1,), (3,)))])
        model = PopularityRecommender(3)
        model.fit(corpus)
        ranking = model.recommend([sample()], z=3)[0]
        assert ranking[0] == 1   # most popular first

    def test_unseen_items_rank_last(self):
        corpus = SequenceCorpus(num_items=3, sequences=[
            UserSequence(user_id=0, baskets=((1,), (1,), (3,)))])
        model = PopularityRecommender(3)
        model.fit(corpus)
        scores = model.score_samples([sample()])[0]
        assert scores[2] == 0.0
        assert scores[1] > scores[3] > scores[2] or scores[1] > scores[2]
