"""Multi-process serve fixtures: shm leak guard + bounded clusters.

Everything here is spawn-safe: helper functions that run inside worker
processes live in importable modules (never closures), and every test
runs under the ``shm_guard`` finalizer, which force-unlinks any segment
the test leaked so one failure cannot poison /dev/shm for the rest of
the suite (and fails the test that leaked).
"""

import numpy as np
import pytest

from repro.core import Causer, CauserConfig
from repro.models import GRU4Rec, TrainConfig
from repro.serve import ServeCluster
from repro.serve.shm import SEGMENT_PREFIX, cleanup_segments, list_segments

#: CI hosts are small; two workers exercise every cross-process code
#: path (routing, broadcast install, refcounted unlink) without
#: oversubscribing the runner.
CI_WORKERS = 2


@pytest.fixture(scope="module", autouse=True)
def shm_guard():
    """Fail (and clean up) if a module leaks shared-memory segments.

    Module-scoped so module-lifetime fixtures may hold segments across
    tests; set up before them, finalized after them — by which point
    /dev/shm must be empty again.  On failure the guard still unlinks
    everything, so one leak cannot poison later modules.
    """
    cleanup_segments(SEGMENT_PREFIX)
    yield
    leaked = list_segments(SEGMENT_PREFIX)
    cleanup_segments(SEGMENT_PREFIX)
    assert leaked == [], f"tests leaked shm segments: {leaked}"


@pytest.fixture(scope="package")
def mp_causer(tiny_dataset, tiny_split):
    config = CauserConfig(embedding_dim=8, hidden_dim=8, num_epochs=2,
                          batch_size=64, num_clusters=4, epsilon=0.2,
                          eta=0.5, seed=0, max_history=8)
    model = Causer(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                   tiny_dataset.features, config)
    model.fit(tiny_split.train)
    return model


@pytest.fixture(scope="package")
def mp_gru4rec(tiny_dataset, tiny_split):
    config = TrainConfig(embedding_dim=8, hidden_dim=8, num_epochs=1,
                         batch_size=64, seed=0, max_history=8)
    model = GRU4Rec(tiny_dataset.corpus.num_users, tiny_dataset.num_items,
                    config)
    model.fit(tiny_split.train)
    return model


@pytest.fixture
def make_cluster():
    """Factory for started clusters, closed (and leak-checked) on exit."""
    clusters = []

    def _make(num_workers=CI_WORKERS, **kwargs):
        kwargs.setdefault("max_wait_ms", 0.5)
        cluster = ServeCluster(num_workers, **kwargs)
        clusters.append(cluster)
        cluster.start()
        return cluster

    yield _make
    for cluster in clusters:
        cluster.close()


@pytest.fixture(scope="module")
def make_module_cluster():
    """Module-lifetime cluster factory: one spawn cost for many tests."""
    clusters = []

    def _make(num_workers=CI_WORKERS, **kwargs):
        kwargs.setdefault("max_wait_ms", 0.5)
        cluster = ServeCluster(num_workers, **kwargs)
        clusters.append(cluster)
        cluster.start()
        return cluster

    yield _make
    for cluster in clusters:
        cluster.close()


def wait_generations(cluster, generation, timeout=60.0):
    """Block until every worker's slab row shows ``generation``."""
    import time
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        gens = cluster.worker_generations()
        if gens and all(g >= generation for g in gens):
            return gens
        time.sleep(0.05)
    raise TimeoutError(
        f"workers never adopted generation {generation}: "
        f"{cluster.worker_generations()}")


def random_histories(seed, num_users, num_steps, num_items):
    rng = np.random.default_rng(seed)
    return {int(user): tuple(
        tuple(int(i) for i in rng.integers(1, num_items + 1,
                                           size=rng.integers(1, 3)))
        for _ in range(num_steps))
        for user in rng.choice(200, size=num_users, replace=False)}
