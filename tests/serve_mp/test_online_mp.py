"""Online learning against the sharded multi-process cluster.

One coordinator-side event log covers the whole fleet: the cluster's
``event_sink`` tees every accepted ``/v1/events`` regardless of which
worker the request was routed to, the trainer/refresh stack runs in the
coordinator process, and a refresh publishes through
``cluster.install`` — which broadcasts the new generation to every
worker via the shared-memory checkpoint path.  Drift metrics live in
the coordinator registry, which ``_render_metrics`` appends to the
cluster's ``/metrics``.
"""

import copy

from repro.online import EventLog, OnlineTrainer, RefreshController
from repro.serve import InProcessClient

from .conftest import random_histories, wait_generations


def test_online_refresh_broadcasts_and_metrics_render(mp_causer,
                                                      make_cluster):
    cluster = make_cluster()
    cluster.install(mp_causer)
    wait_generations(cluster, 1)
    client = InProcessClient(cluster)

    log = EventLog(None)
    cluster.event_sink = log.append
    trainer = OnlineTrainer(copy.deepcopy(mp_causer), log, lr=0.05,
                            batch_events=16, metrics=cluster.metrics)
    refresh = RefreshController(trainer, log, cluster.install,
                                window=512, refresh_epochs=1,
                                min_samples=4, baseline=mp_causer,
                                metrics=cluster.metrics)

    histories = random_histories(seed=17, num_users=10, num_steps=6,
                                 num_items=mp_causer.num_items)
    sent = 0
    for user, baskets in histories.items():
        for basket in baskets:
            status, _body = client.post(
                "/v1/events", {"user_id": user, "basket": list(basket)})
            assert status == 200
            sent += 1
    # The tee saw every event the fleet accepted, across all shards.
    assert log.next_offset == sent

    trainer.pump()
    assert trainer.consumed_offset == (sent // 16) * 16
    assert refresh.refresh_once() is True

    # Every worker adopted the refreshed generation (2 = install + 1).
    wait_generations(cluster, 2)
    for user in list(histories)[:4]:
        status, body = client.post("/v1/recommend", {"user_id": user,
                                                     "z": 5})
        assert status == 200
        assert body["generation"] == 2

    # Online counters and drift gauges render on the cluster /metrics.
    status, text = client.get("/metrics")
    assert status == 200
    assert "online_events_consumed_total" in text
    assert "online_refresh_total 1" in text
    assert "online_edge_churn_added" in text
    assert "online_score_divergence" in text
    assert "online_update_lag" in text
    log.close()
