"""Quantized frozen-table contracts: memory wins and ranking tolerances.

The documented guarantees (docs/SERVING.md):

* ``none``  — byte-identical scores to the dense in-process bundle,
* ``fp16``  — >= 1.9x smaller tables, top-z overlap >= 0.99,
* ``int8``  — >= 3.5x smaller tables, top-z overlap >= 0.9,

all measured through the same publish → attach path the workers use
(in-process attach here; the spawn boundary is covered by
test_shm_roundtrip, and the arithmetic is identical either way).
"""

import gc

import numpy as np
import pytest

from repro.retrieval import RetrievalConfig
from repro.serve import (SessionStore, build_artifacts, publish_artifacts,
                         score_views)
from repro.serve.shm import AttachedArtifacts, quantize_artifacts

HISTORIES = {
    user: ((2 + user % 5,), (5, 7), (1 + user % 11,))
    for user in range(24)
}


def _scores(artifacts):
    store = SessionStore(capacity=64)
    views = [store.ephemeral_view(user, history, artifacts)
             for user, history in HISTORIES.items()]
    return score_views(artifacts, views)


def _topz_overlap(dense, quantized, z=5):
    """Mean |top-z(dense) ∩ top-z(quantized)| / z across sessions."""
    overlaps = []
    for row_d, row_q in zip(dense, quantized):
        top_d = set(np.argsort(-row_d, kind="stable")[:z])
        top_q = set(np.argsort(-row_q, kind="stable")[:z])
        overlaps.append(len(top_d & top_q) / z)
    return float(np.mean(overlaps))


@pytest.fixture(scope="module")
def dense_artifacts(mp_causer):
    return build_artifacts(
        mp_causer, generation=1,
        retrieval=RetrievalConfig(mode="ivf", shortlist=16, nprobe=2))


@pytest.fixture(scope="module")
def dense_scores(dense_artifacts):
    return _scores(dense_artifacts)


def _publish_attach(artifacts, mode, request):
    checkpoint = publish_artifacts(artifacts, quantize=mode)

    def _cleanup():
        gc.collect()
        attached.detach()
        checkpoint.unlink()
        checkpoint.close()
    request.addfinalizer(_cleanup)
    attached = AttachedArtifacts(checkpoint.name)
    return checkpoint, attached


def test_none_is_byte_identical(dense_artifacts, dense_scores, request):
    checkpoint, attached = _publish_attach(dense_artifacts, "none", request)
    assert checkpoint.table_bytes == checkpoint.table_bytes_dense
    scores = _scores(attached.artifacts)
    assert scores.dtype == dense_scores.dtype
    assert np.array_equal(scores, dense_scores)


def test_fp16_memory_and_overlap(dense_artifacts, dense_scores, request):
    checkpoint, attached = _publish_attach(dense_artifacts, "fp16", request)
    ratio = checkpoint.table_bytes_dense / checkpoint.table_bytes
    assert ratio >= 1.9, f"fp16 table shrink only {ratio:.2f}x"
    overlap = _topz_overlap(dense_scores, _scores(attached.artifacts))
    assert overlap >= 0.99, f"fp16 top-5 overlap {overlap:.3f}"


def test_int8_memory_and_overlap(dense_artifacts, dense_scores, request):
    checkpoint, attached = _publish_attach(dense_artifacts, "int8", request)
    ratio = checkpoint.table_bytes_dense / checkpoint.table_bytes
    # Per-row fp64 scale+offset cost 16 bytes, so the shrink is
    # 8d/(d+16): ~2.67x at the test's d=8, asymptoting to 8x for
    # production-sized rows.
    dim = dense_artifacts.output_table.shape[1]
    bound = 0.95 * (8 * dim) / (dim + 16)
    assert ratio >= bound, f"int8 table shrink only {ratio:.2f}x"
    overlap = _topz_overlap(dense_scores, _scores(attached.artifacts))
    assert overlap >= 0.9, f"int8 top-5 overlap {overlap:.3f}"


def test_quantized_candidate_scores_match_full_pass(dense_artifacts):
    """Gather-then-dequantize == dequantize-then-gather, bit for bit.

    This is the contract that keeps IVF re-rank scores consistent with
    the full-catalog pass under quantization (row-independent op order).
    """
    from repro.serve import score_view_candidates
    quantized = quantize_artifacts(dense_artifacts, "int8")
    store = SessionStore(capacity=8)
    view = store.ephemeral_view(3, HISTORIES[3], quantized)
    full = score_views(quantized, [view])[0]
    candidates = np.array([1, 5, 9, 17, 30])
    restricted = score_view_candidates(quantized, view, candidates)
    assert np.array_equal(restricted, full[candidates])


def test_invalid_mode_rejected(dense_artifacts):
    with pytest.raises(ValueError):
        quantize_artifacts(dense_artifacts, "fp8")
