"""Publish → spawn → attach round trips for every servable model class.

One child process (a real ``spawn`` boundary: fresh interpreter, no
inherited heap) attaches every published segment and scores a fixed
session; the parent asserts bitwise equality against the in-process
bundle.  This is the strongest possible statement that the shared-memory
manifest encodes *everything* scoring needs — any field the pool pickler
dropped or mis-offset would flip bits here.
"""

import multiprocessing

import numpy as np
import pytest

from repro.exp import ALL_MODEL_NAMES, BenchmarkSettings, build_model
from repro.retrieval import RetrievalConfig
from repro.serve import (SessionStore, build_artifacts, publish_artifacts,
                         score_views)
from repro.serve.shm import AttachedArtifacts

SERVABLE_NAMES = [name for name in ALL_MODEL_NAMES if name != "Pop"]

HISTORY = ((2,), (5, 7), (4,), (1, 3))
USER_ID = 3


def _score_from_artifacts(artifacts):
    """Deterministic scoring probe: ephemeral session -> full catalog."""
    store = SessionStore(capacity=16)
    view = store.ephemeral_view(USER_ID, HISTORY, artifacts)
    return score_views(artifacts, [view])


def _child_verify(conn, jobs):
    """Runs in a spawned child: attach each segment, score, report back.

    Returns raw scores (and IVF search output when the bundle carries a
    retrieval stage) keyed by segment name; the parent does the
    comparisons so assertion failures surface with pytest diffs.
    """
    out = {}
    for job in jobs:
        attached = AttachedArtifacts(job["name"])
        artifacts = attached.artifacts
        scores = _score_from_artifacts(artifacts)
        entry = {"scores": scores, "generation": attached.generation}
        if artifacts.retrieval is not None:
            query = np.asarray(job["query"])
            entry["ivf_ids"] = artifacts.retrieval.index.search(
                query, k=8, nprobe=2)
        out[job["name"]] = entry
        # Views die with this process; the parent owns the unlink.
        del artifacts, entry
    conn.send(out)
    conn.close()


@pytest.fixture(scope="module")
def published(tiny_dataset, request):
    """Every servable class built, published, and scored in-process."""
    settings = BenchmarkSettings(embedding_dim=8, hidden_dim=8,
                                 max_history=8, quick=True)
    rng = np.random.default_rng(11)
    bundles = {}
    checkpoints = []

    def _unlink():
        for checkpoint in checkpoints:
            checkpoint.unlink()
            checkpoint.close()
    # Registered *before* publishing: a failure mid-loop must still
    # unlink whatever made it into /dev/shm.
    request.addfinalizer(_unlink)
    for generation, name in enumerate(SERVABLE_NAMES, start=1):
        model = build_model(name, tiny_dataset, settings)
        retrieval = (RetrievalConfig(mode="ivf", shortlist=16, nprobe=2)
                     if name in ("Causer (GRU)", "GRU4Rec") else None)
        artifacts = build_artifacts(model, generation, retrieval=retrieval)
        checkpoint = publish_artifacts(artifacts)
        checkpoints.append(checkpoint)
        job = {"name": checkpoint.name}
        if artifacts.retrieval is not None:
            dim = artifacts.retrieval.tower.vectors.shape[1]
            job["query"] = rng.standard_normal(dim)
            job["ivf_ids"] = artifacts.retrieval.index.search(
                np.asarray(job["query"]), k=8, nprobe=2)
        bundles[name] = (artifacts, job)
    return bundles


@pytest.fixture(scope="module")
def child_results(published):
    """One spawn round trip covering every published segment."""
    jobs = [job for _, job in published.values()]
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe()
    process = ctx.Process(target=_child_verify, args=(child_conn, jobs))
    process.start()
    child_conn.close()
    assert parent_conn.poll(120), "spawned verifier timed out"
    results = parent_conn.recv()
    process.join(timeout=30)
    assert process.exitcode == 0
    return results


@pytest.mark.parametrize("name", SERVABLE_NAMES)
def test_spawned_scores_bitwise_identical(name, published, child_results):
    artifacts, job = published[name]
    entry = child_results[job["name"]]
    expected = _score_from_artifacts(artifacts)
    assert entry["scores"].dtype == expected.dtype
    assert np.array_equal(entry["scores"], expected), \
        f"{name}: spawned-process scores differ from in-process scores"


@pytest.mark.parametrize("name", ["Causer (GRU)", "GRU4Rec"])
def test_retrieval_artifact_survives_spawn(name, published, child_results):
    """IVF index + item tower round-trip: identical search output."""
    _, job = published[name]
    entry = child_results[job["name"]]
    assert np.array_equal(entry["ivf_ids"], job["ivf_ids"])


def test_generations_survive(published, child_results):
    for name, (artifacts, job) in published.items():
        assert child_results[job["name"]]["generation"] \
            == artifacts.generation
