"""Hot-swap under live traffic: three generations, sanitized workers.

The strongest multi-process swap guarantees, asserted end to end:

* responses never go backwards — each session observes a monotone
  generation sequence (no torn artifact reads),
* every worker converges on the newest generation,
* superseded segments are unlinked once all workers detach,
* each worker ran with the runtime thread sanitizer enabled and exited
  with zero findings.
"""

import threading
import time

import pytest

from repro.serve import InProcessClient
from repro.serve.shm import list_segments

from .conftest import random_histories, wait_generations

GENERATIONS = 3


@pytest.fixture(scope="module")
def swap_cluster(mp_causer, make_module_cluster):
    return make_module_cluster(thread_sanitizer=True)


def _traffic(client, histories, stop, errors, observed):
    users = list(histories)
    i = 0
    while not stop.is_set():
        user = users[i % len(users)]
        i += 1
        status, body = client.post(
            "/v1/events", {"user_id": user,
                           "basket": list(histories[user][i % 3])})
        if status != 200:
            errors.append(("events", status, body))
            continue
        status, body = client.post("/v1/recommend", {"user_id": user, "z": 5})
        if status != 200:
            errors.append(("recommend", status, body))
        elif body["source"] == "model":
            observed.append((user, body["generation"]))


def test_three_generations_mid_traffic(swap_cluster, mp_causer, mp_gru4rec):
    cluster = swap_cluster
    client = InProcessClient(cluster)
    cluster.install(mp_causer)
    wait_generations(cluster, 1)

    histories = random_histories(seed=9, num_users=10, num_steps=3,
                                 num_items=mp_causer.num_items)
    stop = threading.Event()
    errors, observed = [], []
    threads = [threading.Thread(target=_traffic,
                                args=(client, histories, stop,
                                      errors, observed))
               for _ in range(3)]
    for thread in threads:
        thread.start()
    try:
        for generation in range(2, GENERATIONS + 1):
            time.sleep(0.4)
            model = mp_gru4rec if generation % 2 == 0 else mp_causer
            artifacts = cluster.install(model)
            assert artifacts.generation == generation
            wait_generations(cluster, generation)
        time.sleep(0.4)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

    assert not errors, f"traffic failed during swaps: {errors[:5]}"
    assert observed, "traffic loop never reached a model response"

    # Monotone generations per session: a response may lag the installed
    # generation (scored just before adoption) but can never go back.
    last_seen = {}
    for user, generation in observed:
        assert generation >= last_seen.get(user, 0), \
            f"user {user} observed generation {generation} after " \
            f"{last_seen[user]}"
        last_seen[user] = generation
    assert max(last_seen.values()) == GENERATIONS

    # Old generations' segments are unlinked once every worker detached;
    # give the retire loop a moment, then expect exactly one checkpoint
    # segment (the live one) plus the metrics slab.
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        segments = [name for name in list_segments()
                    if "-metrics-" not in name]
        if len(segments) == 1:
            break
        time.sleep(0.2)
    assert len(segments) == 1, f"stale segments not unlinked: {segments}"
    assert segments[0] == cluster.current_checkpoint().name

    # Sanitized workers must close clean: zero findings == exit code 0.
    exit_codes = cluster.close()
    assert all(code == 0 for code in exit_codes.values()), \
        f"thread sanitizer reported findings: {exit_codes}"
