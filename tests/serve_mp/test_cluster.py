"""ServeCluster integration: routing, shard invariant, crash recovery.

Uses :class:`InProcessClient` against the coordinator's ``handle`` —
the router still crosses real process boundaries to reach the workers
(HTTP over loopback), only the coordinator-side socket is skipped.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.serve import InProcessClient, ServeApp, partition

from .conftest import CI_WORKERS, random_histories, wait_generations


def _feed(client, histories):
    for user, baskets in histories.items():
        for basket in baskets:
            status, _ = client.post("/v1/events",
                                    {"user_id": user, "basket": list(basket)})
            assert status == 200


@pytest.fixture(scope="module")
def cluster(mp_causer, make_module_cluster):
    cluster = make_module_cluster()
    cluster.install(mp_causer)
    wait_generations(cluster, 1)
    return cluster


@pytest.fixture(scope="module")
def client(cluster):
    return InProcessClient(cluster)


class TestRouting:
    def test_recommend_routes_and_scores(self, cluster, client, mp_causer):
        histories = random_histories(seed=5, num_users=8, num_steps=3,
                                     num_items=mp_causer.num_items)
        _feed(client, histories)
        for user in histories:
            status, body = client.post("/v1/recommend",
                                       {"user_id": user, "z": 5})
            assert status == 200
            assert body["source"] == "model"
            assert body["generation"] == 1
            assert len(body["items"]) == 5

    def test_matches_single_process_byte_identical(self, cluster, client,
                                                   mp_causer):
        """quantize='none': the sharded answer == the in-process answer."""
        app = ServeApp(max_wait_ms=0.5)
        app.install_model(mp_causer)
        local = InProcessClient(app)
        try:
            histories = random_histories(seed=23, num_users=6, num_steps=3,
                                         num_items=mp_causer.num_items)
            _feed(client, histories)
            _feed(local, histories)
            for user in histories:
                payload = {"user_id": user, "z": 7}
                _, mp_body = client.post("/v1/recommend", dict(payload))
                _, sp_body = local.post("/v1/recommend", dict(payload))
                assert mp_body["items"] == sp_body["items"]
        finally:
            app.close()

    def test_sessions_land_on_their_hash_shard(self, cluster, client,
                                               mp_causer):
        """The partition invariant: user state lives on exactly one worker."""
        histories = random_histories(seed=41, num_users=12, num_steps=2,
                                     num_items=mp_causer.num_items)
        _feed(client, histories)
        expected = {wid: 0 for wid in range(cluster.num_workers)}
        for user in histories:
            expected[partition(user, cluster.num_workers)] += 1
        for wid in range(cluster.num_workers):
            stats = cluster.worker_stats(wid)
            assert stats["sessions"] >= expected[wid]

    def test_validation_errors_stay_on_coordinator(self, client):
        status, body = client.post("/v1/recommend", {"user_id": "nope"})
        assert status == 400 and "error" in body


class TestObservability:
    def test_healthz_lists_every_worker(self, cluster, client):
        status, body = client.get("/healthz")
        assert status == 200 and body["status"] == "ok"
        assert body["num_workers"] == CI_WORKERS
        assert [w["worker"] for w in body["workers"]] \
            == list(range(CI_WORKERS))
        assert all(w["alive"] and w["generation"] == 1
                   for w in body["workers"])

    def test_merged_metrics_exposition(self, cluster, client):
        status, text = client.get("/metrics")
        assert status == 200
        for wid in range(CI_WORKERS):
            assert f'serve_worker_up{{worker="{wid}"}} 1' in text
            assert f'serve_worker_generation{{worker="{wid}"}} 1' in text
        assert "serve_mp_requests_total" in text
        assert "serve_mp_recommend_latency_seconds" in text

    def test_worker_generations_from_slab(self, cluster):
        assert cluster.worker_generations() == [1] * CI_WORKERS


class TestCrashRecovery:
    def test_killed_worker_is_replaced_and_reinstalled(self, cluster,
                                                       client, mp_causer):
        victim_id = 0
        old_pid = cluster.worker_stats(victim_id)["pid"]
        os.kill(old_pid, signal.SIGKILL)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            stats = cluster.worker_stats(victim_id, timeout=5)
            if stats and stats["pid"] != old_pid \
                    and stats["generation"] == 1:
                break
            time.sleep(0.2)
        else:
            pytest.fail("killed worker was not replaced in time")
        # The replacement serves its shard again (session state is gone —
        # process-local by design — but routing and scoring work).
        user = next(u for u in range(64)
                    if partition(u, cluster.num_workers) == victim_id)
        status, body = client.post(
            "/v1/events", {"user_id": user, "basket": [1, 2]})
        assert status == 200
        status, body = client.post("/v1/recommend", {"user_id": user, "z": 5})
        assert status == 200 and body["source"] == "model"
        assert cluster.exit_codes[victim_id] == -signal.SIGKILL
