"""End-to-end integration tests crossing all subsystem boundaries."""

import numpy as np
import pytest

from repro.causal import evaluate_structure, is_dag
from repro.core import Causer, CauserConfig, make_explainer
from repro.data import (SimulatorConfig, build_explanation_dataset,
                        generate_dataset, leave_one_out_split)
from repro.eval import evaluate_explanations, evaluate_model, paired_t_test
from repro.models import GRU4Rec, TrainConfig


@pytest.fixture(scope="module")
def pipeline():
    """Generate → split → train Causer + baseline → evaluate, once."""
    config = SimulatorConfig(num_users=200, num_items=60, num_clusters=4,
                             edge_prob=0.5, mean_sequence_length=6.0,
                             causal_follow_prob=0.8, noise_prob=0.1, seed=5)
    dataset = generate_dataset(config, name="integration")
    split = leave_one_out_split(dataset.corpus)
    causer = Causer(dataset.corpus.num_users, dataset.num_items,
                    dataset.features,
                    CauserConfig(embedding_dim=16, hidden_dim=16,
                                 num_epochs=6, batch_size=128,
                                 num_clusters=4, epsilon=0.2, eta=0.5,
                                 lambda_l1=0.001, seed=0))
    causer_fit = causer.fit(split.train)
    baseline = GRU4Rec(dataset.corpus.num_users, dataset.num_items,
                       TrainConfig(embedding_dim=16, hidden_dim=16,
                                   num_epochs=6, batch_size=128, seed=0))
    baseline.fit(split.train)
    return dataset, split, causer, causer_fit, baseline


class TestEndToEnd:
    def test_causer_learns(self, pipeline):
        dataset, split, causer, fit, _ = pipeline
        assert fit.epoch_losses[-1] < fit.epoch_losses[0]
        result = evaluate_model(causer, split.test, z=5)
        random_hit = 5 / dataset.num_items
        assert result.mean("hit") > 2 * random_hit

    def test_causer_competitive_with_baseline(self, pipeline):
        _, split, causer, _, baseline = pipeline
        causer_result = evaluate_model(causer, split.test, z=5)
        baseline_result = evaluate_model(baseline, split.test, z=5)
        # Shape claim at tiny scale: Causer is at least competitive.
        assert causer_result.mean("ndcg") > 0.6 * baseline_result.mean("ndcg")

    def test_significance_machinery_runs(self, pipeline):
        _, split, causer, _, baseline = pipeline
        a = evaluate_model(causer, split.test, z=5)
        b = evaluate_model(baseline, split.test, z=5)
        test = paired_t_test(a.per_user["ndcg"], b.per_user["ndcg"])
        assert 0.0 <= test.p_value <= 1.0

    def test_learned_graph_is_dag_after_training(self, pipeline):
        _, _, causer, fit, _ = pipeline
        assert is_dag(causer.learned_cluster_graph(threshold=0.1))
        assert fit.extra["h"][-1] < 0.5

    def test_learned_graph_correlates_with_truth(self, pipeline):
        """The learned item-level W should separate true causal pairs."""
        dataset, _, causer, _, _ = pipeline
        truth = dataset.item_causal_matrix()[1:, 1:]
        learned = causer.item_causal_matrix()[1:, 1:]
        causal_pairs = learned[truth == 1]
        non_causal = learned[truth == 0]
        if causal_pairs.size and non_causal.size:
            assert causal_pairs.mean() > non_causal.mean()

    def test_explanations_beat_random(self, pipeline):
        dataset, _, causer, _, _ = pipeline
        samples = build_explanation_dataset(dataset, max_samples=60)
        if len(samples) < 10:
            pytest.skip("not enough singleton-history samples at this scale")
        outcome = evaluate_explanations(samples,
                                        make_explainer(causer, "causal"), k=3)
        rng = np.random.default_rng(0)
        random_outcome = evaluate_explanations(
            samples,
            lambda s: rng.random(len(s.history_items)), k=3)
        # F1@3 saturates on short histories (any 3 picks cover most causes);
        # NDCG@3 is the discriminating metric here.
        assert outcome.ndcg > random_outcome.ndcg

    def test_structure_metrics_on_learned_graph(self, pipeline):
        """Wire the causal metrics to the learned cluster graph."""
        dataset, _, causer, _, _ = pipeline
        learned = causer.learned_cluster_graph(threshold=0.25)
        metrics = evaluate_structure(dataset.cluster_graph, learned)
        assert metrics.shd >= 0  # machinery runs end-to-end
        assert 0.0 <= metrics.skeleton_f1 <= 1.0
