"""CLI end-to-end coverage for the heavier experiment subcommands.

All runs use --quick at a tiny scale, so each takes seconds.
"""

import pytest

from repro.cli import main


@pytest.mark.parametrize("command,needle", [
    (["table4", "--scale", "0.02", "--quick", "--datasets", "baby"],
     "Table IV"),
    (["table5", "--scale", "0.02", "--quick", "--datasets", "baby",
      "--cells", "gru"], "Table V"),
    (["fig4", "--scale", "0.02", "--quick", "--datasets", "baby",
      "--cells", "gru"], "Figure 4"),
    (["fig6", "--scale", "0.02", "--quick", "--datasets", "baby",
      "--cells", "gru"], "Figure 6"),
    (["fig7", "--scale", "0.02", "--quick", "--cells", "gru"], "Figure 7"),
    (["fig8", "--scale", "0.02", "--quick"], "Figure 8"),
    (["efficiency", "--scale", "0.02", "--quick"], "efficiency"),
])
def test_cli_experiment_commands(capsys, command, needle):
    assert main(command) == 0
    assert needle in capsys.readouterr().out
