"""Tests for the causal behaviour simulator."""

import numpy as np
import pytest

from repro.causal import is_dag
from repro.data import BehaviorSimulator, SimulatorConfig, generate_dataset


class TestConfigValidation:
    def test_items_per_cluster(self):
        with pytest.raises(ValueError):
            SimulatorConfig(num_items=3, num_clusters=5)

    def test_probability_range(self):
        with pytest.raises(ValueError):
            SimulatorConfig(causal_follow_prob=1.5)

    def test_feature_kind(self):
        with pytest.raises(ValueError):
            SimulatorConfig(feature_kind="audio")


class TestGeneration:
    def test_reproducible(self):
        cfg = SimulatorConfig(num_users=30, num_items=20, num_clusters=4,
                              seed=11)
        a = generate_dataset(cfg)
        b = generate_dataset(cfg)
        assert [s.baskets for s in a.corpus] == [s.baskets for s in b.corpus]
        np.testing.assert_array_equal(a.cluster_graph, b.cluster_graph)
        np.testing.assert_allclose(a.features, b.features)

    def test_different_seeds_differ(self):
        a = generate_dataset(SimulatorConfig(num_users=30, num_items=20,
                                             num_clusters=4, seed=1))
        b = generate_dataset(SimulatorConfig(num_users=30, num_items=20,
                                             num_clusters=4, seed=2))
        assert [s.baskets for s in a.corpus] != [s.baskets for s in b.corpus]

    def test_cluster_graph_is_dag_with_edges(self, tiny_dataset):
        assert is_dag(tiny_dataset.cluster_graph)
        assert tiny_dataset.cluster_graph.sum() >= 1

    def test_sequence_length_bounds(self, tiny_dataset):
        cfg = tiny_dataset.config
        for s in tiny_dataset.corpus:
            assert cfg.min_sequence_length <= s.length <= cfg.max_sequence_length

    def test_basket_sizes_bounded(self, tiny_dataset):
        for s in tiny_dataset.corpus:
            for basket in s.baskets:
                assert 1 <= len(basket) <= tiny_dataset.config.max_basket_size

    def test_features_cover_padded_vocab(self, tiny_dataset):
        assert tiny_dataset.features.shape[0] == tiny_dataset.num_items + 1
        np.testing.assert_allclose(tiny_dataset.features[0], 0.0)

    def test_cluster_assignment_shape(self, tiny_dataset):
        assert tiny_dataset.cluster_of_item[0] == -1
        real = tiny_dataset.cluster_of_item[1:]
        assert real.min() >= 0
        assert real.max() < tiny_dataset.num_clusters


class TestCauseLog:
    def test_aligned_with_baskets(self, tiny_dataset):
        for seq, causes in zip(tiny_dataset.corpus, tiny_dataset.cause_log):
            assert len(causes) == seq.length
            for basket, cause_map in zip(seq.baskets, causes):
                assert set(cause_map) == set(basket)

    def test_triggers_precede_effects(self, tiny_dataset):
        for seq, causes in zip(tiny_dataset.corpus, tiny_dataset.cause_log):
            seen = set()
            for basket, cause_map in zip(seq.baskets, causes):
                for item in basket:
                    for trigger in cause_map[item]:
                        assert trigger in seen
                seen.update(basket)

    def test_triggers_respect_cluster_graph(self, tiny_dataset):
        graph = tiny_dataset.cluster_graph
        clusters = tiny_dataset.cluster_of_item
        for seq, causes in zip(tiny_dataset.corpus, tiny_dataset.cause_log):
            for basket, cause_map in zip(seq.baskets, causes):
                for item in basket:
                    for trigger in cause_map[item]:
                        assert graph[clusters[trigger], clusters[item]] == 1

    def test_causal_fraction_plausible(self, tiny_dataset):
        total, caused = 0, 0
        for causes in tiny_dataset.cause_log:
            for cause_map in causes[1:]:  # first step cannot be causal
                for cause in cause_map.values():
                    total += 1
                    caused += bool(cause)
        assert caused / total > 0.3


class TestGroundTruthHelpers:
    def test_item_causal_matrix_matches_clusters(self, tiny_dataset):
        matrix = tiny_dataset.item_causal_matrix()
        clusters = tiny_dataset.cluster_of_item
        graph = tiny_dataset.cluster_graph
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b = rng.integers(1, tiny_dataset.num_items + 1, size=2)
            expected = graph[clusters[a], clusters[b]]
            assert matrix[a, b] == expected

    def test_padding_rows_zero(self, tiny_dataset):
        matrix = tiny_dataset.item_causal_matrix()
        assert matrix[0].sum() == 0
        assert matrix[:, 0].sum() == 0

    def test_true_causes_in_history(self, tiny_dataset):
        clusters = tiny_dataset.cluster_of_item
        graph = tiny_dataset.cluster_graph
        target = 1
        history = list(range(1, tiny_dataset.num_items + 1))
        causes = tiny_dataset.true_causes_in_history(history, target)
        for item in causes:
            assert graph[clusters[item], clusters[target]] == 1


class TestAffinity:
    def test_preferred_effects_deterministic(self, tiny_dataset):
        sim = BehaviorSimulator(tiny_dataset.config)
        a = sim.preferred_effects(5, 1)
        b = sim.preferred_effects(5, 1)
        np.testing.assert_array_equal(a, b)

    def test_preferred_effects_in_cluster(self, tiny_dataset):
        sim = BehaviorSimulator(tiny_dataset.config)
        for cluster in range(tiny_dataset.num_clusters):
            for trigger in (1, 7, 13):
                for item in sim.preferred_effects(trigger, cluster):
                    assert sim.cluster_of_item[item] == cluster

    def test_fanout_respected(self, tiny_dataset):
        sim = BehaviorSimulator(tiny_dataset.config)
        fanout = tiny_dataset.config.affinity_fanout
        assert len(sim.preferred_effects(3, 0)) <= fanout
