"""Tests for padding, negative sampling and batch iteration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (EvalSample, iterate_batches, pad_samples,
                        sample_negatives)


def sample(user, history, target):
    return EvalSample(user_id=user,
                      history=tuple(tuple(b) for b in history),
                      target=tuple(target))


class TestPadSamples:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pad_samples([])

    def test_shapes(self):
        batch = pad_samples([
            sample(0, [[1], [2, 3]], [4]),
            sample(1, [[5]], [6, 7]),
        ])
        assert batch.items.shape == (2, 2, 2)
        assert batch.positives.shape == (2, 2)
        assert batch.step_mask.tolist() == [[True, True], [True, False]]

    def test_contents(self):
        batch = pad_samples([sample(3, [[1], [2, 4]], [5])])
        assert batch.users[0] == 3
        assert batch.items[0, 0, 0] == 1
        assert set(batch.items[0, 1]) == {2, 4}
        assert batch.positives[0, 0] == 5
        assert batch.basket_mask[0, 0].sum() == 1
        assert batch.basket_mask[0, 1].sum() == 2

    def test_max_history_truncation(self):
        batch = pad_samples([sample(0, [[1], [2], [3], [4]], [5])],
                            max_history=2)
        assert batch.max_time == 2
        assert batch.items[0, :, 0].tolist() == [3, 4]

    def test_history_multihot(self):
        batch = pad_samples([sample(0, [[1], [2, 3]], [4])])
        mh = batch.history_multihot(num_items=5)
        assert mh.shape == (1, 2, 6)
        assert mh[0, 0, 1] == 1.0
        assert mh[0, 1, 2] == 1.0 and mh[0, 1, 3] == 1.0
        assert mh[0, :, 0].sum() == 0.0

    def test_flat_history_sets(self):
        batch = pad_samples([sample(0, [[1], [2, 3]], [4]),
                             sample(1, [[5]], [6])])
        sets = batch.flat_history_sets()
        assert sets[0] == {1, 2, 3}
        assert sets[1] == {5}


class TestSampleNegatives:
    def test_shape_and_storage(self):
        batch = pad_samples([sample(0, [[1]], [2])])
        neg = sample_negatives(batch, num_items=50, num_negatives=3,
                               rng=np.random.default_rng(0))
        assert neg.shape == (1, 1, 3)
        assert batch.negatives is neg

    def test_never_collides_with_positives(self):
        rng = np.random.default_rng(1)
        batch = pad_samples([sample(0, [[1]], [2, 3]),
                             sample(1, [[4]], [5])])
        neg = sample_negatives(batch, num_items=10, num_negatives=8, rng=rng)
        collisions = (neg[:, :, :, None] ==
                      batch.positives[:, None, None, :]).any()
        assert not collisions

    def test_never_collides_with_history(self):
        # Negatives a user actually interacted with are not negative
        # evidence: draws are rejected against the flattened history too.
        batch = pad_samples([sample(0, [[1, 2], [3]], [4]),
                             sample(1, [[5], [6, 7]], [8])])
        for seed in range(10):
            neg = sample_negatives(batch, num_items=9, num_negatives=6,
                                   rng=np.random.default_rng(seed))
            for row, history in enumerate(batch.flat_history_sets()):
                assert not history.intersection(neg[row].ravel().tolist())

    def test_range(self):
        batch = pad_samples([sample(0, [[1]], [2])])
        neg = sample_negatives(batch, num_items=7, num_negatives=20,
                               rng=np.random.default_rng(2))
        assert neg.min() >= 1
        assert neg.max() <= 7

    def test_too_few_items_rejected(self):
        batch = pad_samples([sample(0, [[1]], [1])])
        with pytest.raises(ValueError):
            sample_negatives(batch, num_items=1, num_negatives=1,
                             rng=np.random.default_rng(0))

    def test_tiny_catalog_resolved_exactly(self):
        # History + positives cover 3 of 4 items, so rejection sampling
        # alone would almost surely leave collisions after 8 passes; the
        # exact complement fallback must fill every slot with the only
        # legal item.
        batch = pad_samples([sample(0, [[3]], [1, 2])])
        for seed in range(20):
            neg = sample_negatives(batch, num_items=4, num_negatives=6,
                                   rng=np.random.default_rng(seed))
            assert (neg == 4).all()

    def test_tiny_catalog_mixed_rows(self):
        # One dense row (single legal negative) next to a sparse row.
        batch = pad_samples([sample(0, [[3]], [1, 2]),
                             sample(1, [[1]], [2])])
        neg = sample_negatives(batch, num_items=4, num_negatives=5,
                               rng=np.random.default_rng(7))
        assert (neg[0] == 4).all()
        collisions = (neg[:, :, :, None] ==
                      batch.positives[:, None, None, :]).any()
        assert not collisions

    def test_all_items_excluded_raises(self):
        # History {1} plus targets {1, 2} cover the whole catalog.
        batch = pad_samples([sample(0, [[1]], [1, 2])])
        with pytest.raises(ValueError, match="no negative exists"):
            sample_negatives(batch, num_items=2, num_negatives=1,
                             rng=np.random.default_rng(0))


class TestIterateBatches:
    def test_covers_all_samples(self):
        samples = [sample(i, [[1]], [2]) for i in range(10)]
        batches = list(iterate_batches(samples, 3,
                                       np.random.default_rng(0)))
        assert sum(b.batch_size for b in batches) == 10
        users = sorted(u for b in batches for u in b.users)
        assert users == list(range(10))

    def test_no_shuffle_preserves_order(self):
        samples = [sample(i, [[1]], [2]) for i in range(5)]
        batches = list(iterate_batches(samples, 2, shuffle=False))
        assert batches[0].users.tolist() == [0, 1]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_batches([sample(0, [[1]], [2])], 0))

    def test_shuffle_without_rng_rejected(self):
        samples = [sample(i, [[1]], [2]) for i in range(4)]
        with pytest.raises(ValueError, match="explicit rng"):
            list(iterate_batches(samples, 2))

    def test_same_rng_seed_same_order(self):
        samples = [sample(i, [[1]], [2]) for i in range(9)]
        orders = [
            [u for b in iterate_batches(samples, 4,
                                        np.random.default_rng(5))
             for u in b.users.tolist()]
            for _ in range(2)
        ]
        assert orders[0] == orders[1]


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000),
       num_samples=st.integers(1, 12),
       max_hist=st.integers(1, 6))
def test_padding_roundtrip_property(seed, num_samples, max_hist):
    """Every original item lands in the padded arrays exactly once."""
    rng = np.random.default_rng(seed)
    samples = []
    for user in range(num_samples):
        history = []
        for _ in range(int(rng.integers(1, max_hist + 1))):
            basket = list(rng.choice(np.arange(1, 30), replace=False,
                                     size=int(rng.integers(1, 4))))
            history.append(basket)
        samples.append(sample(user, history, [int(rng.integers(1, 30))]))
    batch = pad_samples(samples)
    for row, original in enumerate(samples):
        flat_original = sorted(i for b in original.history for i in b)
        mask = batch.basket_mask[row].astype(bool)
        flat_padded = sorted(batch.items[row][mask].tolist())
        assert flat_original == flat_padded
        # Padding positions hold item 0.
        assert (batch.items[row][~mask] == 0).all()
