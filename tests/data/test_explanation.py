"""Tests for the derived explanation-label dataset."""

import numpy as np
import pytest

from repro.data import (average_causes_per_sample, build_explanation_dataset,
                        to_eval_samples)


@pytest.fixture(scope="module")
def labeled(tiny_dataset):
    return build_explanation_dataset(tiny_dataset, max_samples=100,
                                     singleton_only=True)


class TestBuildExplanationDataset:
    def test_nonempty(self, labeled):
        assert len(labeled) > 0

    def test_causes_capped_at_three(self, labeled):
        assert all(1 <= len(s.cause_items) <= 3 for s in labeled)

    def test_causes_come_from_history(self, labeled):
        for s in labeled:
            history = set(s.history_items)
            assert set(s.cause_items) <= history

    def test_singleton_filter(self, labeled):
        for s in labeled:
            assert all(len(b) == 1 for b in s.history)

    def test_causes_are_true_causes(self, labeled, tiny_dataset):
        graph = tiny_dataset.cluster_graph
        clusters = tiny_dataset.cluster_of_item
        for s in labeled:
            target_cluster = clusters[s.target_item]
            for cause in s.cause_items:
                assert graph[clusters[cause], target_cluster] == 1

    def test_max_samples_respected(self, tiny_dataset):
        limited = build_explanation_dataset(tiny_dataset, max_samples=3)
        assert len(limited) <= 3

    def test_average_causes(self, labeled):
        avg = average_causes_per_sample(labeled)
        assert 1.0 <= avg <= 3.0

    def test_average_causes_empty(self):
        assert average_causes_per_sample([]) == 0.0

    def test_to_eval_samples(self, labeled):
        eval_samples = to_eval_samples(labeled)
        assert len(eval_samples) == len(labeled)
        for orig, conv in zip(labeled, eval_samples):
            assert conv.target == (orig.target_item,)
            assert conv.history == orig.history

    def test_allow_baskets_when_not_singleton_only(self, tiny_dataset):
        everything = build_explanation_dataset(tiny_dataset, max_samples=500,
                                               singleton_only=False)
        singleton = build_explanation_dataset(tiny_dataset, max_samples=500,
                                              singleton_only=True)
        assert len(everything) >= len(singleton)
