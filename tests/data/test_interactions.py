"""Tests for the interaction data model and splitting."""

import numpy as np
import pytest

from repro.data import (EvalSample, SequenceCorpus, UserSequence,
                        leave_one_out_split, training_prefixes)


def seq(user_id, *baskets):
    return UserSequence(user_id=user_id,
                        baskets=tuple(tuple(b) for b in baskets))


class TestUserSequence:
    def test_rejects_padding_item(self):
        with pytest.raises(ValueError):
            seq(0, [0])

    def test_rejects_empty_basket(self):
        with pytest.raises(ValueError):
            seq(0, [])

    def test_lengths(self):
        s = seq(0, [1], [2, 3], [4])
        assert s.length == 3
        assert s.num_interactions == 4
        assert s.items() == [1, 2, 3, 4]


class TestSequenceCorpus:
    def test_vocabulary_validated(self):
        with pytest.raises(ValueError):
            SequenceCorpus(num_items=3, sequences=[seq(0, [5])])

    def test_statistics(self):
        corpus = SequenceCorpus(num_items=4, sequences=[
            seq(0, [1], [2]), seq(1, [3], [4], [1], [2])])
        assert corpus.num_users == 2
        assert corpus.num_interactions == 6
        assert corpus.average_sequence_length == pytest.approx(3.0)
        assert corpus.sparsity == pytest.approx(1 - 6 / (2 * 4))

    def test_item_popularity(self):
        corpus = SequenceCorpus(num_items=3, sequences=[
            seq(0, [1], [1]), seq(1, [2])])
        pop = corpus.item_popularity()
        assert pop[0] == 0
        assert pop[1] == 2
        assert pop[2] == 1
        assert pop[3] == 0

    def test_empty_corpus(self):
        corpus = SequenceCorpus(num_items=5)
        assert corpus.average_sequence_length == 0.0
        assert corpus.sparsity == 1.0

    def test_iteration(self):
        corpus = SequenceCorpus(num_items=2, sequences=[seq(0, [1])])
        assert len(corpus) == 1
        assert list(corpus)[0].user_id == 0


class TestLeaveOneOutSplit:
    def test_holdout_positions(self):
        corpus = SequenceCorpus(num_items=5, sequences=[
            seq(0, [1], [2], [3], [4])])
        split = leave_one_out_split(corpus)
        assert split.test[0].target == (4,)
        assert split.test[0].history == ((1,), (2,), (3,))
        assert split.validation[0].target == (3,)
        assert split.validation[0].history == ((1,), (2,))
        assert split.train.sequences[0].baskets == ((1,), (2,))

    def test_short_sequences_stay_in_train(self):
        corpus = SequenceCorpus(num_items=5, sequences=[seq(0, [1], [2])])
        split = leave_one_out_split(corpus)
        assert not split.test
        assert split.train.sequences[0].length == 2

    def test_min_length_validation(self):
        corpus = SequenceCorpus(num_items=2)
        with pytest.raises(ValueError):
            leave_one_out_split(corpus, min_length=2)

    def test_split_sizes(self, tiny_dataset):
        split = leave_one_out_split(tiny_dataset.corpus)
        assert len(split.test) == len(split.validation)
        assert split.train.num_users == tiny_dataset.corpus.num_users
        # Held-out baskets removed from training.
        assert (split.train.num_interactions
                < tiny_dataset.corpus.num_interactions)


class TestTrainingPrefixes:
    def test_expansion_count(self):
        corpus = SequenceCorpus(num_items=5, sequences=[
            seq(0, [1], [2], [3])])
        samples = training_prefixes(corpus)
        assert len(samples) == 2
        assert samples[0].history == ((1,),)
        assert samples[0].target == (2,)
        assert samples[1].history == ((1,), (2,))
        assert samples[1].target == (3,)

    def test_max_history_truncates(self):
        corpus = SequenceCorpus(num_items=9, sequences=[
            seq(0, [1], [2], [3], [4], [5])])
        samples = training_prefixes(corpus, max_history=2)
        last = samples[-1]
        assert len(last.history) == 2
        assert last.history == ((3,), (4,))

    def test_single_step_sequence_yields_nothing(self):
        corpus = SequenceCorpus(num_items=2, sequences=[seq(0, [1])])
        assert training_prefixes(corpus) == []
