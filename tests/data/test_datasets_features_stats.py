"""Tests for dataset profiles, raw features and statistics."""

import numpy as np
import pytest

from repro.data import (DATASET_NAMES, PAPER_STATISTICS,
                        cluster_feature_coherence, compare_to_paper,
                        compute_statistics, dataset_config,
                        gps_like_features, load_dataset,
                        sequence_length_histogram, text_like_features)
from repro.data.stats import basket_size_distribution


class TestDatasetProfiles:
    def test_all_five_profiles_exist(self):
        assert set(DATASET_NAMES) == {"epinions", "foursquare", "patio",
                                      "baby", "video"}

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            dataset_config("netflix")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            dataset_config("baby", scale=0.0)

    def test_scale_changes_size(self):
        small = dataset_config("video", scale=0.02)
        large = dataset_config("video", scale=0.2)
        assert large.num_users > small.num_users
        assert large.num_items > small.num_items

    def test_relative_sizes_track_paper(self):
        """At a real scale, the profile order matches Table II's order."""
        configs = {name: dataset_config(name, scale=0.3)
                   for name in DATASET_NAMES}
        assert configs["video"].num_users > configs["baby"].num_users
        assert configs["baby"].num_users > configs["patio"].num_users
        assert configs["video"].num_items > configs["baby"].num_items

    def test_foursquare_uses_gps(self):
        assert dataset_config("foursquare").feature_kind == "gps"
        assert dataset_config("baby").feature_kind == "text"

    def test_load_dataset_end_to_end(self):
        ds = load_dataset("patio", scale=0.02, seed=3)
        assert ds.name == "patio"
        assert ds.corpus.num_users >= 30
        assert ds.features.shape[0] == ds.num_items + 1


class TestFeatures:
    def test_text_coherence(self):
        rng = np.random.default_rng(0)
        clusters = np.array([-1] + [i % 4 for i in range(40)])
        clusters_safe = clusters * (clusters >= 0)
        feats = text_like_features(clusters_safe, 8, rng)
        within, between = cluster_feature_coherence(feats, clusters)
        assert within > between + 0.3

    def test_gps_shape(self):
        rng = np.random.default_rng(1)
        clusters = np.array([0, 0, 1, 1, 2])
        feats = gps_like_features(clusters, rng)
        assert feats.shape == (5, 2)
        np.testing.assert_allclose(feats[0], 0.0)

    def test_padding_row_zero(self):
        rng = np.random.default_rng(2)
        feats = text_like_features(np.array([0, 1, 2]), 4, rng)
        np.testing.assert_allclose(feats[0], 0.0)


class TestStatistics:
    def test_table2_row(self, tiny_dataset):
        stats = compute_statistics("tiny", tiny_dataset.corpus)
        row = stats.as_row()
        assert row[0] == "tiny"
        assert row[1] == tiny_dataset.corpus.num_users
        assert row[5].endswith("%")

    def test_histogram_total(self, tiny_dataset):
        hist = sequence_length_histogram(tiny_dataset.corpus)
        assert sum(hist.values()) == tiny_dataset.corpus.num_users

    def test_histogram_buckets_disjoint(self, tiny_dataset):
        hist = sequence_length_histogram(tiny_dataset.corpus,
                                         bins=(1, 3, 5, 10**9))
        assert sum(hist.values()) == tiny_dataset.corpus.num_users
        assert set(hist) == {"1-2", "3-4", "5+"}

    def test_basket_size_distribution(self, tiny_dataset):
        dist = basket_size_distribution(tiny_dataset.corpus)
        total = sum(dist.values())
        assert total == sum(s.length for s in tiny_dataset.corpus)
        assert 1 in dist

    def test_compare_to_paper(self):
        ds = load_dataset("baby", scale=0.05, seed=1)
        stats = compute_statistics("baby", ds.corpus)
        ratios = compare_to_paper(stats, PAPER_STATISTICS["baby"])
        assert 0.0 < ratios["users_ratio"] < 0.2
        assert 0.5 < ratios["seqlen_ratio"] < 3.0
