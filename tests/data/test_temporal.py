"""Tests for the regime-shift generator (dynamic-graph experiments)."""

import numpy as np
import pytest

from repro.causal import is_dag
from repro.data import (SimulatorConfig, generate_regime_shift_dataset,
                        graph_change_magnitude)


@pytest.fixture(scope="module")
def shifted():
    config = SimulatorConfig(num_users=60, num_items=40, num_clusters=4,
                             edge_prob=0.5, mean_sequence_length=8.0,
                             causal_follow_prob=0.8, seed=3)
    return generate_regime_shift_dataset(config, rewire_fraction=0.5)


class TestRegimeShift:
    def test_both_graphs_are_dags(self, shifted):
        assert is_dag(shifted.early_graph)
        assert is_dag(shifted.cluster_graph)

    def test_graphs_actually_differ(self, shifted):
        assert graph_change_magnitude(shifted) > 0.0
        assert not np.array_equal(shifted.early_graph, shifted.cluster_graph)

    def test_corpus_valid(self, shifted):
        assert shifted.corpus.num_users == 60
        for seq in shifted.corpus:
            assert seq.length >= shifted.config.min_sequence_length - 1

    def test_cause_log_aligned(self, shifted):
        for seq, causes in zip(shifted.corpus, shifted.cause_log):
            assert len(causes) == seq.length

    def test_early_causes_respect_early_graph(self, shifted):
        """Causal triggers in the early phase follow the early regime."""
        clusters = shifted.cluster_of_item
        violations, total = 0, 0
        for seq, causes in zip(shifted.corpus, shifted.cause_log):
            split_at = max(1, int(round(seq.length * shifted.shift_fraction)))
            for basket, cause_map in list(zip(seq.baskets, causes))[:split_at]:
                for item in basket:
                    for trigger in cause_map[item]:
                        total += 1
                        if not shifted.early_graph[clusters[trigger],
                                                   clusters[item]]:
                            violations += 1
        if total:
            assert violations == 0

    def test_reproducible(self):
        config = SimulatorConfig(num_users=20, num_items=20, num_clusters=4,
                                 seed=8)
        a = generate_regime_shift_dataset(config)
        b = generate_regime_shift_dataset(config)
        assert [s.baskets for s in a.corpus] == [s.baskets for s in b.corpus]
        np.testing.assert_array_equal(a.early_graph, b.early_graph)

    def test_features_shared_across_regimes(self, shifted):
        assert shifted.features.shape[0] == shifted.num_items + 1


class TestDynamicModelOnShiftedData:
    def test_dynamic_causer_handles_shifted_data(self, shifted):
        """End-to-end: DynamicCauser trains and predicts on regime-shift
        data (the workload the extension exists for)."""
        from repro.core import CauserConfig, DynamicCauser
        from repro.data import leave_one_out_split
        from repro.eval import evaluate_model
        split = leave_one_out_split(shifted.corpus)
        model = DynamicCauser(shifted.corpus.num_users, shifted.num_items,
                              shifted.features,
                              CauserConfig(embedding_dim=8, hidden_dim=8,
                                           num_epochs=3, num_clusters=4,
                                           epsilon=0.2, eta=0.5, seed=0),
                              num_segments=2)
        model.fit(split.train)
        result = evaluate_model(model, split.test, z=5)
        assert result.mean("hit") > 5 / shifted.num_items
