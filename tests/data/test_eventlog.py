"""Tests for the out-of-core columnar event log (repro.data.eventlog).

The contracts under test, in order of importance:

* shard-parallel generation is bit-identical to serial at any worker
  count (same shard files, byte for byte);
* the eventlog backend is observationally equivalent to the in-memory
  corpus built from the same per-user seed streams — same statistics,
  same leave-one-out splits, same training batches, and therefore the
  same loss trajectory through a real model;
* the writer validates its input and the header is versioned.
"""

import json

import numpy as np
import pytest

from repro.data import (BehaviorSimulator, SimulatorConfig, EventLogWriter,
                        generate_eventlog, iterate_batches,
                        load_eventlog_dataset, open_eventlog, pad_samples,
                        training_prefixes)
from repro.data.interactions import leave_one_out_split

CONFIG = SimulatorConfig(num_users=60, num_items=80, num_clusters=6, seed=11)


@pytest.fixture(scope="module")
def log_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("eventlog") / "corpus"
    generate_eventlog(CONFIG, path, users_per_shard=25)
    return path


@pytest.fixture(scope="module")
def memory_dataset():
    # user_seeds=True draws every user from the same keyed streams the
    # event-log generator uses — the in-memory twin of the shards.
    return BehaviorSimulator(CONFIG).generate(user_seeds=True)


class TestWriterValidation:
    def test_user_ids_must_increase(self, tmp_path):
        writer = EventLogWriter(tmp_path / "log", num_items=10)
        writer.add_user(4, [[1, 2]])
        with pytest.raises(ValueError, match="strictly increasing"):
            writer.add_user(4, [[3]])

    def test_empty_basket_rejected(self, tmp_path):
        writer = EventLogWriter(tmp_path / "log", num_items=10)
        with pytest.raises(ValueError, match="non-empty"):
            writer.add_user(0, [[1], []])

    def test_item_range_enforced(self, tmp_path):
        writer = EventLogWriter(tmp_path / "log", num_items=10)
        with pytest.raises(ValueError, match=r"\[1, 10\]"):
            writer.add_user(0, [[11]])
        with pytest.raises(ValueError, match=r"\[1, 10\]"):
            writer.add_user(0, [[0]])

    def test_ts_must_be_dense(self, tmp_path):
        writer = EventLogWriter(tmp_path / "log", num_items=10)
        with pytest.raises(ValueError, match="start at basket index 0"):
            writer.add_user_columns(0, np.array([1], dtype=np.int32),
                                    np.array([1], dtype=np.int32))
        with pytest.raises(ValueError, match="dense basket indices"):
            writer.add_user_columns(0, np.array([1, 2], dtype=np.int32),
                                    np.array([0, 2], dtype=np.int32))

    def test_empty_log_rejected(self, tmp_path):
        writer = EventLogWriter(tmp_path / "log", num_items=10)
        with pytest.raises(ValueError, match="zero events"):
            writer.close()

    def test_refuses_to_overwrite(self, tmp_path):
        with EventLogWriter(tmp_path / "log", num_items=10) as writer:
            writer.add_user(0, [[1]])
        with pytest.raises(FileExistsError):
            EventLogWriter(tmp_path / "log", num_items=10)

    def test_shard_rotation_at_user_boundary(self, tmp_path):
        with EventLogWriter(tmp_path / "log", num_items=10,
                            shard_events=3) as writer:
            for user in range(4):
                writer.add_user(user, [[1, 2], [3]])  # 3 events each
        store = open_eventlog(tmp_path / "log")
        assert store.num_shards == 4
        assert [s["users"] for s in store.shards] == [1, 1, 1, 1]


class TestHeaderVersioning:
    def test_bad_version_rejected(self, tmp_path):
        with EventLogWriter(tmp_path / "log", num_items=10) as writer:
            writer.add_user(0, [[1]])
        header_path = tmp_path / "log" / "header.json"
        header = json.loads(header_path.read_text())
        header["format_version"] = 99
        header_path.write_text(json.dumps(header))
        with pytest.raises(ValueError, match="version"):
            open_eventlog(tmp_path / "log")

    def test_bad_format_rejected(self, tmp_path):
        with EventLogWriter(tmp_path / "log", num_items=10) as writer:
            writer.add_user(0, [[1]])
        header_path = tmp_path / "log" / "header.json"
        header = json.loads(header_path.read_text())
        header["format"] = "something.else"
        header_path.write_text(json.dumps(header))
        with pytest.raises(ValueError, match="format"):
            open_eventlog(tmp_path / "log")


class TestParallelBitIdentity:
    """The acceptance contract: worker count never changes the bytes."""

    def test_any_worker_count_same_bytes(self, tmp_path):
        stores = {}
        for workers in (1, 2, 3):
            path = tmp_path / f"w{workers}"
            stores[workers] = generate_eventlog(
                CONFIG, path, users_per_shard=25, workers=workers)
        checksums = {w: s.checksum() for w, s in stores.items()}
        assert len(set(checksums.values())) == 1
        # Belt and braces: compare the raw shard files too.
        serial_files = sorted(p.name for p in stores[1].path.iterdir()
                              if p.suffix == ".npy")
        for workers in (2, 3):
            for name in serial_files:
                assert ((stores[workers].path / name).read_bytes()
                        == (stores[1].path / name).read_bytes()), name

    def test_shard_size_does_not_change_users(self, tmp_path):
        coarse = generate_eventlog(CONFIG, tmp_path / "coarse")
        fine = generate_eventlog(CONFIG, tmp_path / "fine",
                                 users_per_shard=7)
        assert coarse.num_shards == 1 and fine.num_shards == 9
        for (ga, ia, ta), (gb, ib, tb) in zip(coarse.iter_users(),
                                              fine.iter_users()):
            assert ga == gb
            assert np.array_equal(ia, ib) and np.array_equal(ta, tb)


class TestBackendEquivalence:
    def test_statistics_match(self, log_dir, memory_dataset):
        corpus = open_eventlog(log_dir).corpus()
        mem = memory_dataset.corpus
        assert corpus.num_users == mem.num_users
        assert corpus.num_items == mem.num_items
        assert corpus.num_interactions == mem.num_interactions
        assert corpus.average_sequence_length == mem.average_sequence_length
        assert np.array_equal(corpus.sequence_lengths(),
                              mem.sequence_lengths())
        assert np.array_equal(corpus.item_popularity(), mem.item_popularity())

    def test_baskets_match(self, log_dir, memory_dataset):
        corpus = open_eventlog(log_dir).corpus()
        for seq_log, seq_mem in zip(corpus, memory_dataset.corpus.sequences):
            assert seq_log.user_id == seq_mem.user_id
            assert seq_log.baskets == seq_mem.baskets

    def test_features_and_truth_match(self, log_dir, memory_dataset):
        dataset = load_eventlog_dataset(log_dir)
        assert np.array_equal(dataset.features, memory_dataset.features)
        assert np.array_equal(dataset.cluster_of_item,
                              memory_dataset.cluster_of_item)
        assert np.array_equal(dataset.cluster_graph,
                              memory_dataset.cluster_graph)

    def test_split_matches(self, log_dir, memory_dataset):
        split_log = leave_one_out_split(open_eventlog(log_dir).corpus())
        split_mem = leave_one_out_split(memory_dataset.corpus)
        for kind in ("validation", "test"):
            view = getattr(split_log, kind)
            samples = getattr(split_mem, kind)
            assert len(view) == len(samples)
            assert list(view) == list(samples)
        # The training corpus hides the same two baskets per user.
        assert np.array_equal(split_log.train.sequence_lengths(),
                              np.fromiter((len(s.baskets)
                                           for s in split_mem.train.sequences),
                                          dtype=np.int64))
        assert np.array_equal(split_log.train.item_popularity(),
                              split_mem.train.item_popularity())

    def test_training_prefixes_match(self, log_dir, memory_dataset):
        split_log = leave_one_out_split(open_eventlog(log_dir).corpus())
        split_mem = leave_one_out_split(memory_dataset.corpus)
        view = training_prefixes(split_log.train, max_history=10)
        samples = training_prefixes(split_mem.train, max_history=10)
        assert len(view) == len(samples)
        assert list(view) == samples
        # Random access agrees with iteration.
        assert view[0] == samples[0]
        assert view[len(view) - 1] == samples[-1]
        assert list(view[3:7]) == samples[3:7]

    def test_gather_batch_bit_identical_to_pad_samples(self, log_dir,
                                                       memory_dataset):
        split_log = leave_one_out_split(open_eventlog(log_dir).corpus())
        split_mem = leave_one_out_split(memory_dataset.corpus)
        view = training_prefixes(split_log.train)
        samples = training_prefixes(split_mem.train)
        batches_log = list(iterate_batches(view, 16,
                                           np.random.default_rng(5),
                                           max_history=8))
        batches_mem = list(iterate_batches(samples, 16,
                                           np.random.default_rng(5),
                                           max_history=8))
        assert len(batches_log) == len(batches_mem)
        for got, want in zip(batches_log, batches_mem):
            for field in ("users", "items", "basket_mask", "step_mask",
                          "positives", "positive_mask"):
                a, b = getattr(got, field), getattr(want, field)
                assert a.dtype == b.dtype, field
                assert np.array_equal(a, b), field

    def test_loss_trajectories_match(self, log_dir, memory_dataset):
        from repro.models import GRU4Rec, TrainConfig
        cfg = TrainConfig(embedding_dim=8, hidden_dim=8, num_epochs=3,
                          batch_size=16, seed=0)
        losses = {}
        for backend, corpus in (
                ("eventlog", open_eventlog(log_dir).corpus()),
                ("memory", memory_dataset.corpus)):
            split = leave_one_out_split(corpus)
            model = GRU4Rec(corpus.num_users, corpus.num_items, cfg)
            losses[backend] = model.fit(split.train).epoch_losses
        assert losses["eventlog"] == losses["memory"]


class TestPrefixSampleView:
    def test_gather_batch_without_max_history(self, log_dir):
        view = training_prefixes(open_eventlog(log_dir).corpus())
        indices = np.arange(min(12, len(view)))
        batch = view.gather_batch(indices)
        reference = pad_samples([view[int(i)] for i in indices])
        assert np.array_equal(batch.items, reference.items)
        assert np.array_equal(batch.positives, reference.positives)

    def test_length_counts_prefixes(self, log_dir, memory_dataset):
        view = training_prefixes(open_eventlog(log_dir).corpus())
        expected = sum(len(s.baskets) - 1
                       for s in memory_dataset.corpus.sequences)
        assert len(view) == expected


class TestOnlineExport:
    def test_export_columnar_roundtrip(self, tmp_path):
        from repro.online import EventLog
        log = EventLog(tmp_path / "log")
        log.append(7, [2, 5])
        log.append(1, [9])
        log.append(7, [4])
        log.append(1, [])  # empty baskets carry no signal: dropped
        store = log.export_columnar(tmp_path / "columnar", num_items=10)
        log.close()
        assert store.num_users == 2
        assert store.num_events == 4
        users = {gid: (items.tolist(), ts.tolist())
                 for gid, items, ts in store.iter_users()}
        assert users == {1: ([9], [0]), 7: ([2, 5, 4], [0, 0, 1])}

    def test_export_replays_into_corpus(self, tmp_path):
        from repro.online import EventLog
        log = EventLog(tmp_path / "log")
        for user in range(4):
            for basket in ([1, 2], [3], [4]):
                log.append(user, basket)
        corpus = log.export_columnar(tmp_path / "columnar",
                                     num_items=5).corpus()
        log.close()
        assert corpus.num_users == 4
        assert corpus.num_interactions == 16
        split = leave_one_out_split(corpus)
        assert len(split.test) == 4


class TestDataCli:
    def test_generate_and_inspect(self, tmp_path, capsys):
        from repro.data.__main__ import main
        out = tmp_path / "cli-log"
        assert main(["generate", "--users", "30", "--items", "40",
                     "--seed", "2", "--out", str(out),
                     "--users-per-shard", "12"]) == 0
        assert main(["inspect", str(out), "--head", "3"]) == 0
        printed = capsys.readouterr().out
        assert "30" in printed and "shards (3)" in printed

    def test_generate_requires_sizing(self):
        from repro.data.__main__ import main
        with pytest.raises(SystemExit):
            main(["generate", "--out", "/tmp/never-created"])
