"""Quickstart: train Causer on a synthetic dataset and inspect the results.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Causer, CauserConfig
from repro.data import (SimulatorConfig, generate_dataset,
                        leave_one_out_split)
from repro.eval import evaluate_model


def main() -> None:
    # 1. Generate a dataset from a known cluster-level causal graph.
    data_config = SimulatorConfig(num_users=400, num_items=120,
                                  num_clusters=6, edge_prob=0.4,
                                  mean_sequence_length=7.0,
                                  causal_follow_prob=0.8, seed=42)
    dataset = generate_dataset(data_config, name="quickstart")
    print(f"dataset: {dataset.corpus.num_users} users, "
          f"{dataset.num_items} items, "
          f"{dataset.corpus.num_interactions} interactions")
    print("ground-truth cluster causal graph:")
    print(dataset.cluster_graph)

    # 2. Leave-one-out split (paper protocol: last basket is the test target).
    split = leave_one_out_split(dataset.corpus)

    # 3. Train Causer with a GRU backbone.
    config = CauserConfig(embedding_dim=16, hidden_dim=16, num_epochs=10,
                          batch_size=128, num_clusters=6, epsilon=0.2,
                          eta=0.5, lambda_l1=0.001, seed=0, verbose=True)
    model = Causer(dataset.corpus.num_users, dataset.num_items,
                   dataset.features, config)
    model.fit(split.train)

    # 4. Evaluate with the paper's metrics (F1@5, NDCG@5).
    result = evaluate_model(model, split.test, z=5)
    print(f"\nF1@5   = {100 * result.mean('f1'):.2f}%")
    print(f"NDCG@5 = {100 * result.mean('ndcg'):.2f}%")
    print(f"HR@5   = {100 * result.mean('hit'):.2f}%")

    # 5. Recommend for one user and show the learned causal graph.
    sample = split.test[0]
    recommendations = model.recommend([sample], z=5)[0]
    print(f"\nuser {sample.user_id}: history={sample.history} "
          f"-> recommended {recommendations}, true target {sample.target}")

    learned = model.learned_cluster_graph(threshold=0.2)
    print("\nlearned cluster causal graph (thresholded at 0.2):")
    print((learned > 0).astype(int))


if __name__ == "__main__":
    main()
