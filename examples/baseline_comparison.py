"""Mini Table IV: compare Causer with the baselines on one dataset profile.

Run:  python examples/baseline_comparison.py [dataset]
where dataset is one of: epinions, foursquare, patio, baby, video.
"""

import sys

from repro.exp import BenchmarkSettings, render_table, run_models
from repro.data import load_dataset

MODELS = ("Pop", "BPR", "NCF", "GRU4Rec", "NARM", "STAMP", "SASRec",
          "VTRNN", "MMSARec", "Causer (LSTM)", "Causer (GRU)")


def main(dataset_name: str = "baby") -> None:
    settings = BenchmarkSettings(scale=0.05, num_epochs=12)
    dataset = load_dataset(dataset_name, scale=settings.scale,
                           seed=settings.data_seed)
    print(f"dataset {dataset_name}: {dataset.corpus.num_users} users, "
          f"{dataset.num_items} items")
    runs = run_models(MODELS, dataset, settings)
    rows = [(run.model_name, run.f1, run.ndcg, f"{run.fit_seconds:.1f}s")
            for run in runs]
    print(render_table(("model", "F1@5 (%)", "NDCG@5 (%)", "train"), rows,
                       title=f"Mini Table IV — {dataset_name}"))
    best = max(runs, key=lambda run: run.ndcg)
    print(f"\nbest NDCG@5: {best.model_name} ({best.ndcg:.2f}%)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "baby")
