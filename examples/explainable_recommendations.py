"""Explainable recommendations (the paper's §V-E protocol).

Trains Causer on the Baby profile, derives a labeled explanation dataset
from the simulator's ground truth, evaluates explanation quality (Fig. 7)
and prints qualitative case studies (Fig. 8).

Run:  python examples/explainable_recommendations.py
"""

from repro.core import (Causer, format_case_study, make_explainer)
from repro.data import (average_causes_per_sample, build_explanation_dataset,
                        leave_one_out_split, load_dataset)
from repro.eval import evaluate_explanations
from repro.exp import BenchmarkSettings


def main() -> None:
    settings = BenchmarkSettings(scale=0.05, num_epochs=10)
    dataset = load_dataset("baby", scale=settings.scale,
                           seed=settings.data_seed)
    split = leave_one_out_split(dataset.corpus)

    samples = build_explanation_dataset(dataset, max_samples=793)
    print(f"labeled explanation dataset: {len(samples)} samples, "
          f"avg {average_causes_per_sample(samples):.1f} causes each "
          f"(paper: 793 samples, avg 1.8)")

    model = Causer(dataset.corpus.num_users, dataset.num_items,
                   dataset.features, settings.causer_config("baby"))
    print("training Causer (GRU)...")
    model.fit(split.train)

    # Quantitative comparison (Fig. 7): the three explanation mechanisms.
    print("\nexplanation quality (top-3 vs labeled causes):")
    for mode, label in (("full", "Causer (W_hat * alpha)"),
                        ("causal", "Causer -att (W_hat only)"),
                        ("attention", "Causer -causal (alpha only)")):
        outcome = evaluate_explanations(samples, make_explainer(model, mode),
                                        k=3)
        print(f"  {label:30s} F1@3={100 * outcome.f1:5.2f}%  "
              f"NDCG@3={100 * outcome.ndcg:5.2f}%")

    # Qualitative case studies (Fig. 8).
    print("\ncase studies:")
    interesting = sorted(samples, key=lambda s: -len(s.history_items))[:3]
    for i, sample in enumerate(interesting, start=1):
        print(f"\n--- case {i} ---")
        print(format_case_study(model, sample))


if __name__ == "__main__":
    main()
