"""Using the library on your own interaction logs.

Shows how to build a :class:`SequenceCorpus` from raw (user, item, time)
event logs, attach item features, and train both a baseline and Causer —
the path a downstream user takes when the data does not come from the
bundled simulator.

Run:  python examples/custom_dataset.py
"""

from collections import defaultdict

import numpy as np

from repro.core import Causer, CauserConfig
from repro.data import SequenceCorpus, UserSequence, leave_one_out_split
from repro.eval import evaluate_model
from repro.models import GRU4Rec, TrainConfig


def fake_event_log(rng: np.random.Generator, num_events: int = 6000):
    """Stand-in for reading a CSV of (user_id, item_id, timestamp) events.

    Events follow simple motifs (item 2k -> item 2k+1) so the models have
    something learnable.
    """
    events = []
    for _ in range(num_events // 2):
        user = int(rng.integers(0, 250))
        base = int(rng.integers(0, 40)) * 2 + 1          # odd "cause" item
        t = float(rng.random())
        events.append((user, base, t))
        events.append((user, base + 1, t + 0.001))       # its "effect"
    return events


def build_corpus(events):
    """Group events by user, order by time, merge same-timestamp baskets."""
    per_user = defaultdict(list)
    for user, item, timestamp in events:
        per_user[user].append((timestamp, item))
    sequences = []
    max_item = 0
    for user, rows in sorted(per_user.items()):
        rows.sort()
        baskets, current, current_time = [], [], None
        for timestamp, item in rows:
            max_item = max(max_item, item)
            if current and timestamp - current_time > 0.01:
                baskets.append(tuple(dict.fromkeys(current)))
                current = []
            current.append(item)
            current_time = timestamp
        if current:
            baskets.append(tuple(dict.fromkeys(current)))
        if len(baskets) >= 3:
            sequences.append(UserSequence(user_id=user,
                                          baskets=tuple(baskets)))
    return SequenceCorpus(num_items=max_item, sequences=sequences)


def main() -> None:
    rng = np.random.default_rng(0)
    corpus = build_corpus(fake_event_log(rng))
    print(f"built corpus: {corpus.num_users} users, {corpus.num_items} items, "
          f"{corpus.num_interactions} interactions, "
          f"sparsity {100 * corpus.sparsity:.1f}%")

    split = leave_one_out_split(corpus)

    # Without item descriptions, any feature matrix works as raw features —
    # here random vectors (Causer's encoder learns on top of them).
    features = rng.normal(size=(corpus.num_items + 1, 12)) * 0.3
    features[0] = 0.0

    baseline = GRU4Rec(corpus.num_users + 1, corpus.num_items,
                       TrainConfig(embedding_dim=16, hidden_dim=16,
                                   num_epochs=8, seed=0))
    baseline.fit(split.train)
    baseline_result = evaluate_model(baseline, split.test, z=5)

    causer = Causer(corpus.num_users + 1, corpus.num_items, features,
                    CauserConfig(embedding_dim=16, hidden_dim=16,
                                 num_epochs=8, num_clusters=8, epsilon=0.2,
                                 eta=0.5, seed=0))
    causer.fit(split.train)
    causer_result = evaluate_model(causer, split.test, z=5)

    print(f"GRU4Rec NDCG@5 = {100 * baseline_result.mean('ndcg'):.2f}%")
    print(f"Causer  NDCG@5 = {100 * causer_result.mean('ndcg'):.2f}%")


if __name__ == "__main__":
    main()
