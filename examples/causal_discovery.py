"""Standalone causal discovery with NOTEARS (§II-B / Theorem 1 demo).

Simulates data from a random ground-truth DAG, recovers the structure with
the linear NOTEARS solver and verifies Markov equivalence — the empirical
counterpart of the paper's identifiability analysis.

Run:  python examples/causal_discovery.py
"""

import numpy as np

from repro.causal import (evaluate_structure, notears_linear, random_dag,
                          run_identifiability_study, simulate_linear_sem,
                          standardize, weighted_dag)


def single_recovery_demo() -> None:
    rng = np.random.default_rng(7)
    truth = random_dag(num_nodes=8, edge_prob=0.3, rng=rng)
    weights = weighted_dag(truth, rng)
    data = standardize(simulate_linear_sem(weights, num_samples=2000,
                                           rng=rng))

    print(f"ground truth: {truth.sum()} edges over 8 nodes")
    result = notears_linear(data, lambda1=0.05)
    print(f"NOTEARS finished in {result.iterations} outer iterations, "
          f"h(W) = {result.h_final:.2e}")

    metrics = evaluate_structure(truth, result.adjacency)
    print(f"SHD                 = {metrics.shd}")
    print(f"skeleton F1         = {metrics.skeleton_f1:.3f}")
    print(f"v-structure recall  = {metrics.v_structure_recall:.3f}")
    print(f"Markov equivalent   = {metrics.markov_equivalent}")


def identifiability_sweep() -> None:
    print("\nTheorem 1 empirically: MEC recovery rate vs sample size")
    reports = run_identifiability_study(num_nodes=6,
                                        sample_sizes=(100, 500, 2000),
                                        trials_per_size=3)
    print(f"{'samples':>8} | {'MEC rate':>8} | {'mean SHD':>8} | skeleton F1")
    for report in reports:
        summary = report.summary()
        print(f"{summary['num_samples']:>8} | "
              f"{summary['mec_recovery_rate']:>8.2f} | "
              f"{summary['mean_shd']:>8.2f} | "
              f"{summary['mean_skeleton_f1']:.3f}")


if __name__ == "__main__":
    single_recovery_demo()
    identifiability_sweep()
