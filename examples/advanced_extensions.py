"""Advanced extensions beyond the paper's main experiments.

1. **Dynamic causal graph** (§VI future work): a recency-segmented W^c —
   recent and old history steps use different causal snapshots.
2. **PC vs NOTEARS**: the two causal-discovery families the paper
   contrasts in §IV, compared on the same synthetic SEM.
3. **Model persistence**: save a trained Causer and reload for inference.

Run:  python examples/advanced_extensions.py
"""

import tempfile

import numpy as np

from repro.causal import (cpdag, evaluate_structure, notears_linear,
                          pc_algorithm, random_dag, simulate_linear_sem,
                          standardize, weighted_dag)
from repro.core import Causer, CauserConfig, DynamicCauser
from repro.data import SimulatorConfig, generate_dataset, leave_one_out_split
from repro.eval import evaluate_model
from repro.io import load_model, save_model


def dynamic_graph_demo() -> None:
    print("=== 1. Dynamic (recency-segmented) causal graph ===")
    dataset = generate_dataset(SimulatorConfig(num_users=300, num_items=90,
                                               num_clusters=5, seed=13),
                               name="dynamic-demo")
    split = leave_one_out_split(dataset.corpus)
    config = CauserConfig(embedding_dim=16, hidden_dim=16, num_epochs=8,
                          num_clusters=5, epsilon=0.2, eta=0.5, seed=0)

    static = Causer(dataset.corpus.num_users, dataset.num_items,
                    dataset.features, config)
    static.fit(split.train)
    static_result = evaluate_model(static, split.test, z=5)

    dynamic = DynamicCauser(dataset.corpus.num_users, dataset.num_items,
                            dataset.features, config, num_segments=2,
                            recent_window=3)
    dynamic.fit(split.train)
    dynamic_result = evaluate_model(dynamic, split.test, z=5)

    print(f"static  Causer NDCG@5 = {100 * static_result.mean('ndcg'):.2f}%")
    print(f"dynamic Causer NDCG@5 = {100 * dynamic_result.mean('ndcg'):.2f}%")
    print(f"graph drift between segments: {dynamic.graph_drift():.4f}")


def pc_vs_notears_demo() -> None:
    print("\n=== 2. PC (constraint-based) vs NOTEARS (score-based) ===")
    rng = np.random.default_rng(21)
    truth = random_dag(7, 0.3, rng)
    data = standardize(simulate_linear_sem(weighted_dag(truth, rng),
                                           2000, rng))
    pc_pattern = pc_algorithm(data, alpha=0.05).cpdag
    notears = notears_linear(data, lambda1=0.05)
    true_pattern = cpdag(truth)

    pc_agree = (pc_pattern == true_pattern).mean()
    nt_metrics = evaluate_structure(truth, notears.adjacency)
    print(f"PC      CPDAG agreement with truth: {100 * pc_agree:.1f}%")
    print(f"NOTEARS SHD={nt_metrics.shd}, "
          f"Markov equivalent={nt_metrics.markov_equivalent}")


def persistence_demo() -> None:
    print("\n=== 3. Save / load a trained model ===")
    dataset = generate_dataset(SimulatorConfig(num_users=120, num_items=40,
                                               num_clusters=4, seed=5),
                               name="persist-demo")
    split = leave_one_out_split(dataset.corpus)
    model = Causer(dataset.corpus.num_users, dataset.num_items,
                   dataset.features,
                   CauserConfig(embedding_dim=8, hidden_dim=8, num_epochs=3,
                                num_clusters=4, epsilon=0.2, seed=0))
    model.fit(split.train)
    with tempfile.NamedTemporaryFile(suffix=".npz") as handle:
        save_model(model, handle.name)
        restored = load_model(handle.name)
    original = model.recommend(split.test[:1], z=5)
    reloaded = restored.recommend(split.test[:1], z=5)
    print(f"recommendations before save: {original[0]}")
    print(f"recommendations after load:  {reloaded[0]}")
    assert original == reloaded


if __name__ == "__main__":
    dynamic_graph_demo()
    pc_vs_notears_demo()
    persistence_demo()
