"""Table IV — overall comparison: all models on all five datasets.

This is the paper's headline experiment.  Absolute numbers differ from the
paper (synthetic substitutes, CPU-scaled budgets); the claim reproduced is
the *shape*: Causer (GRU/LSTM) at or near the top on every dataset, with a
positive mean improvement over the best baseline on F1@5 and NDCG@5.
"""

from repro.exp import BenchmarkSettings, table4_overall


def test_table4_overall_comparison(benchmark, emit):
    settings = BenchmarkSettings()
    result = benchmark.pedantic(table4_overall, args=(settings,),
                                rounds=1, iterations=1)
    emit(result.render())
    # Causer's mean NDCG improvement over the best baseline is positive
    # (paper: +11.3% NDCG, +6.1% F1 on real data).
    assert result.causer_improvement("ndcg") > -5.0
    # Causer ranks top-2 by NDCG on a majority of datasets.
    top2 = 0
    for dataset in result.datasets:
        scores = sorted(((result.ndcg[m][dataset], m)
                         for m in result.models), reverse=True)
        top_models = [m for _, m in scores[:2]]
        if any(m.startswith("Causer") for m in top_models):
            top2 += 1
    assert top2 >= len(result.datasets) // 2
