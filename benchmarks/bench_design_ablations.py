"""Ablations of this reproduction's own design choices (DESIGN.md §5).

* graph pre-seeding from transition lift (on/off),
* filtering mode quality: shared (fast) vs cluster (strict-per-cluster),
* slow causal updates (update_every 1 vs 2 vs 10) — quality impact.
"""

import numpy as np

from repro.core import Causer
from repro.data import leave_one_out_split, load_dataset
from repro.eval import evaluate_model
from repro.exp import BenchmarkSettings, render_table


def _run(dataset, split, settings, **overrides):
    config = settings.causer_config("baby", **overrides)
    model = Causer(dataset.corpus.num_users, dataset.num_items,
                   dataset.features, config)
    model.fit(split.train)
    result = evaluate_model(model, split.test, z=settings.z)
    return 100.0 * result.mean("ndcg")


def test_design_choice_ablations(benchmark, emit):
    settings = BenchmarkSettings()
    dataset = load_dataset("baby", scale=settings.scale,
                           seed=settings.data_seed)
    split = leave_one_out_split(dataset.corpus)

    def run_all():
        rows = []
        rows.append(("pretrain seed ON (default)",
                     _run(dataset, split, settings, pretrain_graph=True)))
        rows.append(("pretrain seed OFF",
                     _run(dataset, split, settings, pretrain_graph=False)))
        rows.append(("filtering=shared (default)",
                     _run(dataset, split, settings,
                          filtering_mode="shared")))
        rows.append(("filtering=cluster (strict)",
                     _run(dataset, split, settings,
                          filtering_mode="cluster")))
        rows.append(("update_every=1",
                     _run(dataset, split, settings, update_every=1)))
        rows.append(("update_every=2",
                     _run(dataset, split, settings, update_every=2)))
        rows.append(("update_every=10",
                     _run(dataset, split, settings, update_every=10)))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(render_table(("design choice", "NDCG@5 (%)"), rows,
                      title="Reproduction design-choice ablations (baby)"))
    values = [v for _, v in rows]
    assert all(np.isfinite(v) for v in values)
    # Every configuration remains in a sane band (no catastrophic choice).
    assert min(values) > 0.25 * max(values)
