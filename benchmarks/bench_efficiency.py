"""§III-C efficiency study: slow causal updates and inference overhead.

Paper claims: updating Θ_a/W^c every ten epochs speeds training ~22%;
Causer inference costs ~1.16× SASRec.  We reproduce both measurements on
equal scaled workloads, plus the filtering-mode ablation from DESIGN.md.
"""

import numpy as np

from repro.core import Causer
from repro.data import leave_one_out_split, load_dataset, pad_samples
from repro.exp import BenchmarkSettings, efficiency_study


def test_efficiency_study(benchmark, emit):
    settings = BenchmarkSettings()
    result = benchmark.pedantic(efficiency_study, args=(settings,),
                                rounds=1, iterations=1)
    emit(result.render())
    # Slow updates must not be slower than per-epoch updates.
    assert (result.train_slow_updates_seconds
            <= result.train_every_epoch_seconds * 1.1)
    # Inference overhead stays within a small factor of SASRec.
    assert result.inference_ratio < 5.0


def test_filtering_mode_costs(benchmark, emit):
    """DESIGN.md ablation: shared vs cluster vs strict scoring cost."""
    import time

    settings = BenchmarkSettings()
    dataset = load_dataset("baby", scale=settings.scale,
                           seed=settings.data_seed)
    split = leave_one_out_split(dataset.corpus)
    samples = split.test[:64]
    batch = pad_samples(samples, max_history=settings.max_history)
    candidates = np.tile(np.arange(1, dataset.num_items + 1), (64, 1))

    model = Causer(dataset.corpus.num_users, dataset.num_items,
                   dataset.features, settings.causer_config("baby"))
    model.fit(split.train)

    timings = {}
    def time_mode(mode):
        model.config.filtering_mode = mode
        start = time.perf_counter()
        if mode == "strict":
            model.candidate_logits_strict(batch, candidates)
        else:
            model.candidate_logits(batch, candidates)
        return time.perf_counter() - start

    def run_all():
        for mode in ("shared", "cluster", "strict"):
            timings[mode] = time_mode(mode)
        return timings

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["Filtering-mode scoring cost (64 users, full catalog):"]
    for mode, seconds in timings.items():
        lines.append(f"  {mode:8s} {seconds:8.3f}s "
                     f"({seconds / timings['shared']:.1f}x shared)")
    emit("\n".join(lines))
    assert timings["shared"] <= timings["strict"]
