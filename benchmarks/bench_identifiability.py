"""Theorem 1 — empirical identifiability of the learned causal graph.

Runs NOTEARS on linear-SEM data from random ground-truth DAGs across
sample sizes; recovery of the true Markov equivalence class should improve
with data, as Theorem 1 predicts in the infinite-data limit.
"""

from repro.causal import run_identifiability_study
from repro.exp import render_table


def test_identifiability_study(benchmark, emit):
    reports = benchmark.pedantic(
        run_identifiability_study,
        kwargs={"num_nodes": 7, "sample_sizes": (100, 500, 2000),
                "trials_per_size": 3, "base_seed": 0},
        rounds=1, iterations=1)
    rows = [(r.num_samples, r.mec_recovery_rate, r.mean_shd,
             r.mean_skeleton_f1) for r in reports]
    emit(render_table(("samples", "MEC recovery", "mean SHD", "skeleton F1"),
                      rows, title="Theorem 1 — identifiability vs sample size"))
    small, _, large = reports
    assert large.mean_skeleton_f1 >= small.mean_skeleton_f1 - 0.05
    assert large.mec_recovery_rate >= 2 / 3
