"""Scalability ablation: cluster-level vs item-level causal graphs.

The paper's motivation for clustering (§III, difficulty (1)): a |V|x|V|
item-level graph is intractable to store/optimize.  We measure the cost of
one acyclicity evaluation and one eq.-9 expansion at growing catalog sizes
for both representations.
"""

import time

import numpy as np

from repro.causal import h_value
from repro.exp import render_table

CATALOG_SIZES = (100, 300, 1000)
NUM_CLUSTERS = 10


def _cluster_level_cost(num_items: int, rng) -> float:
    assignments = rng.dirichlet(np.ones(NUM_CLUSTERS), size=num_items)
    cluster_graph = rng.random((NUM_CLUSTERS, NUM_CLUSTERS)) * 0.3
    start = time.perf_counter()
    h_value(cluster_graph)                      # DAG constraint on K x K
    _ = assignments @ cluster_graph @ assignments.T   # eq. 9 expansion
    return time.perf_counter() - start


def _item_level_cost(num_items: int, rng) -> float:
    item_graph = rng.random((num_items, num_items)) * (0.5 / num_items)
    start = time.perf_counter()
    h_value(item_graph)                         # DAG constraint on |V| x |V|
    return time.perf_counter() - start


def test_cluster_vs_item_level_scalability(benchmark, emit):
    rng = np.random.default_rng(0)

    def run_all():
        rows = []
        for size in CATALOG_SIZES:
            cluster = _cluster_level_cost(size, rng)
            item = _item_level_cost(size, rng)
            rows.append((size, cluster, item,
                         item / max(cluster, 1e-9)))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(render_table(("|V|", "cluster-level (s)", "item-level (s)",
                       "item/cluster ratio"), rows,
                      title="Scalability — acyclicity + eq. 9 cost",
                      float_format="{:.4f}"))
    # Item-level cost explodes with |V|; cluster-level stays ~flat.
    assert rows[-1][3] > rows[0][3]
    assert rows[-1][2] > rows[-1][1]
