"""Table II — dataset statistics for the five scaled profiles.

Regenerates the paper's statistics table (users, items, interactions,
average sequence length, sparsity) and times dataset generation.
"""

from repro.exp import BenchmarkSettings, table2_statistics


def test_table2_dataset_statistics(benchmark, emit):
    settings = BenchmarkSettings()
    result = benchmark.pedantic(table2_statistics, args=(settings,),
                                rounds=1, iterations=1)
    emit(result.render())
    assert len(result.rows) == 5
    # Every profile preserves Table II's extreme-sparsity character.
    for row in result.rows:
        sparsity = float(row[5].rstrip("%"))
        assert sparsity > 80.0
