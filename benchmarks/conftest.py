"""Shared benchmark fixtures.

``emit`` prints rendered tables through the captured-output barrier and
archives them under ``benchmarks/results/`` so every bench run leaves the
regenerated paper tables on disk.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit(capsys, request):
    """Print visibly and archive the rendered experiment output."""
    def _emit(text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        out_file = RESULTS_DIR / f"{request.node.name}.txt"
        out_file.write_text(text + "\n")
        with capsys.disabled():
            print("\n" + text)
    return _emit
