"""§VI future-work extension: dynamic causal graphs on regime-shift data.

Generates a corpus whose cluster-level causal graph is *rewired* halfway
through every user's sequence, then compares the static Causer against the
recency-segmented DynamicCauser.  The dynamic variant can track the two
regimes with separate graphs; the static one must average them.
"""

import numpy as np

from repro.core import Causer, CauserConfig, DynamicCauser
from repro.data import (SimulatorConfig, generate_regime_shift_dataset,
                        graph_change_magnitude, leave_one_out_split)
from repro.eval import evaluate_model
from repro.exp import render_table


def test_dynamic_vs_static_on_regime_shift(benchmark, emit):
    config = SimulatorConfig(num_users=500, num_items=150, num_clusters=6,
                             edge_prob=0.5, mean_sequence_length=9.0,
                             causal_follow_prob=0.8, noise_prob=0.1, seed=2)
    dataset = generate_regime_shift_dataset(config, rewire_fraction=0.6)
    split = leave_one_out_split(dataset.corpus)
    model_config = CauserConfig(embedding_dim=16, hidden_dim=16,
                                num_epochs=10, batch_size=128,
                                num_clusters=6, epsilon=0.2, eta=0.5,
                                lambda_l1=0.001, seed=0)

    def run_both():
        static = Causer(dataset.corpus.num_users, dataset.num_items,
                        dataset.features, model_config)
        static.fit(split.train)
        static_ndcg = 100 * evaluate_model(static, split.test, z=5).mean("ndcg")

        dynamic = DynamicCauser(dataset.corpus.num_users, dataset.num_items,
                                dataset.features, model_config,
                                num_segments=2, recent_window=4)
        dynamic.fit(split.train)
        dynamic_ndcg = 100 * evaluate_model(dynamic, split.test,
                                            z=5).mean("ndcg")
        return static_ndcg, dynamic_ndcg, dynamic.graph_drift()

    static_ndcg, dynamic_ndcg, drift = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    rows = [
        ("graph change between regimes",
         f"{100 * graph_change_magnitude(dataset):.0f}% of edge slots"),
        ("static Causer NDCG@5 (%)", static_ndcg),
        ("dynamic Causer NDCG@5 (%)", dynamic_ndcg),
        ("learned segment drift", drift),
    ]
    emit(render_table(("quantity", "value"), rows,
                      title="Dynamic causal graphs on regime-shift data"))
    assert np.isfinite(static_ndcg) and np.isfinite(dynamic_ndcg)
    # The dynamic variant must not lose badly to static on its home turf.
    assert dynamic_ndcg >= 0.8 * static_ndcg
    assert drift >= 0.0
