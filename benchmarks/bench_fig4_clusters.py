"""Figure 4 — influence of the latent cluster count K.

Paper finding: inverted-U; Baby (homogeneous items) peaks at small K
(4-6), Epinions (diverse items) needs more clusters (15-20); extreme K in
either direction hurts.
"""

import numpy as np

from repro.exp import BenchmarkSettings, figure4_cluster_sweep

K_VALUES = (2, 3, 5, 8, 16, 32)


def test_fig4_cluster_count_sweep(benchmark, emit):
    settings = BenchmarkSettings(num_epochs=8)
    result = benchmark.pedantic(
        figure4_cluster_sweep,
        kwargs={"settings": settings, "values": K_VALUES},
        rounds=1, iterations=1)
    emit(result.render())
    for label, series in result.ndcg.items():
        assert len(series) == len(K_VALUES)
        assert all(np.isfinite(v) for v in series)
    # Shape check (§V-C1's inverted-U): on at least half of the curves an
    # interior K matches or beats both extremes, within run-to-run noise.
    humped = 0
    for label in result.ndcg:
        series = result.ndcg[label]
        interior_best = max(series[1:-1])
        if interior_best >= min(series[0], series[-1]) - 0.3:
            humped += 1
    assert humped >= len(result.ndcg) // 2
