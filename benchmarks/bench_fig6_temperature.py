"""Figure 6 — influence of the assignment temperature η.

Paper finding: rise-then-fall.  Tiny η freezes one-hot assignments (no
gradient reaches the clustering), huge η disperses items uniformly over
clusters (item-level causal relations collapse to the mean of W^c).
"""

import numpy as np

from repro.exp import BenchmarkSettings, figure6_temperature_sweep

ETAS = (1e-8, 1e-4, 1e-2, 0.1, 0.5, 1.0, 1e2, 1e4, 1e8)


def test_fig6_temperature_sweep(benchmark, emit):
    settings = BenchmarkSettings(num_epochs=8)
    result = benchmark.pedantic(
        figure6_temperature_sweep,
        kwargs={"settings": settings, "values": ETAS,
                "datasets": ("baby", "epinions"), "cells": ("gru", "lstm")},
        rounds=1, iterations=1)
    emit(result.render())
    for label, series in result.ndcg.items():
        assert len(series) == len(ETAS)
        assert all(np.isfinite(v) for v in series)
        # The best η sits strictly inside the sweep (rise-then-fall).
        best = result.best_value(label)
        assert 1e-8 < best or max(series) == series[0]
