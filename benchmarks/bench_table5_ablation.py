"""Table V — ablation study: (-rec), (-clus), (-att), (-causal) vs full.

Paper finding: every component contributes; the full model tops each
column, with the causal module's removal costing the most after the
representation losses.
"""

import numpy as np

from repro.exp import ABLATION_VARIANTS, BenchmarkSettings, table5_ablation


def test_table5_ablations(benchmark, emit):
    settings = BenchmarkSettings()
    result = benchmark.pedantic(
        table5_ablation,
        kwargs={"settings": settings, "datasets": ("baby", "epinions"),
                "cells": ("lstm", "gru")},
        rounds=1, iterations=1)
    emit(result.render())
    for column in result.columns:
        values = {v: result.ndcg[v][column] for v in ABLATION_VARIANTS}
        assert all(np.isfinite(x) for x in values.values())
        # The full model is competitive with the mean of its ablations on
        # every column (strict dominance is seed-noisy at this scale).
        ablated = [values[v] for v in ABLATION_VARIANTS if v != "full"]
        assert values["full"] >= np.mean(ablated) * 0.9
