"""Figure 5 — influence of the causal-filter threshold ε.

Paper finding: moderate ε balances the number of surviving training
signals against their causal purity; very large ε filters everything and
collapses performance.
"""

import numpy as np

from repro.exp import BenchmarkSettings, figure5_epsilon_sweep

EPSILONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def test_fig5_epsilon_sweep(benchmark, emit):
    settings = BenchmarkSettings(num_epochs=8)
    result = benchmark.pedantic(
        figure5_epsilon_sweep,
        kwargs={"settings": settings, "values": EPSILONS,
                "datasets": ("baby", "epinions"), "cells": ("gru", "lstm")},
        rounds=1, iterations=1)
    emit(result.render())
    for label, series in result.ndcg.items():
        assert len(series) == len(EPSILONS)
        # ε = 0.9 filters essentially everything: never above the best.
        assert max(series) >= series[-1]
    # On at least half of the curves the optimum strictly beats the
    # filter-everything limit, at a moderate threshold.
    strict = [label for label, series in result.ndcg.items()
              if max(series) > series[-1] + 1e-9
              and result.best_value(label) <= 0.7]
    assert len(strict) >= len(result.ndcg) // 2
