"""Figure 8 — qualitative explanation case studies.

Prints per-history-item Ŵ, α and combined scores for selected test cases,
marking the ground-truth causes — the textual analogue of the paper's
picture-based case studies.
"""

from repro.exp import BenchmarkSettings, figure8_case_studies


def test_fig8_case_studies(benchmark, emit):
    settings = BenchmarkSettings()
    result = benchmark.pedantic(
        figure8_case_studies,
        kwargs={"settings": settings, "num_cases": 4},
        rounds=1, iterations=1)
    emit(result.render())
    assert len(result.cases) == 4
    for case in result.cases:
        assert "true causes" in case
        assert "W_hat" in case
