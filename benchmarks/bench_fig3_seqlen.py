"""Figure 3 — sequence-length distributions of the five profiles."""

from repro.exp import BenchmarkSettings, figure3_sequence_lengths


def test_fig3_sequence_length_distributions(benchmark, emit):
    settings = BenchmarkSettings()
    result = benchmark.pedantic(figure3_sequence_lengths, args=(settings,),
                                rounds=1, iterations=1)
    emit(result.render())
    assert set(result.histograms) == {"epinions", "foursquare", "patio",
                                      "baby", "video"}
    # Foursquare skews long (paper: 52.7 avg), the Amazon profiles short.
    def mass_at_least(hist, cutoff):
        total = sum(hist.values())
        long_buckets = {"8-11": 0, "12-19": 0, "20-49": 0, "50+": 0}
        return sum(v for k, v in hist.items()
                   if k in long_buckets) / max(total, 1)

    assert (mass_at_least(result.histograms["foursquare"], 8)
            > mass_at_least(result.histograms["baby"], 8))
