"""Figure 7 — quantitative explanation evaluation.

The labeled set is derived from the simulator's ground-truth causes
(substituting the paper's 793 human-labeled Baby samples); explanation
scores are Ŵ·α (full), Ŵ (-att) and α (-causal), top-3 vs labels.
"""

import numpy as np

from repro.exp import BenchmarkSettings, figure7_explanation


def test_fig7_explanation_quality(benchmark, emit):
    settings = BenchmarkSettings()
    result = benchmark.pedantic(
        figure7_explanation,
        kwargs={"settings": settings, "cells": ("lstm", "gru")},
        rounds=1, iterations=1)
    emit(result.render())
    assert result.num_samples > 50
    assert 1.0 <= result.avg_causes <= 3.0
    for label in result.f1:
        assert 0.0 <= result.f1[label] <= 100.0
        assert 0.0 <= result.ndcg[label] <= 100.0
    # Causally-informed explainers beat chance-level top-3 picking.
    for cell in ("lstm", "gru"):
        assert result.ndcg[f"Causer/{cell}"] > 25.0
