"""Out-of-core data pipeline benchmarks (eventlog vs in-memory).

Measures, at 100k / 1M / 10M interactions:

* **generation throughput** — events/s simulating straight to columnar
  shards (``repro.data.eventlog.generate_eventlog``) vs materialising the
  in-memory corpus from the same per-user seed streams;
* **batch-iteration throughput** — training rows/s for one epoch of
  ``iterate_batches`` over ``training_prefixes``, streamed from memmaps
  (``gather_batch``) vs padded from Python baskets (``pad_samples``);
* **peak RSS** — each workload runs in its own subprocess, so
  ``ru_maxrss`` isolates that workload's resident footprint (the parent's
  allocator high-water mark never leaks in).

The acceptance contract recorded in ``BENCH_data.json``: at 10M
interactions the eventlog backend iterates with **peak RSS < 25%** of the
in-memory backend's and **>= 80%** of its rows/s, and shard-parallel
generation is **bit-identical** to serial (equal store checksums).

Usage::

    python benchmarks/bench_data_pipeline.py --out BENCH_data.json
    python benchmarks/bench_data_pipeline.py --sizes 100k 1m
    python benchmarks/bench_data_pipeline.py --quick   # CI smoke (~1 min)

The pytest entry (``pytest benchmarks/bench_data_pipeline.py``) runs the
quick profile end-to-end and validates the emitted document schema.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

BATCH_SIZE = 256
MAX_HISTORY = 20

#: Interaction-count profiles.  ``users`` is calibrated so the simulator's
#: ~9.8 events/user lands at or above the nominal interaction count.
SIZES: Dict[str, Dict[str, int]] = {
    "quick": {"users": 2_000, "items": 1_000, "clusters": 8},
    "100k": {"users": 10_500, "items": 3_000, "clusters": 10},
    "1m": {"users": 103_000, "items": 10_000, "clusters": 12},
    "10m": {"users": 1_030_000, "items": 30_000, "clusters": 16},
}


def _config(size: str):
    from repro.data import SimulatorConfig
    spec = SIZES[size]
    return SimulatorConfig(num_users=spec["users"], num_items=spec["items"],
                           num_clusters=spec["clusters"],
                           mean_sequence_length=8.0, seed=0)


# ----------------------------------------------------------------------
# Workloads — each runs in a fresh subprocess and prints one JSON object
# with {"wall_s", "rss_peak_kb", ...workload counters}.
# ----------------------------------------------------------------------
def _workload_generate_eventlog(size: str, path: str,
                                workers: Optional[int]) -> Dict:
    from repro.bench import peak_rss_kb
    from repro.data import generate_eventlog
    start = time.perf_counter()
    store = generate_eventlog(_config(size), path, workers=workers)
    wall = time.perf_counter() - start
    return {"wall_s": wall, "rss_peak_kb": peak_rss_kb(),
            "events": store.num_events, "users": store.num_users,
            "shards": store.num_shards, "checksum": store.checksum()}


def _workload_generate_memory(size: str) -> Dict:
    from repro.bench import peak_rss_kb
    from repro.data import BehaviorSimulator
    start = time.perf_counter()
    dataset = BehaviorSimulator(_config(size)).generate(user_seeds=True)
    wall = time.perf_counter() - start
    return {"wall_s": wall, "rss_peak_kb": peak_rss_kb(),
            "events": dataset.corpus.num_interactions,
            "users": dataset.corpus.num_users}


def _iterate_epoch(corpus) -> Dict:
    import numpy as np

    from repro.data import iterate_batches, training_prefixes
    from repro.data.interactions import leave_one_out_split
    split = leave_one_out_split(corpus)
    samples = training_prefixes(split.train, max_history=MAX_HISTORY)
    rows = 0
    start = time.perf_counter()
    for batch in iterate_batches(samples, BATCH_SIZE,
                                 np.random.default_rng(0),
                                 max_history=MAX_HISTORY):
        rows += batch.batch_size
    return {"wall_s": time.perf_counter() - start, "rows": rows}


def _workload_iterate_eventlog(path: str) -> Dict:
    from repro.bench import peak_rss_kb
    from repro.data import open_eventlog
    result = _iterate_epoch(open_eventlog(path).corpus())
    result["rss_peak_kb"] = peak_rss_kb()
    return result


def _workload_iterate_memory(size: str) -> Dict:
    from repro.bench import peak_rss_kb
    from repro.data import BehaviorSimulator
    dataset = BehaviorSimulator(_config(size)).generate(user_seeds=True)
    result = _iterate_epoch(dataset.corpus)
    result["rss_peak_kb"] = peak_rss_kb()
    return result


def _run_worker(spec: Dict) -> Dict:
    kind = spec["kind"]
    if kind == "generate_eventlog":
        return _workload_generate_eventlog(spec["size"], spec["path"],
                                           spec.get("workers"))
    if kind == "generate_memory":
        return _workload_generate_memory(spec["size"])
    if kind == "iterate_eventlog":
        return _workload_iterate_eventlog(spec["path"])
    if kind == "iterate_memory":
        return _workload_iterate_memory(spec["size"])
    raise SystemExit(f"unknown workload kind {kind!r}")


def _spawn(spec: Dict) -> Dict:
    """Run one workload in a fresh interpreter; return its JSON result."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__),
         "--worker", json.dumps(spec)],
        env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(f"workload {spec} failed:\n{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])


def _bench_entry(name: str, result: Dict, meta: Dict) -> Dict:
    """One repro.bench/v1 bench entry from a single subprocess sample."""
    wall = float(result["wall_s"])
    merged = dict(meta)
    for key in ("events", "users", "rows", "shards"):
        if key in result:
            merged[key] = result[key]
    if "events" in result:
        merged["events_per_s"] = round(result["events"] / wall, 1)
    if "rows" in result:
        merged["rows_per_s"] = round(result["rows"] / wall, 1)
    return {"mean_s": wall, "std_s": 0.0, "min_s": wall, "wall_s": [wall],
            "repeats": 1, "warmup": 0,
            "rss_peak_kb": int(result["rss_peak_kb"]), "meta": merged}


def run_sizes(sizes: List[str], out: Optional[str],
              quick: bool = False) -> Dict:
    from repro.bench import harness
    benches: Dict[str, Dict] = {}
    summary: Dict[str, Dict] = {}
    workdir = tempfile.mkdtemp(prefix="bench-data-")
    try:
        for size in sizes:
            log_path = os.path.join(workdir, f"log-{size}")
            gen_log = _spawn({"kind": "generate_eventlog", "size": size,
                              "path": log_path, "workers": 1})
            gen_mem = _spawn({"kind": "generate_memory", "size": size})
            iter_log = _spawn({"kind": "iterate_eventlog",
                               "path": log_path})
            iter_mem = _spawn({"kind": "iterate_memory", "size": size})
            # Bit-identity probe: regenerate shard-parallel, compare
            # checksums, then drop the duplicate.
            par_path = os.path.join(workdir, f"log-{size}-par")
            gen_par = _spawn({"kind": "generate_eventlog", "size": size,
                              "path": par_path, "workers": 2})
            shutil.rmtree(par_path)

            benches[f"generate_eventlog_{size}"] = _bench_entry(
                f"generate_eventlog_{size}", gen_log,
                {"backend": "eventlog", "workers": 1, "quick": quick,
                 "headline": size == "10m"})
            benches[f"generate_memory_{size}"] = _bench_entry(
                f"generate_memory_{size}", gen_mem,
                {"backend": "memory", "quick": quick})
            benches[f"iterate_eventlog_{size}"] = _bench_entry(
                f"iterate_eventlog_{size}", iter_log,
                {"backend": "eventlog", "batch_size": BATCH_SIZE,
                 "max_history": MAX_HISTORY, "quick": quick,
                 "headline": size == "10m"})
            benches[f"iterate_memory_{size}"] = _bench_entry(
                f"iterate_memory_{size}", iter_mem,
                {"backend": "memory", "batch_size": BATCH_SIZE,
                 "max_history": MAX_HISTORY, "quick": quick})

            rows_log = iter_log["rows"] / iter_log["wall_s"]
            rows_mem = iter_mem["rows"] / iter_mem["wall_s"]
            summary[size] = {
                "events": gen_log["events"],
                "shards": gen_log["shards"],
                "generate_eventlog_events_per_s": round(
                    gen_log["events"] / gen_log["wall_s"], 1),
                "generate_memory_events_per_s": round(
                    gen_mem["events"] / gen_mem["wall_s"], 1),
                "iterate_eventlog_rows_per_s": round(rows_log, 1),
                "iterate_memory_rows_per_s": round(rows_mem, 1),
                "iterate_rows_ratio": round(rows_log / rows_mem, 3),
                "iterate_rss_ratio": round(
                    iter_log["rss_peak_kb"] / iter_mem["rss_peak_kb"], 3),
                "parallel_checksum_matches_serial": (
                    gen_par["checksum"] == gen_log["checksum"]),
            }
            print(f"[{size}] events={gen_log['events']:,} "
                  f"gen {summary[size]['generate_eventlog_events_per_s']:,} ev/s  "
                  f"iter {summary[size]['iterate_eventlog_rows_per_s']:,} rows/s "
                  f"(memory {summary[size]['iterate_memory_rows_per_s']:,})  "
                  f"rss ratio {summary[size]['iterate_rss_ratio']}  "
                  f"parallel==serial: "
                  f"{summary[size]['parallel_checksum_matches_serial']}")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    doc = {
        "schema": harness.SCHEMA,
        "suite": "data_pipeline",
        "quick": bool(quick),
        "env": harness.environment(),
        "benches": benches,
        "summary": {
            "sizes": summary,
            "scaling_note": (
                "single-CPU container: shard-parallel generation is run "
                "for its bit-identity contract (checksums above), not for "
                "speedup; on multi-core hosts shards generate concurrently "
                "with the same bytes"),
            "acceptance": _acceptance(summary),
        },
    }
    problems = harness.validate_document(doc)
    if problems:
        raise RuntimeError(f"invalid bench document: {problems}")
    if out:
        harness.write_json(doc, out)
        print(f"wrote {out}")
    return doc


def _acceptance(summary: Dict[str, Dict]) -> Dict[str, object]:
    """The ISSUE's acceptance gates, evaluated on the largest size run."""
    largest = list(summary)[-1]
    row = summary[largest]
    return {
        "size": largest,
        "rss_ratio_below_0.25": row["iterate_rss_ratio"] < 0.25,
        "rows_ratio_above_0.80": row["iterate_rows_ratio"] >= 0.80,
        "parallel_bit_identical": row["parallel_checksum_matches_serial"],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the out-of-core data pipeline.")
    parser.add_argument("--sizes", nargs="+", default=["100k", "1m", "10m"],
                        choices=sorted(SIZES))
    parser.add_argument("--quick", action="store_true",
                        help="single tiny profile for CI smoke runs")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the repro.bench/v1 document here")
    parser.add_argument("--worker", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.worker:
        print(json.dumps(_run_worker(json.loads(args.worker))))
        return 0
    sizes = ["quick"] if args.quick else args.sizes
    run_sizes(sizes, args.out, quick=args.quick)
    return 0


# ----------------------------------------------------------------------
# pytest entry: the quick profile, end to end, schema-validated.
# ----------------------------------------------------------------------
def test_quick_pipeline_document(tmp_path):
    from repro.bench import harness
    out = str(tmp_path / "BENCH_data.json")
    doc = run_sizes(["quick"], out, quick=True)
    assert harness.validate_document(harness.load_json(out)) == []
    row = doc["summary"]["sizes"]["quick"]
    assert row["parallel_checksum_matches_serial"]
    assert row["iterate_rss_ratio"] < 1.0
    assert doc["benches"]["iterate_eventlog_quick"]["meta"]["rows"] > 0


if __name__ == "__main__":
    sys.exit(main())
