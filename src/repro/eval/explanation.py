"""Explanation-quality evaluation (the paper's Fig. 7 protocol).

For each labeled sample, a model produces explanation scores over the
history items of the target; the top-3 items are compared with the labeled
cause set using F1@3 and NDCG@3 — the same metrics as recommendation but
over history positions rather than the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..data.explanation import ExplanationSample
from . import metrics as M

#: Signature of an explainer: given a sample, return a score per history
#: item (aligned with ``sample.history_items``); larger = stronger cause.
ExplainerFn = Callable[[ExplanationSample], np.ndarray]


@dataclass
class ExplanationEvalResult:
    """Mean F1@k / NDCG@k of explanations against labeled causes."""

    k: int
    f1: float
    ndcg: float
    per_sample_f1: List[float]
    per_sample_ndcg: List[float]

    def as_percentages(self) -> Dict[str, float]:
        return {"f1": 100.0 * self.f1, "ndcg": 100.0 * self.ndcg}


def top_k_history_items(sample: ExplanationSample, scores: np.ndarray,
                        k: int) -> List[int]:
    """Highest-scoring distinct history items (stable on ties).

    Duplicate items in the history keep their best-scoring occurrence.
    """
    items = sample.history_items
    if len(scores) != len(items):
        raise ValueError(
            f"scores length {len(scores)} != history length {len(items)}")
    best: Dict[int, float] = {}
    for item, score in zip(items, scores):
        if item not in best or score > best[item]:
            best[item] = float(score)
    ranked = sorted(best, key=lambda it: (-best[it], it))
    return ranked[:k]


def evaluate_explanations(samples: Sequence[ExplanationSample],
                          explainer: ExplainerFn,
                          k: int = 3) -> ExplanationEvalResult:
    """Run ``explainer`` over labeled samples and score the top-k choices."""
    if not samples:
        raise ValueError("no explanation samples provided")
    per_f1: List[float] = []
    per_ndcg: List[float] = []
    for sample in samples:
        scores = np.asarray(explainer(sample), dtype=np.float64)
        picked = top_k_history_items(sample, scores, k)
        relevant = set(sample.cause_items)
        per_f1.append(M.f1_at_z(picked, relevant))
        per_ndcg.append(M.ndcg_at_z(picked, relevant))
    return ExplanationEvalResult(k=k,
                                 f1=M.mean_metric(per_f1),
                                 ndcg=M.mean_metric(per_ndcg),
                                 per_sample_f1=per_f1,
                                 per_sample_ndcg=per_ndcg)
