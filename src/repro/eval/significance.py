"""Statistical significance: the paper's paired t-test (p < 0.05 marker).

Multi-seed runs (:func:`multi_seed_evaluation`) re-train one model under
several seeds — in parallel through :mod:`repro.parallel` when asked — and
:func:`pooled_paired_t_test` compares two such run sets on the pooled
per-user metric vectors, which is the sturdier version of the paper's
single-run significance star.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class PairedTestResult:
    """Outcome of a paired comparison between two models' per-user metrics."""

    t_statistic: float
    p_value: float
    mean_difference: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha

    @property
    def star(self) -> str:
        """The paper's '*' marker for p < 0.05 improvements."""
        return "*" if self.significant() and self.mean_difference > 0 else ""


def paired_t_test(model_values: Sequence[float],
                  baseline_values: Sequence[float]) -> PairedTestResult:
    """Two-sided paired t-test on per-user metric values.

    Degenerate inputs (length < 2 or identical vectors) return p = 1.0
    rather than NaN, so table-rendering code never trips on edge cases.
    """
    a = np.asarray(model_values, dtype=np.float64)
    b = np.asarray(baseline_values, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"paired test needs equal lengths, got {a.shape} vs {b.shape}")
    mean_diff = float((a - b).mean()) if a.size else 0.0
    if a.size < 2 or np.allclose(a, b):
        return PairedTestResult(t_statistic=0.0, p_value=1.0,
                                mean_difference=mean_diff)
    t_stat, p_value = stats.ttest_rel(a, b)
    if np.isnan(p_value):
        return PairedTestResult(t_statistic=0.0, p_value=1.0,
                                mean_difference=mean_diff)
    return PairedTestResult(t_statistic=float(t_stat), p_value=float(p_value),
                            mean_difference=mean_diff)


def _seeded_model_run(seed: int, model_name: str, dataset, settings):
    """Train/evaluate ``model_name`` with ``model_seed=seed`` (picklable)."""
    from ..exp.runner import run_model
    return run_model(model_name, dataset, replace(settings, model_seed=seed))


def multi_seed_evaluation(model_name: str, dataset, settings,
                          seeds: Sequence[int],
                          workers: Optional[int] = 1,
                          timeout: Optional[float] = None) -> List:
    """One :class:`~repro.exp.runner.RunResult` per seed, in seed order.

    Each seed is an independent task, so ``workers`` > 1 fans the runs out
    one process per seed through :func:`repro.parallel.map_seeds`;
    ``workers=1`` runs them serially with identical results.
    """
    from ..parallel import map_seeds
    return map_seeds(_seeded_model_run, seeds, model_name, dataset, settings,
                     workers=workers, timeout=timeout)


def pooled_paired_t_test(runs_a: Sequence, runs_b: Sequence,
                         metric: str = "ndcg") -> PairedTestResult:
    """Paired t-test on per-user metrics pooled across matching seeds.

    ``runs_a[i]`` and ``runs_b[i]`` must come from the same seed and sample
    set (as :func:`multi_seed_evaluation` produces), so user ``u`` under
    seed ``s`` pairs with itself across the two models.
    """
    if len(runs_a) != len(runs_b):
        raise ValueError(f"need matching run lists, got {len(runs_a)} vs "
                         f"{len(runs_b)}")
    values_a = [v for run in runs_a for v in run.result.per_user[metric]]
    values_b = [v for run in runs_b for v in run.result.per_user[metric]]
    return paired_t_test(values_a, values_b)


def bootstrap_confidence_interval(values: Sequence[float],
                                  num_resamples: int = 1000,
                                  alpha: float = 0.05,
                                  seed: int = 0) -> tuple:
    """Percentile bootstrap CI for a metric mean (diagnostic extra)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return (0.0, 0.0)
    rng = np.random.default_rng(seed)
    resamples = rng.choice(arr, size=(num_resamples, arr.size), replace=True)
    means = resamples.mean(axis=1)
    lo, hi = np.quantile(means, [alpha / 2, 1 - alpha / 2])
    return (float(lo), float(hi))
