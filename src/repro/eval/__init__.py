"""`repro.eval` — evaluation harness.

Ranking metrics (F1@Z, NDCG@Z and friends), the model evaluator, paired
t-tests for the paper's significance stars, and the explanation-quality
protocol of Fig. 7.
"""

from .evaluator import EvaluationResult, evaluate_model, evaluate_rankings
from .explanation import (ExplanationEvalResult, evaluate_explanations,
                          top_k_history_items)
from .metrics import (dcg_at_z, f1_at_z, hit_rate_at_z, ideal_dcg,
                      mean_metric, mrr_at_z, ndcg_at_z, precision_at_z,
                      recall_at_z)
from .significance import (PairedTestResult, bootstrap_confidence_interval,
                           multi_seed_evaluation, paired_t_test,
                           pooled_paired_t_test)

__all__ = [
    "precision_at_z", "recall_at_z", "f1_at_z", "dcg_at_z", "ideal_dcg",
    "ndcg_at_z", "hit_rate_at_z", "mrr_at_z", "mean_metric",
    "EvaluationResult", "evaluate_rankings", "evaluate_model",
    "PairedTestResult", "paired_t_test", "bootstrap_confidence_interval",
    "multi_seed_evaluation", "pooled_paired_t_test",
    "ExplanationEvalResult", "evaluate_explanations", "top_k_history_items",
]
