"""Ranking evaluation harness.

Runs a recommender over held-out samples, collects per-user metric values
(for significance testing) and their means.  Models implement the
:class:`~repro.models.base.Recommender` protocol: ``recommend(samples, z)``
returns a ranked item list per sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..data.interactions import EvalSample
from . import metrics as M


@dataclass
class EvaluationResult:
    """Per-user metric traces plus means for one model on one sample set."""

    z: int
    per_user: Dict[str, List[float]] = field(default_factory=dict)

    def mean(self, metric: str) -> float:
        return M.mean_metric(self.per_user.get(metric, []))

    def summary(self) -> Dict[str, float]:
        return {name: self.mean(name) for name in self.per_user}

    def as_percentages(self) -> Dict[str, float]:
        """Paper tables report percentage values with '%' omitted."""
        return {name: 100.0 * value for name, value in self.summary().items()}


def evaluate_rankings(rankings: Sequence[Sequence[int]],
                      samples: Sequence[EvalSample],
                      z: int = 5) -> EvaluationResult:
    """Score precomputed rankings against sample targets."""
    if len(rankings) != len(samples):
        raise ValueError(
            f"got {len(rankings)} rankings for {len(samples)} samples")
    result = EvaluationResult(z=z, per_user={
        "precision": [], "recall": [], "f1": [], "ndcg": [], "hit": [], "mrr": [],
    })
    for ranking, sample in zip(rankings, samples):
        top = list(ranking)[:z]
        relevant = set(sample.target)
        result.per_user["precision"].append(M.precision_at_z(top, relevant))
        result.per_user["recall"].append(M.recall_at_z(top, relevant))
        result.per_user["f1"].append(M.f1_at_z(top, relevant))
        result.per_user["ndcg"].append(M.ndcg_at_z(top, relevant))
        result.per_user["hit"].append(M.hit_rate_at_z(top, relevant))
        result.per_user["mrr"].append(M.mrr_at_z(top, relevant))
    return result


def evaluate_model(model, samples: Sequence[EvalSample], z: int = 5,
                   batch_size: int = 128) -> EvaluationResult:
    """Evaluate a model implementing ``recommend`` over ``samples``."""
    if not samples:
        raise ValueError("cannot evaluate on an empty sample list")
    rankings: List[List[int]] = []
    for start in range(0, len(samples), batch_size):
        chunk = list(samples[start:start + batch_size])
        rankings.extend(model.recommend(chunk, z=z))
    return evaluate_rankings(rankings, samples, z=z)
