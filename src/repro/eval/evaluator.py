"""Ranking evaluation harness.

Runs a recommender over held-out samples, collects per-user metric values
(for significance testing) and their means.  Models implement the
:class:`~repro.models.base.Recommender` protocol: ``recommend(samples, z)``
returns a ranked item list per sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.interactions import EvalSample
from . import metrics as M


@dataclass
class EvaluationResult:
    """Per-user metric traces plus means for one model on one sample set."""

    z: int
    per_user: Dict[str, List[float]] = field(default_factory=dict)

    def mean(self, metric: str) -> float:
        return M.mean_metric(self.per_user.get(metric, []))

    def summary(self) -> Dict[str, float]:
        return {name: self.mean(name) for name in self.per_user}

    def as_percentages(self) -> Dict[str, float]:
        """Paper tables report percentage values with '%' omitted."""
        return {name: 100.0 * value for name, value in self.summary().items()}


def evaluate_rankings(rankings: Sequence[Sequence[int]],
                      samples: Sequence[EvalSample],
                      z: int = 5) -> EvaluationResult:
    """Score precomputed rankings against sample targets.

    All six metrics derive from one membership pass per user (is the i-th
    recommended item relevant?) plus precomputed log-discount tables,
    instead of six independent scans through each ranking.  Agrees with the
    formula-level functions in :mod:`repro.eval.metrics` to rounding.
    """
    if len(rankings) != len(samples):
        raise ValueError(
            f"got {len(rankings)} rankings for {len(samples)} samples")
    result = EvaluationResult(z=z, per_user={
        "precision": [], "recall": [], "f1": [], "ndcg": [], "hit": [], "mrr": [],
    })
    # discounts[i] = 1 / log2(i + 2) for 0-based position i;
    # ideal_cum[k] = DCG of a perfect ranking with k relevant items in top-z.
    discounts = 1.0 / np.log2(np.arange(2, z + 2, dtype=np.float64))
    ideal_cum = np.concatenate([[0.0], np.cumsum(discounts)])
    per_user = result.per_user
    for ranking, sample in zip(rankings, samples):
        top = list(ranking)[:z]
        relevant = set(sample.target)
        hits = np.fromiter((item in relevant for item in top),
                           dtype=np.float64, count=len(top))
        num_hits = float(hits.sum())
        num_rec, num_rel = len(top), len(relevant)
        precision = num_hits / num_rec if num_rec else 0.0
        recall = num_hits / num_rel if num_rel else 0.0
        f1 = (2.0 * precision * recall / (precision + recall)
              if precision + recall else 0.0)
        if num_rel and num_rec:
            ideal = ideal_cum[min(num_rel, num_rec)]
            ndcg = float(hits @ discounts[:num_rec]) / ideal if ideal else 0.0
        else:
            ndcg = 0.0
        first = int(hits.argmax()) if num_hits else -1
        per_user["precision"].append(precision)
        per_user["recall"].append(recall)
        per_user["f1"].append(f1)
        per_user["ndcg"].append(ndcg)
        per_user["hit"].append(1.0 if num_hits else 0.0)
        per_user["mrr"].append(1.0 / (first + 1) if first >= 0 else 0.0)
    return result


def evaluate_model(model, samples: Sequence[EvalSample], z: int = 5,
                   batch_size: int = 128,
                   workers: Optional[int] = 1) -> EvaluationResult:
    """Evaluate a model implementing ``recommend`` over ``samples``.

    ``workers`` > 1 splits the samples into contiguous, batch-aligned
    shards ranked in separate processes (``None`` → CPU-aware default,
    ``0``/``1`` → serial); rankings are reassembled in sample order before
    the single metric pass, so per-user metric arrays are bit-identical
    to the serial path.
    """
    if not samples:
        raise ValueError("cannot evaluate on an empty sample list")
    from ..parallel import evaluate_model_sharded, resolve_workers
    effective = resolve_workers(workers, -(-len(samples) // batch_size))
    if effective > 1:
        return evaluate_model_sharded(model, samples, z, batch_size,
                                      effective)
    rankings: List[List[int]] = []
    for start in range(0, len(samples), batch_size):
        chunk = list(samples[start:start + batch_size])
        rankings.extend(model.recommend(chunk, z=z))
    return evaluate_rankings(rankings, samples, z=z)
