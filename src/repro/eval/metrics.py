"""Ranking metrics: the paper's §V-A formulas.

All metrics compare a ranked recommendation list ``A_u`` (top-Z items) with
the ground-truth set ``B_u``:

* ``P@Z  = |A ∩ B| / |A|``
* ``R@Z  = |A ∩ B| / |B|``
* ``F1@Z = 2 P R / (P + R)`` averaged over users
* ``DCG@Z = Σ_i R(i) / log2(i + 1)`` with binary relevance, normalized by
  the ideal DCG (``NDCG@Z``).

Hit rate and MRR are included as commonly-reported extras.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set

import numpy as np


def precision_at_z(recommended: Sequence[int], relevant: Set[int]) -> float:
    """Fraction of recommended items that are relevant."""
    if not recommended:
        return 0.0
    hits = sum(1 for item in recommended if item in relevant)
    return hits / len(recommended)


def recall_at_z(recommended: Sequence[int], relevant: Set[int]) -> float:
    """Fraction of relevant items that were recommended."""
    if not relevant:
        return 0.0
    hits = sum(1 for item in recommended if item in relevant)
    return hits / len(relevant)


def f1_at_z(recommended: Sequence[int], relevant: Set[int]) -> float:
    """Harmonic mean of precision and recall for one user."""
    precision = precision_at_z(recommended, relevant)
    recall = recall_at_z(recommended, relevant)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def dcg_at_z(recommended: Sequence[int], relevant: Set[int]) -> float:
    """Discounted cumulative gain with binary relevance, positions 1-based."""
    gain = 0.0
    for i, item in enumerate(recommended, start=1):
        if item in relevant:
            gain += 1.0 / np.log2(i + 1)
    return gain


def ideal_dcg(num_relevant: int, z: int) -> float:
    """DCG of the perfect ranking: relevant items fill the top positions."""
    top = min(num_relevant, z)
    return float(sum(1.0 / np.log2(i + 1) for i in range(1, top + 1)))


def ndcg_at_z(recommended: Sequence[int], relevant: Set[int]) -> float:
    """DCG normalized by the ideal DCG for this user's relevant count."""
    if not relevant:
        return 0.0
    ideal = ideal_dcg(len(relevant), len(recommended))
    if ideal == 0.0:
        return 0.0
    return dcg_at_z(recommended, relevant) / ideal


def hit_rate_at_z(recommended: Sequence[int], relevant: Set[int]) -> float:
    """1 if any relevant item appears in the list."""
    return 1.0 if any(item in relevant for item in recommended) else 0.0


def mrr_at_z(recommended: Sequence[int], relevant: Set[int]) -> float:
    """Reciprocal rank of the first relevant item (0 if none)."""
    for i, item in enumerate(recommended, start=1):
        if item in relevant:
            return 1.0 / i
    return 0.0


def mean_metric(per_user_values: Iterable[float]) -> float:
    """Average over users; empty input yields 0."""
    values = list(per_user_values)
    if not values:
        return 0.0
    return float(np.mean(values))
