"""`repro.exp` — the experiment harness.

Per-table/figure reproduction functions (Table II/IV/V, Figures 3–8, the
§III-C efficiency study), a model factory/runner, Table III grid search
and ASCII table rendering.
"""

from .config import (CAUSER_TUNED, PAPER_TUNING_RANGES, BenchmarkSettings,
                     quick_settings)
from .experiments import (ABLATION_VARIANTS, EfficiencyResult, Figure3Result,
                          Figure7Result, Figure8Result, SweepResult,
                          Table2Result, Table4Result, Table5Result,
                          causer_parameter_sweep, efficiency_study,
                          figure3_sequence_lengths, figure4_cluster_sweep,
                          figure5_epsilon_sweep, figure6_temperature_sweep,
                          figure7_explanation, figure8_case_studies,
                          table2_statistics, table4_overall, table5_ablation)
from .grid import GridSearchResult, grid_combinations, grid_search_causer
from .runner import (ALL_MODEL_NAMES, BASELINE_NAMES, CAUSER_NAMES,
                     TABLE4_MODEL_NAMES, RunResult, build_model, run_model,
                     run_models)
from .tables import render_metric_matrix, render_series, render_table

__all__ = [
    "BenchmarkSettings", "quick_settings", "CAUSER_TUNED",
    "PAPER_TUNING_RANGES",
    "Table2Result", "table2_statistics",
    "Figure3Result", "figure3_sequence_lengths",
    "Table4Result", "table4_overall",
    "SweepResult", "causer_parameter_sweep", "figure4_cluster_sweep",
    "figure5_epsilon_sweep", "figure6_temperature_sweep",
    "Table5Result", "table5_ablation", "ABLATION_VARIANTS",
    "Figure7Result", "figure7_explanation",
    "Figure8Result", "figure8_case_studies",
    "EfficiencyResult", "efficiency_study",
    "GridSearchResult", "grid_combinations", "grid_search_causer",
    "RunResult", "build_model", "run_model", "run_models",
    "ALL_MODEL_NAMES", "BASELINE_NAMES", "CAUSER_NAMES",
    "TABLE4_MODEL_NAMES",
    "render_table", "render_metric_matrix", "render_series",
]
