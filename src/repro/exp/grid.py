"""Grid search over hyper-parameters (the paper's Table III protocol)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import Causer
from ..data.interactions import leave_one_out_split
from ..data.synthetic import SyntheticDataset
from ..eval import evaluate_model
from .config import BenchmarkSettings


@dataclass
class GridSearchResult:
    """Outcome of a grid search: every configuration and the winner."""

    parameter_grid: Dict[str, Sequence]
    scores: List[Tuple[Dict, float]] = field(default_factory=list)

    @property
    def best(self) -> Tuple[Dict, float]:
        if not self.scores:
            grid = {key: list(values)
                    for key, values in self.parameter_grid.items()}
            raise ValueError(
                f"grid search over {grid!r} produced no scores — "
                "the parameter grid was empty or no combination was "
                "evaluated, so there is no best configuration")
        return max(self.scores, key=lambda pair: pair[1])

    def top(self, k: int = 5) -> List[Tuple[Dict, float]]:
        if not self.scores:
            return []
        return sorted(self.scores, key=lambda pair: -pair[1])[:k]


def grid_combinations(parameter_grid: Dict[str, Sequence]) -> List[Dict]:
    """The grid's full cross-product as override dicts, in itertools order."""
    keys = list(parameter_grid)
    return [dict(zip(keys, combo))
            for combo in itertools.product(*(parameter_grid[k]
                                             for k in keys))]


def grid_search_causer(dataset: SyntheticDataset,
                       parameter_grid: Dict[str, Sequence],
                       settings: Optional[BenchmarkSettings] = None,
                       metric: str = "ndcg",
                       validation: bool = True,
                       workers: Optional[int] = 1) -> GridSearchResult:
    """Exhaustive grid search for Causer, scored on the validation split.

    ``parameter_grid`` maps :class:`~repro.core.config.CauserConfig` field
    names to candidate values, e.g. ``{"epsilon": [0.1, 0.3], "eta": [0.5]}``.

    ``workers`` > 1 trains one hyper-parameter combo per process through
    :mod:`repro.parallel` (``None`` → CPU-aware default, ``0``/``1`` →
    serial).  The split is computed once here and shipped to workers, and
    ``scores`` keeps the serial combo order, so serial and parallel runs
    return identical results.
    """
    settings = settings or BenchmarkSettings()
    split = leave_one_out_split(dataset.corpus)
    eval_samples = split.validation if validation else split.test
    result = GridSearchResult(parameter_grid=dict(parameter_grid))
    combos = grid_combinations(parameter_grid)
    from ..parallel import grid_scores_parallel, resolve_workers
    if resolve_workers(workers, len(combos)) > 1:
        result.scores.extend(grid_scores_parallel(
            dataset, combos, settings, split.train, eval_samples, metric,
            workers=workers))
        return result
    for overrides in combos:
        config = settings.causer_config(dataset.name, **overrides)
        model = Causer(dataset.corpus.num_users, dataset.num_items,
                       dataset.features, config)
        model.fit(split.train)
        evaluation = evaluate_model(model, eval_samples, z=settings.z)
        result.scores.append((overrides, 100.0 * evaluation.mean(metric)))
    return result
