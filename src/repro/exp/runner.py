"""Model factory and single-run executor for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core import Causer
from ..data.interactions import Split, leave_one_out_split
from ..data.synthetic import SyntheticDataset
from ..eval import EvaluationResult, evaluate_model
from ..models import (BERT4Rec, BPR, FPMC, GRU4Rec, HRNN, MMSARec, NARM,
                      NCF, PopularityRecommender, SASRec, STAMP, VTRNN)
from .config import BenchmarkSettings

#: Table IV model lineup (plus Pop, FPMC and BERT4Rec as extras).
BASELINE_NAMES = ("Pop", "BPR", "NCF", "FPMC", "GRU4Rec", "NARM", "STAMP",
                  "SASRec", "BERT4Rec", "HRNN", "VTRNN", "MMSARec")
CAUSER_NAMES = ("Causer (LSTM)", "Causer (GRU)")
ALL_MODEL_NAMES = BASELINE_NAMES + CAUSER_NAMES
#: The subset the paper's Table IV reports (FPMC and Pop are our extras).
TABLE4_MODEL_NAMES = ("BPR", "NCF", "GRU4Rec", "STAMP", "SASRec", "NARM",
                      "VTRNN", "MMSARec") + CAUSER_NAMES


def build_model(name: str, dataset: SyntheticDataset,
                settings: BenchmarkSettings):
    """Instantiate a model by its Table IV name."""
    num_users = dataset.corpus.num_users
    num_items = dataset.num_items
    cfg = settings.train_config()
    simple: Dict[str, Callable] = {
        "Pop": lambda: PopularityRecommender(num_items),
        "BPR": lambda: BPR(num_users, num_items, cfg),
        "NCF": lambda: NCF(num_users, num_items, cfg),
        "FPMC": lambda: FPMC(num_users, num_items, cfg),
        "GRU4Rec": lambda: GRU4Rec(num_users, num_items, cfg),
        "NARM": lambda: NARM(num_users, num_items, cfg),
        "STAMP": lambda: STAMP(num_users, num_items, cfg),
        "SASRec": lambda: SASRec(num_users, num_items, cfg),
        "BERT4Rec": lambda: BERT4Rec(num_users, num_items, cfg),
        "HRNN": lambda: HRNN(num_users, num_items, cfg),
        "VTRNN": lambda: VTRNN(num_users, num_items, dataset.features, cfg),
        "MMSARec": lambda: MMSARec(num_users, num_items, dataset.features, cfg),
    }
    if name in simple:
        return simple[name]()
    if name == "Causer (LSTM)":
        return Causer(num_users, num_items, dataset.features,
                      settings.causer_config(dataset.name, cell_type="lstm"))
    if name == "Causer (GRU)":
        return Causer(num_users, num_items, dataset.features,
                      settings.causer_config(dataset.name, cell_type="gru"))
    raise KeyError(f"unknown model name {name!r}; "
                   f"choose from {ALL_MODEL_NAMES}")


@dataclass
class RunResult:
    """One (model, dataset) training + evaluation outcome."""

    model_name: str
    dataset_name: str
    result: EvaluationResult
    fit_seconds: float
    eval_seconds: float
    final_loss: float

    @property
    def f1(self) -> float:
        return 100.0 * self.result.mean("f1")

    @property
    def ndcg(self) -> float:
        return 100.0 * self.result.mean("ndcg")


def run_model(name: str, dataset: SyntheticDataset,
              settings: BenchmarkSettings,
              split: Optional[Split] = None) -> RunResult:
    """Train and evaluate one model on one dataset."""
    if split is None:
        split = leave_one_out_split(dataset.corpus)
    model = build_model(name, dataset, settings)
    start = time.perf_counter()
    fit = model.fit(split.train)
    fit_seconds = time.perf_counter() - start
    start = time.perf_counter()
    result = evaluate_model(model, split.test, z=settings.z)
    eval_seconds = time.perf_counter() - start
    return RunResult(model_name=name, dataset_name=dataset.name,
                     result=result, fit_seconds=fit_seconds,
                     eval_seconds=eval_seconds,
                     final_loss=fit.final_loss)


def run_models(names: Sequence[str], dataset: SyntheticDataset,
               settings: BenchmarkSettings,
               workers: Optional[int] = 1) -> List[RunResult]:
    """Run a list of models on the same dataset/split.

    ``workers`` > 1 fans the lineup out one process per model through
    :mod:`repro.parallel` (``None`` → CPU-aware default, ``0``/``1`` →
    serial, the library default); results are identical either way and
    always in name order.
    """
    from ..parallel import resolve_workers, run_models_parallel
    split = leave_one_out_split(dataset.corpus)
    if resolve_workers(workers, len(names)) > 1:
        return run_models_parallel(names, dataset, settings,
                                   workers=workers, split=split)
    return [run_model(name, dataset, settings, split=split)
            for name in names]
