"""Experiment configuration: the reproduction's counterpart of Table III.

The paper tunes hyper-parameters by grid search per dataset; this module
records the settings that grid search selected for the *scaled* synthetic
profiles (scale=0.05 by default), plus the shared training budget used by
every model so comparisons stay fair.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..core.config import CauserConfig
from ..models.base import TrainConfig

#: Table III — the paper's tuning ranges, kept for reference and used by
#: the grid-search helper.
PAPER_TUNING_RANGES: Dict[str, list] = {
    "batch_size": [32, 64, 128, 256, 512, 1024],
    "learning_rate": [1e-1, 1e-2, 1e-3, 1e-4, 1e-5],
    "embedding_dim": [32, 64, 128, 256],
    "epsilon": [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
    "eta": [1e-8, 1e-6, 1e-4, 1e-2, 1, 1e2, 1e4, 1e6, 1e8],
    "num_clusters": [2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 40, 50,
                     60, 70, 80, 90, 100],
    "lambda_l1": [1e-8, 1e-6, 1e-4, 1e-2, 1, 1e2, 1e4, 1e6, 1e8],
}

#: Grid-search outcome per scaled profile: cluster count tracks each
#: profile's diversity (homogeneous Baby → small K, diverse Epinions →
#: large K, matching §V-C1), ε and the causal-update pace balance graph
#: sparsification against the gate's gradient blackout.
CAUSER_TUNED: Dict[str, Dict] = {
    "epinions": {"num_clusters": 16, "epsilon": 0.3, "eta": 0.5,
                 "update_every": 2},
    "foursquare": {"num_clusters": 12, "epsilon": 0.2, "eta": 0.5,
                   "update_every": 2},
    "patio": {"num_clusters": 8, "epsilon": 0.2, "eta": 0.5,
              "update_every": 2},
    "baby": {"num_clusters": 5, "epsilon": 0.3, "eta": 0.5,
             "update_every": 1},
    "video": {"num_clusters": 10, "epsilon": 0.1, "eta": 0.5,
              "update_every": 2},
}


@dataclass
class BenchmarkSettings:
    """Shared knobs for every benchmark run.

    ``scale`` shrinks the Table II dataset sizes for the CPU budget;
    ``quick`` further cuts epochs for smoke-testing the harness.
    """

    scale: float = 0.05
    data_seed: int = 1
    model_seed: int = 0
    z: int = 5
    num_epochs: int = 12
    embedding_dim: int = 16
    hidden_dim: int = 16
    learning_rate: float = 0.01
    batch_size: int = 128
    max_history: int = 15
    num_negatives: int = 4
    lambda_l1: float = 0.001
    quick: bool = False

    def train_config(self) -> TrainConfig:
        """The baseline-model budget (identical across all models)."""
        return TrainConfig(
            embedding_dim=self.embedding_dim,
            hidden_dim=self.hidden_dim,
            learning_rate=self.learning_rate,
            num_epochs=2 if self.quick else self.num_epochs,
            batch_size=self.batch_size,
            num_negatives=self.num_negatives,
            max_history=self.max_history,
            seed=self.model_seed,
        )

    def causer_config(self, dataset: str, cell_type: str = "gru",
                      **overrides) -> CauserConfig:
        """Causer budget plus the per-dataset tuned causal knobs."""
        tuned = dict(CAUSER_TUNED.get(dataset.lower(),
                                      CAUSER_TUNED["baby"]))
        tuned.update(overrides)
        return CauserConfig(
            embedding_dim=self.embedding_dim,
            hidden_dim=self.hidden_dim,
            learning_rate=self.learning_rate,
            num_epochs=2 if self.quick else self.num_epochs,
            batch_size=self.batch_size,
            num_negatives=self.num_negatives,
            max_history=self.max_history,
            seed=self.model_seed,
            lambda_l1=self.lambda_l1,
            cell_type=cell_type,
            **tuned,
        )


def quick_settings() -> BenchmarkSettings:
    """Tiny settings for harness smoke tests."""
    return BenchmarkSettings(scale=0.02, num_epochs=2, quick=True)
