"""ASCII table rendering for benchmark output.

The bench harnesses print the same row/column layout the paper's tables
use; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None,
                 float_format: str = "{:.2f}") -> str:
    """Render a list of rows as an aligned ASCII table."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width)
                          for cell, width in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def render_metric_matrix(row_labels: Sequence[str],
                         column_labels: Sequence[str],
                         values: Dict[str, Dict[str, float]],
                         title: Optional[str] = None,
                         stars: Optional[Dict[str, Dict[str, str]]] = None
                         ) -> str:
    """Render model-by-dataset metric values (the Table IV layout).

    ``values[row][column]`` holds the number; ``stars`` optionally appends
    the paper's significance marker.
    """
    headers = ["model"] + list(column_labels)
    rows = []
    for row_label in row_labels:
        row = [row_label]
        for col in column_labels:
            value = values.get(row_label, {}).get(col)
            if value is None:
                row.append("-")
            else:
                marker = ""
                if stars is not None:
                    marker = stars.get(row_label, {}).get(col, "")
                row.append(f"{value:.2f}{marker}")
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_series(x_label: str, x_values: Sequence,
                  series: Dict[str, Sequence[float]],
                  title: Optional[str] = None) -> str:
    """Render sweep results (the Fig. 4/5/6 layout): one row per x value.

    The x column uses general formatting so 1e-8-style sweep values stay
    readable; metric cells keep two decimals.
    """
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        x_cell = f"{x:.4g}" if isinstance(x, float) else x
        rows.append([x_cell] + [series[name][i] for name in series])
    return render_table(headers, rows, title=title)
