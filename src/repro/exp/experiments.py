"""One function per paper table/figure.

Each function generates the workload, runs the models, and returns a
structured result object with a ``render()`` method printing the same
rows/series layout the paper reports.  The bench targets in
``benchmarks/`` call these functions and time their core computations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import Causer, ablation_config, format_case_study, make_explainer
from ..data import (DATASET_NAMES, PAPER_STATISTICS, build_explanation_dataset,
                    compute_statistics, leave_one_out_split, load_dataset,
                    sequence_length_histogram)
from ..data.synthetic import SyntheticDataset
from ..eval import (evaluate_explanations, evaluate_model, paired_t_test)
from .config import BenchmarkSettings
from .runner import TABLE4_MODEL_NAMES, RunResult, build_model
from .tables import render_metric_matrix, render_series, render_table


# ----------------------------------------------------------------------
# Table II & Figure 3 — dataset statistics
# ----------------------------------------------------------------------
@dataclass
class Table2Result:
    rows: List[Tuple]

    def render(self) -> str:
        headers = ("Dataset", "#User", "#Item", "#Interaction", "#SeqLen",
                   "Sparsity")
        return render_table(headers, self.rows,
                            title="Table II — dataset statistics (scaled profiles)")


def table2_statistics(settings: Optional[BenchmarkSettings] = None
                      ) -> Table2Result:
    """Regenerate Table II for the scaled synthetic profiles."""
    settings = settings or BenchmarkSettings()
    rows = []
    for name in DATASET_NAMES:
        dataset = load_dataset(name, scale=settings.scale,
                               seed=settings.data_seed)
        rows.append(compute_statistics(name, dataset.corpus).as_row())
    return Table2Result(rows=rows)


@dataclass
class Figure3Result:
    histograms: Dict[str, Dict[str, int]]

    def render(self) -> str:
        parts = ["Figure 3 — sequence-length distributions"]
        for name, hist in self.histograms.items():
            total = sum(hist.values())
            bars = ", ".join(f"{bucket}: {count}"
                             for bucket, count in hist.items() if count)
            parts.append(f"{name} (n={total}): {bars}")
        return "\n".join(parts)


def figure3_sequence_lengths(settings: Optional[BenchmarkSettings] = None
                             ) -> Figure3Result:
    """Regenerate Fig. 3's per-dataset sequence-length histograms."""
    settings = settings or BenchmarkSettings()
    histograms = {}
    for name in DATASET_NAMES:
        dataset = load_dataset(name, scale=settings.scale,
                               seed=settings.data_seed)
        histograms[name] = sequence_length_histogram(dataset.corpus)
    return Figure3Result(histograms=histograms)


# ----------------------------------------------------------------------
# Table IV — overall comparison
# ----------------------------------------------------------------------
@dataclass
class Table4Result:
    datasets: List[str]
    models: List[str]
    f1: Dict[str, Dict[str, float]]
    ndcg: Dict[str, Dict[str, float]]
    stars: Dict[str, Dict[str, str]]
    runs: List[RunResult] = field(default_factory=list)

    def best_baseline(self, dataset: str, metric: str = "ndcg") -> Tuple[str, float]:
        table = self.ndcg if metric == "ndcg" else self.f1
        candidates = [(m, table[m][dataset]) for m in self.models
                      if not m.startswith("Causer") and dataset in table[m]]
        return max(candidates, key=lambda pair: pair[1])

    def causer_improvement(self, metric: str = "ndcg") -> float:
        """Mean relative improvement of the best Causer over the best baseline."""
        table = self.ndcg if metric == "ndcg" else self.f1
        gains = []
        for dataset in self.datasets:
            base = self.best_baseline(dataset, metric)[1]
            ours = max(table[m][dataset] for m in self.models
                       if m.startswith("Causer"))
            if base > 0:
                gains.append((ours - base) / base)
        return 100.0 * float(np.mean(gains)) if gains else 0.0

    def render(self) -> str:
        parts = [render_metric_matrix(self.models, self.datasets, self.f1,
                                      title="Table IV — F1@5 (%)",
                                      stars=self.stars),
                 "",
                 render_metric_matrix(self.models, self.datasets, self.ndcg,
                                      title="Table IV — NDCG@5 (%)",
                                      stars=self.stars),
                 "",
                 f"Causer mean improvement over best baseline: "
                 f"F1 {self.causer_improvement('f1'):+.1f}%, "
                 f"NDCG {self.causer_improvement('ndcg'):+.1f}%"]
        return "\n".join(parts)


def table4_overall(settings: Optional[BenchmarkSettings] = None,
                   datasets: Sequence[str] = DATASET_NAMES,
                   models: Sequence[str] = TABLE4_MODEL_NAMES,
                   workers: Optional[int] = 1) -> Table4Result:
    """Run the full Table IV grid: every model on every dataset.

    Stars mark Causer cells whose per-user NDCG beats the best baseline
    with p < 0.05 under the paired t-test (the paper's protocol).

    ``workers`` > 1 fans the (model, dataset) cells out one process per
    cell through :mod:`repro.parallel` (``None`` → CPU-aware default,
    ``0``/``1`` → serial).  Datasets are generated and split once here in
    the parent; cell results are grouped back dataset-major, model-minor —
    the serial iteration order — so the table is identical either way.
    """
    from ..parallel import run_table_cells
    settings = settings or BenchmarkSettings()
    f1: Dict[str, Dict[str, float]] = {m: {} for m in models}
    ndcg: Dict[str, Dict[str, float]] = {m: {} for m in models}
    stars: Dict[str, Dict[str, str]] = {m: {} for m in models}
    loaded = []
    for name in datasets:
        dataset = load_dataset(name, scale=settings.scale,
                               seed=settings.data_seed)
        loaded.append((name, dataset, leave_one_out_split(dataset.corpus)))
    cells = [(model, dataset, split)
             for _, dataset, split in loaded for model in models]
    all_runs = run_table_cells(cells, settings, workers=workers)
    for block, (name, _, _) in enumerate(loaded):
        runs = all_runs[block * len(models):(block + 1) * len(models)]
        best_base = max((r for r in runs
                         if not r.model_name.startswith("Causer")),
                        key=lambda r: r.ndcg)
        for run in runs:
            f1[run.model_name][name] = run.f1
            ndcg[run.model_name][name] = run.ndcg
            if run.model_name.startswith("Causer"):
                test = paired_t_test(run.result.per_user["ndcg"],
                                     best_base.result.per_user["ndcg"])
                stars[run.model_name][name] = test.star
    return Table4Result(datasets=list(datasets), models=list(models),
                        f1=f1, ndcg=ndcg, stars=stars, runs=all_runs)


# ----------------------------------------------------------------------
# Figures 4/5/6 — hyper-parameter sweeps
# ----------------------------------------------------------------------
@dataclass
class SweepResult:
    parameter: str
    values: List
    ndcg: Dict[str, List[float]]  # series per "dataset/cell" label

    def render(self) -> str:
        figure = {"num_clusters": "Figure 4 — cluster count K",
                  "epsilon": "Figure 5 — threshold ε",
                  "eta": "Figure 6 — temperature η"}.get(self.parameter,
                                                         self.parameter)
        return render_series(self.parameter, self.values, self.ndcg,
                             title=f"{figure} (NDCG@5 %)")

    def best_value(self, label: str):
        series = self.ndcg[label]
        return self.values[int(np.argmax(series))]


def causer_parameter_sweep(parameter: str, values: Sequence,
                           settings: Optional[BenchmarkSettings] = None,
                           datasets: Sequence[str] = ("baby", "epinions"),
                           cells: Sequence[str] = ("gru", "lstm")
                           ) -> SweepResult:
    """Sweep one Causer hyper-parameter (the Fig. 4/5/6 protocol).

    The other parameters stay at their tuned optima, matching §V-C.
    """
    settings = settings or BenchmarkSettings()
    series: Dict[str, List[float]] = {}
    for dataset_name in datasets:
        dataset = load_dataset(dataset_name, scale=settings.scale,
                               seed=settings.data_seed)
        split = leave_one_out_split(dataset.corpus)
        for cell in cells:
            label = f"{dataset_name}/{cell}"
            series[label] = []
            for value in values:
                config = settings.causer_config(dataset_name, cell_type=cell,
                                                **{parameter: value})
                model = Causer(dataset.corpus.num_users, dataset.num_items,
                               dataset.features, config)
                model.fit(split.train)
                result = evaluate_model(model, split.test, z=settings.z)
                series[label].append(100.0 * result.mean("ndcg"))
    return SweepResult(parameter=parameter, values=list(values), ndcg=series)


def figure4_cluster_sweep(settings: Optional[BenchmarkSettings] = None,
                          values: Sequence[int] = (2, 3, 5, 8, 12, 16, 24, 32),
                          **kwargs) -> SweepResult:
    return causer_parameter_sweep("num_clusters", values, settings, **kwargs)


def figure5_epsilon_sweep(settings: Optional[BenchmarkSettings] = None,
                          values: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5,
                                                     0.6, 0.7, 0.8, 0.9),
                          **kwargs) -> SweepResult:
    return causer_parameter_sweep("epsilon", values, settings, **kwargs)


def figure6_temperature_sweep(settings: Optional[BenchmarkSettings] = None,
                              values: Sequence[float] = (1e-8, 1e-4, 1e-2,
                                                         0.1, 0.5, 1.0, 1e2,
                                                         1e4, 1e8),
                              **kwargs) -> SweepResult:
    return causer_parameter_sweep("eta", values, settings, **kwargs)


# ----------------------------------------------------------------------
# Table V — ablation study
# ----------------------------------------------------------------------
ABLATION_VARIANTS = ("-rec", "-clus", "-att", "-causal", "full")


@dataclass
class Table5Result:
    ndcg: Dict[str, Dict[str, float]]  # variant -> "dataset/cell" -> value
    columns: List[str]

    def render(self) -> str:
        labels = [f"Causer ({v})" if v != "full" else "Causer"
                  for v in ABLATION_VARIANTS]
        values = {label: self.ndcg[variant]
                  for label, variant in zip(labels, ABLATION_VARIANTS)}
        return render_metric_matrix(labels, self.columns, values,
                                    title="Table V — ablations (NDCG@5 %)")


def table5_ablation(settings: Optional[BenchmarkSettings] = None,
                    datasets: Sequence[str] = ("baby", "epinions"),
                    cells: Sequence[str] = ("lstm", "gru")) -> Table5Result:
    """Run the Table V ablations on the paper's two study datasets."""
    settings = settings or BenchmarkSettings()
    ndcg: Dict[str, Dict[str, float]] = {v: {} for v in ABLATION_VARIANTS}
    columns: List[str] = []
    for dataset_name in datasets:
        dataset = load_dataset(dataset_name, scale=settings.scale,
                               seed=settings.data_seed)
        split = leave_one_out_split(dataset.corpus)
        for cell in cells:
            column = f"{dataset_name}/{cell}"
            columns.append(column)
            base_config = settings.causer_config(dataset_name, cell_type=cell)
            for variant in ABLATION_VARIANTS:
                config = ablation_config(base_config, variant)
                model = Causer(dataset.corpus.num_users, dataset.num_items,
                               dataset.features, config)
                model.fit(split.train)
                result = evaluate_model(model, split.test, z=settings.z)
                ndcg[variant][column] = 100.0 * result.mean("ndcg")
    return Table5Result(ndcg=ndcg, columns=columns)


# ----------------------------------------------------------------------
# Figure 7 — quantitative explanation evaluation
# ----------------------------------------------------------------------
@dataclass
class Figure7Result:
    f1: Dict[str, float]
    ndcg: Dict[str, float]
    num_samples: int
    avg_causes: float

    def render(self) -> str:
        rows = [(label, self.f1[label], self.ndcg[label]) for label in self.f1]
        return render_table(
            ("explainer", "F1@3 (%)", "NDCG@3 (%)"), rows,
            title=(f"Figure 7 — explanation quality on {self.num_samples} "
                   f"labeled samples (avg {self.avg_causes:.1f} causes each)"))


def figure7_explanation(settings: Optional[BenchmarkSettings] = None,
                        dataset_name: str = "baby",
                        cells: Sequence[str] = ("lstm", "gru"),
                        max_samples: int = 793) -> Figure7Result:
    """Compare Causer / (-att) / (-causal) explanation scores (Fig. 7).

    Explanation scores follow §V-E1: ``Ŵ α`` for the full model, ``Ŵ``
    alone for (-att) and ``α`` alone for (-causal); top-3 picks are scored
    against the labeled causes.
    """
    settings = settings or BenchmarkSettings()
    dataset = load_dataset(dataset_name, scale=settings.scale,
                           seed=settings.data_seed)
    split = leave_one_out_split(dataset.corpus)
    samples = build_explanation_dataset(dataset, max_samples=max_samples)
    if not samples:
        raise RuntimeError("explanation dataset came out empty; "
                           "increase the scale")
    from ..data.explanation import average_causes_per_sample
    f1: Dict[str, float] = {}
    ndcg: Dict[str, float] = {}
    for cell in cells:
        model = Causer(dataset.corpus.num_users, dataset.num_items,
                       dataset.features,
                       settings.causer_config(dataset_name, cell_type=cell))
        model.fit(split.train)
        for mode, label in (("full", f"Causer/{cell}"),
                            ("causal", f"Causer(-att)/{cell}"),
                            ("attention", f"Causer(-causal)/{cell}")):
            outcome = evaluate_explanations(samples,
                                            make_explainer(model, mode), k=3)
            f1[label] = 100.0 * outcome.f1
            ndcg[label] = 100.0 * outcome.ndcg
    return Figure7Result(f1=f1, ndcg=ndcg, num_samples=len(samples),
                         avg_causes=average_causes_per_sample(samples))


# ----------------------------------------------------------------------
# Figure 8 — qualitative case studies
# ----------------------------------------------------------------------
@dataclass
class Figure8Result:
    cases: List[str]

    def render(self) -> str:
        banner = "Figure 8 — qualitative explanation case studies"
        return "\n\n".join([banner] + self.cases)


def figure8_case_studies(settings: Optional[BenchmarkSettings] = None,
                         dataset_name: str = "baby",
                         num_cases: int = 4) -> Figure8Result:
    """Print Fig. 8-style cases: per-history-item Ŵ, α and combined scores."""
    settings = settings or BenchmarkSettings()
    dataset = load_dataset(dataset_name, scale=settings.scale,
                           seed=settings.data_seed)
    split = leave_one_out_split(dataset.corpus)
    samples = build_explanation_dataset(dataset, max_samples=200)
    model = Causer(dataset.corpus.num_users, dataset.num_items,
                   dataset.features,
                   settings.causer_config(dataset_name, cell_type="gru"))
    model.fit(split.train)
    # Prefer cases with at least three history items (richer stories).
    ranked = sorted(samples, key=lambda s: -len(s.history_items))
    cases = [format_case_study(model, sample)
             for sample in ranked[:num_cases]]
    return Figure8Result(cases=cases)


# ----------------------------------------------------------------------
# §III-C — efficiency study
# ----------------------------------------------------------------------
@dataclass
class EfficiencyResult:
    train_every_epoch_seconds: float
    train_slow_updates_seconds: float
    causer_inference_seconds: float
    sasrec_inference_seconds: float

    @property
    def training_speedup_percent(self) -> float:
        if self.train_every_epoch_seconds == 0:
            return 0.0
        return 100.0 * (1 - self.train_slow_updates_seconds
                        / self.train_every_epoch_seconds)

    @property
    def inference_ratio(self) -> float:
        if self.sasrec_inference_seconds == 0:
            return float("inf")
        return self.causer_inference_seconds / self.sasrec_inference_seconds

    def render(self) -> str:
        rows = [
            ("Causer train (update_every=1)", self.train_every_epoch_seconds),
            ("Causer train (update_every=10)", self.train_slow_updates_seconds),
            ("slow-update speedup", f"{self.training_speedup_percent:.0f}% (paper: ~22%)"),
            ("Causer inference (s)", self.causer_inference_seconds),
            ("SASRec inference (s)", self.sasrec_inference_seconds),
            ("inference ratio", f"{self.inference_ratio:.2f}x (paper: ~1.16x)"),
        ]
        return render_table(("quantity", "value"), rows,
                            title="§III-C — efficiency study",
                            float_format="{:.3f}")


def efficiency_study(settings: Optional[BenchmarkSettings] = None,
                     dataset_name: str = "baby") -> EfficiencyResult:
    """Time the paper's two efficiency claims on equal workloads."""
    settings = settings or BenchmarkSettings()
    dataset = load_dataset(dataset_name, scale=settings.scale,
                           seed=settings.data_seed)
    split = leave_one_out_split(dataset.corpus)

    def time_causer_training(update_every: int) -> float:
        config = settings.causer_config(dataset_name,
                                        update_every=update_every)
        model = Causer(dataset.corpus.num_users, dataset.num_items,
                       dataset.features, config)
        start = time.perf_counter()
        model.fit(split.train)
        return time.perf_counter() - start

    every_epoch = time_causer_training(1)
    slow = time_causer_training(10)

    causer = Causer(dataset.corpus.num_users, dataset.num_items,
                    dataset.features, settings.causer_config(dataset_name))
    causer.fit(split.train)
    sasrec = build_model("SASRec", dataset, settings)
    sasrec.fit(split.train)
    start = time.perf_counter()
    evaluate_model(causer, split.test, z=settings.z)
    causer_inference = time.perf_counter() - start
    start = time.perf_counter()
    evaluate_model(sasrec, split.test, z=settings.z)
    sasrec_inference = time.perf_counter() - start
    return EfficiencyResult(
        train_every_epoch_seconds=every_epoch,
        train_slow_updates_seconds=slow,
        causer_inference_seconds=causer_inference,
        sasrec_inference_seconds=sasrec_inference)
