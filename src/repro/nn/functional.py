"""Functional neural-network operations built on :class:`repro.nn.tensor.Tensor`.

These are composite, numerically-careful operations used by layers and
models: stable softmax / log-softmax, masked variants for padded sequences,
embedding lookup, dropout and one-hot encoding.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .fused import fused_embedding_gather, fused_masked_softmax
from .tensor import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    # gradlint: disable-next=GL002 — the max shift is deliberately detached:
    # softmax is shift-invariant, so the constant's gradient cancels exactly.
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    # gradlint: disable-next=GL002 — detached max shift; cancels in the gradient.
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax that assigns zero probability where ``mask`` is False.

    ``mask`` is a constant boolean array broadcastable to ``x``.  Rows whose
    mask is entirely False produce all-zero probabilities instead of NaNs,
    which is the behaviour sequence models want for fully-padded rows.

    Fused: a single graph node with the analytic ``y * (g - sum(g * y))``
    backward (:func:`repro.nn.fused.fused_masked_softmax`).
    """
    return fused_masked_softmax(x, mask, axis=axis)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def relu(x: Tensor) -> Tensor:
    return x.relu()


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` by an integer index array.

    Gradients are scatter-added back into the embedding matrix, matching
    ``torch.nn.functional.embedding``.  When ``weight.sparse_grad`` is set
    the backward produces a coalesced row-sparse gradient instead of the
    dense ``(V, d)`` scatter (see :mod:`repro.nn.sparse`).
    """
    return fused_embedding_gather(weight, indices)


def multihot_lookup(weight: Tensor, multihot: np.ndarray) -> Tensor:
    """Project multi-hot rows through an embedding matrix.

    ``multihot`` has shape ``(..., vocab)``; the result is
    ``multihot @ weight`` of shape ``(..., dim)``, i.e. the sum of member
    item embeddings — the paper's treatment of basket steps.
    """
    return Tensor(np.asarray(multihot, dtype=np.float64)) @ weight


def dropout(x: Tensor, rate: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: identity at eval time, rescaled mask when training."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * Tensor(mask)


def one_hot(indices: np.ndarray, depth: int) -> np.ndarray:
    """Constant one-hot encoding (no gradient flows through indices)."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (depth,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (PyTorch layout)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out
