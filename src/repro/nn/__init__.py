"""`repro.nn` — a from-scratch neural-network substrate on numpy.

The paper's reference implementation relied on PyTorch/MindSpore; this
package provides the equivalent machinery (reverse-mode autograd, layers,
recurrent cells, attention, optimizers and losses) so the reproduction is
fully self-contained.
"""

from .tensor import Tensor, concat, gradient_check, maximum, stack, where
from .sparse import (RowSparseGrad, densify_grad, grad_all_finite,
                     grad_scale_, grad_sq_sum, rowsparse_from_gather)
from .module import (Dropout, Embedding, LayerNorm, Linear, MLP, Module,
                     Parameter, Sequential, no_grad)
from .fused import (fused_bce_with_logits, fused_cross_entropy,
                    fused_embedding_gather, fused_gru_sequence,
                    fused_gru_step, fused_lstm_sequence, fused_lstm_step,
                    fused_masked_softmax)
from .rnn import GRUCell, LSTMCell, RecurrentLayer
from .attention import (AdditiveAttention, BilinearAttention,
                        MultiHeadSelfAttention, TransformerBlock)
from .optim import (SGD, Adagrad, Adam, Optimizer, SparseAdam, StepLR,
                    make_optimizer)
from . import functional
from . import init
from . import losses

__all__ = [
    "Tensor", "concat", "stack", "where", "maximum", "gradient_check",
    "RowSparseGrad", "rowsparse_from_gather", "densify_grad",
    "grad_all_finite", "grad_scale_", "grad_sq_sum",
    "Module", "Parameter", "Linear", "Embedding", "Dropout", "LayerNorm",
    "Sequential", "MLP", "no_grad",
    "fused_bce_with_logits", "fused_cross_entropy", "fused_embedding_gather",
    "fused_gru_sequence", "fused_gru_step", "fused_lstm_sequence",
    "fused_lstm_step", "fused_masked_softmax",
    "GRUCell", "LSTMCell", "RecurrentLayer",
    "BilinearAttention", "AdditiveAttention", "MultiHeadSelfAttention",
    "TransformerBlock",
    "Optimizer", "SGD", "Adam", "SparseAdam", "Adagrad", "StepLR",
    "make_optimizer",
    "functional", "init", "losses",
]
