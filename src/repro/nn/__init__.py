"""`repro.nn` — a from-scratch neural-network substrate on numpy.

The paper's reference implementation relied on PyTorch/MindSpore; this
package provides the equivalent machinery (reverse-mode autograd, layers,
recurrent cells, attention, optimizers and losses) so the reproduction is
fully self-contained.
"""

from .tensor import Tensor, concat, gradient_check, maximum, stack, where
from .module import (Dropout, Embedding, LayerNorm, Linear, MLP, Module,
                     Parameter, Sequential, no_grad)
from .fused import (fused_bce_with_logits, fused_cross_entropy,
                    fused_gru_sequence, fused_gru_step, fused_lstm_sequence,
                    fused_lstm_step, fused_masked_softmax)
from .rnn import GRUCell, LSTMCell, RecurrentLayer
from .attention import (AdditiveAttention, BilinearAttention,
                        MultiHeadSelfAttention, TransformerBlock)
from .optim import SGD, Adagrad, Adam, Optimizer, StepLR, make_optimizer
from . import functional
from . import init
from . import losses

__all__ = [
    "Tensor", "concat", "stack", "where", "maximum", "gradient_check",
    "Module", "Parameter", "Linear", "Embedding", "Dropout", "LayerNorm",
    "Sequential", "MLP", "no_grad",
    "fused_bce_with_logits", "fused_cross_entropy", "fused_gru_sequence",
    "fused_gru_step", "fused_lstm_sequence", "fused_lstm_step",
    "fused_masked_softmax",
    "GRUCell", "LSTMCell", "RecurrentLayer",
    "BilinearAttention", "AdditiveAttention", "MultiHeadSelfAttention",
    "TransformerBlock",
    "Optimizer", "SGD", "Adam", "Adagrad", "StepLR", "make_optimizer",
    "functional", "init", "losses",
]
