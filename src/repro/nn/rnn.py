"""Recurrent cells and sequence layers (GRU and LSTM).

The paper instantiates its sequential backbone ``g`` with either a GRU or an
LSTM; the same cells also power the GRU4Rec/NARM/VTRNN baselines.  Cells
operate on one timestep of a batch; the layer classes unroll a padded batch
and return all hidden states so attention modules can consume them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import init
from .fused import (fused_gru_sequence, fused_gru_step, fused_lstm_sequence,
                    fused_lstm_step)
from .module import Module, Parameter
from .tensor import Tensor


class GRUCell(Module):
    """Gated recurrent unit cell (Cho et al., 2014).

    Update equations::

        r = sigmoid(x W_ir^T + h W_hr^T + b_r)
        z = sigmoid(x W_iz^T + h W_hz^T + b_z)
        n = tanh(x W_in^T + r * (h W_hn^T) + b_n)
        h' = (1 - z) * n + z * h
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.xavier_uniform((3 * hidden_size, input_size), rng))
        self.w_hh = Parameter(init.orthogonal((3 * hidden_size, hidden_size), rng))
        self.b_ih = Parameter(init.zeros((3 * hidden_size,)))
        self.b_hh = Parameter(init.zeros((3 * hidden_size,)))

    def forward(self, x: Tensor, h: Tensor,
                keep: Optional[np.ndarray] = None) -> Tensor:
        return fused_gru_step(x, h, self.w_ih, self.w_hh,
                              self.b_ih, self.b_hh, keep=keep)

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class LSTMCell(Module):
    """Long short-term memory cell (Hochreiter & Schmidhuber, 1997)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.xavier_uniform((4 * hidden_size, input_size), rng))
        self.w_hh = Parameter(init.orthogonal((4 * hidden_size, hidden_size), rng))
        bias = init.zeros((4 * hidden_size,))
        # Forget-gate bias of 1.0 helps early-training gradient flow.
        bias[hidden_size:2 * hidden_size] = 1.0
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor],
                keep: Optional[np.ndarray] = None) -> Tuple[Tensor, Tensor]:
        h, c = state
        return fused_lstm_step(x, h, c, self.w_ih, self.w_hh, self.bias,
                               keep=keep)

    def initial_state(self, batch_size: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class RecurrentLayer(Module):
    """Unrolls a GRU or LSTM cell over a padded batch of sequences.

    Input shape ``(batch, time, input_size)``; returns
    ``(states, last_state)`` where ``states`` has shape
    ``(batch, time, hidden)`` and ``last_state`` is the hidden state at each
    sequence's true final step (selected via ``lengths``).

    A boolean ``step_mask`` of shape ``(batch, time)`` freezes the hidden
    state on padded (or causally-filtered) steps: where the mask is False the
    previous state is carried through unchanged, implementing the paper's
    "skip this step" rule for all-zero filtered inputs.
    """

    def __init__(self, cell_type: str, input_size: int, hidden_size: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        if cell_type not in ("gru", "lstm"):
            raise ValueError(f"cell_type must be 'gru' or 'lstm', got {cell_type!r}")
        self.cell_type = cell_type
        self.hidden_size = hidden_size
        if cell_type == "gru":
            self.cell = GRUCell(input_size, hidden_size, rng)
        else:
            self.cell = LSTMCell(input_size, hidden_size, rng)

    def forward(self, inputs: Tensor, step_mask: Optional[np.ndarray] = None,
                initial_state: Optional[Tensor] = None) -> Tuple[Tensor, Tensor]:
        batch, time = inputs.shape[0], inputs.shape[1]
        if step_mask is None:
            step_mask = np.ones((batch, time), dtype=bool)
        else:
            step_mask = np.asarray(step_mask, dtype=bool)

        cell = self.cell
        if self.cell_type == "lstm":
            h0, c0 = cell.initial_state(batch)
            if initial_state is not None:
                h0 = initial_state
            states = fused_lstm_sequence(inputs, h0, c0, cell.w_ih,
                                         cell.w_hh, cell.bias,
                                         step_mask=step_mask)
        else:
            h0 = (initial_state if initial_state is not None
                  else cell.initial_state(batch))
            states = fused_gru_sequence(inputs, h0, cell.w_ih, cell.w_hh,
                                        cell.b_ih, cell.b_hh,
                                        step_mask=step_mask)
        last = states[:, time - 1, :]
        return states, last
