"""Loss functions for recommendation training.

All losses return scalar tensors; targets and masks are constant numpy
arrays (no gradient flows into them).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .fused import fused_bce_with_logits, fused_cross_entropy
from .tensor import Tensor


def bce_with_logits(logits: Tensor, targets: np.ndarray,
                    mask: Optional[np.ndarray] = None) -> Tensor:
    """Numerically stable binary cross-entropy on raw logits.

    Uses the identity ``BCE = max(x, 0) - x*y + log(1 + exp(-|x|))`` which is
    the paper's eq. (11) objective applied with sigmoid scoring and negative
    sampling.  ``mask`` selects which entries participate (padded positions
    drop out); the loss is averaged over participating entries.

    Fused: forward and backward run as one graph node
    (:func:`repro.nn.fused.fused_bce_with_logits`).
    """
    return fused_bce_with_logits(logits, targets, mask=mask)


def bce_on_probabilities(probs: Tensor, targets: np.ndarray,
                         mask: Optional[np.ndarray] = None,
                         eps: float = 1e-9) -> Tensor:
    """Binary cross-entropy for models that output probabilities directly."""
    targets = np.asarray(targets, dtype=np.float64)
    clipped = probs.clip(eps, 1.0 - eps)
    per_entry = -(Tensor(targets) * clipped.log()
                  + Tensor(1.0 - targets) * (1.0 - clipped).log())
    if mask is not None:
        mask = np.asarray(mask, dtype=np.float64)
        total = per_entry * Tensor(mask)
        denom = max(float(mask.sum()), 1.0)
        return total.sum() * (1.0 / denom)
    return per_entry.mean()


def bpr_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Bayesian personalized ranking loss: ``-mean log sigmoid(pos - neg)``."""
    diff = pos_scores - neg_scores
    # The sigmoid op is clipped-stable at extreme inputs, and this form has
    # the correct gradient sigma(-d) everywhere (a relu/abs composition of
    # softplus has a dead subgradient exactly at d = 0, where training starts).
    probability = diff.sigmoid().clip(1e-15, 1.0)
    return -probability.log().mean()


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()


def cross_entropy(logits: Tensor, target_indices: np.ndarray) -> Tensor:
    """Softmax cross-entropy with integer class targets.

    Fused: one node computing the loss and the classic
    ``(softmax - onehot) / batch`` gradient
    (:func:`repro.nn.fused.fused_cross_entropy`).
    """
    return fused_cross_entropy(logits, target_indices)


def l1_penalty(tensor: Tensor) -> Tensor:
    """Sum of absolute values — the sparsity regularizer on ``W^c``."""
    return tensor.abs().sum()


def l2_penalty(tensor: Tensor) -> Tensor:
    """Sum of squares (no 1/2 factor)."""
    return (tensor * tensor).sum()
