"""Attention mechanisms used across the models.

* :class:`BilinearAttention` — the paper's ``sim(h_t, h_last) = h_t^T A h_last``
  scoring (eq. 10) used by Causer and NARM-style models.
* :class:`AdditiveAttention` — tanh-MLP scoring as in NARM's local encoder.
* :class:`MultiHeadSelfAttention` — causal self-attention for SASRec and
  MMSARec.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .module import Linear, Module, Parameter
from .tensor import Tensor


class BilinearAttention(Module):
    """Attention over timesteps scored by a bilinear form with a query vector.

    Given states ``H`` of shape ``(batch, time, dim)`` and a query ``q`` of
    shape ``(batch, dim)``, produces weights
    ``alpha_t = softmax_t(h_t^T A q)`` restricted to valid (unmasked) steps.
    """

    def __init__(self, dim: int, rng: np.random.Generator,
                 identity_init: bool = True) -> None:
        super().__init__()
        # Near-identity init makes the initial scores h_t·q, which already
        # favours recent steps (their states resemble the final state), so
        # attention starts recency-biased instead of uniform.
        if identity_init:
            self.proj = Parameter(np.eye(dim)
                                  + init.xavier_uniform((dim, dim), rng) * 0.1)
        else:
            self.proj = Parameter(init.xavier_uniform((dim, dim), rng))

    def forward(self, states: Tensor, query: Tensor,
                mask: Optional[np.ndarray] = None) -> Tensor:
        scores = self.raw_scores(states, query)
        if mask is None:
            return F.softmax(scores, axis=-1)
        return F.masked_softmax(scores, mask, axis=-1)

    def raw_scores(self, states: Tensor, query: Tensor) -> Tensor:
        """Unnormalized scores ``h_t^T A q``: shape ``(batch, time)``."""
        projected = query @ self.proj.T                 # (batch, dim)
        batch, time = states.shape[0], states.shape[1]
        # Batched matvec: one BLAS call replaces the broadcast
        # multiply + reduce pair over the (batch, time, dim) block.
        scores = states @ projected.reshape(batch, -1, 1)
        return scores.reshape(batch, time)


class AdditiveAttention(Module):
    """NARM-style additive attention: ``v^T sigmoid(W1 h_t + W2 q)``."""

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.w_state = Linear(dim, dim, rng, bias=False)
        self.w_query = Linear(dim, dim, rng, bias=True)
        self.v = Parameter(init.xavier_uniform((dim,), rng))

    def forward(self, states: Tensor, query: Tensor,
                mask: Optional[np.ndarray] = None) -> Tensor:
        batch = states.shape[0]
        mixed = self.w_state(states) + self.w_query(query).reshape(batch, 1, -1)
        scores = (mixed.sigmoid() * self.v).sum(axis=-1)
        if mask is None:
            return F.softmax(scores, axis=-1)
        return F.masked_softmax(scores, mask, axis=-1)


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention with an optional causal mask (SASRec)."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.w_q = Linear(dim, dim, rng, bias=False)
        self.w_k = Linear(dim, dim, rng, bias=False)
        self.w_v = Linear(dim, dim, rng, bias=False)
        self.w_o = Linear(dim, dim, rng, bias=False)

    def forward(self, x: Tensor, pad_mask: Optional[np.ndarray] = None,
                causal: bool = True) -> Tensor:
        batch, time, _ = x.shape
        q = self._split_heads(self.w_q(x))
        k = self._split_heads(self.w_k(x))
        v = self._split_heads(self.w_v(x))

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale   # (batch, heads, time, time)

        attend = np.ones((batch, 1, time, time), dtype=bool)
        if causal:
            attend = attend & np.tril(np.ones((time, time), dtype=bool))[None, None]
        if pad_mask is not None:
            pad = np.asarray(pad_mask, dtype=bool)
            attend = attend & pad[:, None, None, :]
        weights = F.masked_softmax(scores, attend, axis=-1)

        context = weights @ v                            # (batch, heads, time, head_dim)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, time, self.dim)
        return self.w_o(merged)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, time, _ = x.shape
        return x.reshape(batch, time, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)


class TransformerBlock(Module):
    """Self-attention block with residual connections (pre-norm variant)."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 ffn_multiplier: int = 2) -> None:
        super().__init__()
        from .module import LayerNorm  # local import avoids a cycle at module load
        self.attn = MultiHeadSelfAttention(dim, num_heads, rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.ffn1 = Linear(dim, dim * ffn_multiplier, rng)
        self.ffn2 = Linear(dim * ffn_multiplier, dim, rng)

    def forward(self, x: Tensor, pad_mask: Optional[np.ndarray] = None,
                causal: bool = True) -> Tensor:
        attended = self.attn(self.norm1(x), pad_mask=pad_mask, causal=causal)
        x = x + attended
        x = x + self.ffn2(self.ffn1(self.norm2(x)).relu())
        return x
