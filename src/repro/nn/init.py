"""Parameter initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so that model
construction is fully reproducible from a single seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator,
                  gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def normal(shape: Tuple[int, ...], rng: np.random.Generator,
           std: float = 0.01) -> np.ndarray:
    """Zero-mean Gaussian initialization, the usual choice for embeddings."""
    return rng.normal(0.0, std, size=shape)


def uniform(shape: Tuple[int, ...], rng: np.random.Generator,
            low: float = -0.05, high: float = 0.05) -> np.ndarray:
    return rng.uniform(low, high, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def orthogonal(shape: Tuple[int, ...], rng: np.random.Generator,
               gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialization, recommended for recurrent weights."""
    if len(shape) < 2:
        raise ValueError("orthogonal init needs at least a 2-d shape")
    rows, cols = shape[0], int(np.prod(shape[1:]))
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    q = q[:rows, :cols] if rows >= cols else q[:cols, :rows].T
    return gain * q.reshape(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[1] * receptive, shape[0] * receptive
