"""Row-sparse gradients for embedding tables.

A training batch touches ``O(B*T)`` rows of a ``(V, d)`` embedding table,
yet the dense backward materializes — and the optimizers then sweep — the
full table: ``O(V*d)`` work per step regardless of batch size.  This module
provides the compact alternative: :class:`RowSparseGrad` stores only the
touched rows (coalesced, sorted, duplicate-free) and the optimizers in
:mod:`repro.nn.optim` update just those rows.

Numerical contract
------------------
The coalescing in :func:`rowsparse_from_gather` uses the *same* composite
``np.bincount`` reduction as the dense scatter in
:func:`repro.nn.tensor._scatter_add`: for every destination row the
duplicate contributions are summed in identical input order, so the
coalesced row values are bit-identical to the rows of the dense gradient.
Likewise :meth:`RowSparseGrad.merge` concatenates existing-then-incoming
values before re-coalescing, reproducing the accumulation order of a dense
``grad += update``.

Dense fallback
--------------
Sparsity only pays when few rows are touched.  When a gather covers at
least ``DENSIFY_FRACTION`` of the table, :func:`rowsparse_from_gather`
returns a plain dense ``ndarray`` instead, so small vocabularies
transparently keep the dense path (and its exact performance profile).

Representation-agnostic helpers
-------------------------------
Code outside the engine must not assume ``param.grad`` is a dense array
(gradlint rule GL007 enforces this).  :func:`grad_sq_sum`,
:func:`grad_scale_`, :func:`grad_all_finite` and :func:`densify_grad`
work on both representations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: A gather producing at least this fraction of unique rows densifies:
#: below-threshold tables gain nothing from the sparse bookkeeping.
DENSIFY_FRACTION = 0.5


class RowSparseGrad:
    """A coalesced row-sparse gradient for a ``(rows, ...)`` parameter.

    Attributes
    ----------
    indices:
        ``(n,)`` sorted, duplicate-free ``int64`` row ids.
    values:
        ``(n,) + shape[1:]`` float64 per-row gradient values.
    shape:
        Shape of the dense gradient this object represents.
    """

    __slots__ = ("indices", "values", "shape")

    def __init__(self, indices: np.ndarray, values: np.ndarray,
                 shape: Tuple[int, ...]) -> None:
        self.indices = indices
        self.values = values
        self.shape = tuple(shape)

    # -- introspection --------------------------------------------------
    @property
    def nnz_rows(self) -> int:
        """Number of distinct rows carrying gradient."""
        return int(self.indices.size)

    def __repr__(self) -> str:
        return (f"RowSparseGrad(rows={self.nnz_rows}/{self.shape[0]}, "
                f"shape={self.shape})")

    # -- pickling (slots classes need explicit state) -------------------
    def __getstate__(self):
        return (self.indices, self.values, self.shape)

    def __setstate__(self, state) -> None:
        self.indices, self.values, self.shape = state

    # -- conversions ----------------------------------------------------
    def copy(self) -> "RowSparseGrad":
        return RowSparseGrad(self.indices.copy(), self.values.copy(),
                             self.shape)

    def densify(self) -> np.ndarray:
        """Materialize the equivalent dense gradient array."""
        dense = np.zeros(self.shape)
        dense[self.indices] = self.values
        return dense

    def add_into_dense(self, dense: np.ndarray) -> None:
        """``dense += self`` in place (indices are duplicate-free)."""
        dense[self.indices] += self.values

    def merge(self, other: "RowSparseGrad") -> "RowSparseGrad":
        """Coalesced sum of two row-sparse gradients (``self`` first).

        Concatenating ``self`` before ``other`` and re-coalescing sums each
        shared row as ``existing + incoming`` — the exact accumulation
        order of the dense ``grad += update``.
        """
        idx = np.concatenate([self.indices, other.indices])
        vals = np.concatenate([self.values, other.values])
        unique, values = _coalesce(self.shape, idx, vals)
        return RowSparseGrad(unique, values, self.shape)


def _coalesce(shape: Tuple[int, ...], flat_idx: np.ndarray,
              values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sum duplicate rows; returns sorted unique indices and row sums.

    Uses the same composite-``bincount`` reduction as
    :func:`repro.nn.tensor._scatter_add`, restricted to the compacted row
    set: per destination row the contributions are accumulated in input
    order, making the sums bit-identical to the dense scatter's rows.
    """
    tail = int(np.prod(shape[1:], dtype=np.int64))
    unique, inverse = np.unique(flat_idx, return_inverse=True)
    n = int(unique.size)
    if n == flat_idx.size:
        # Already duplicate-free: unique() sorted the rows for us.
        order = np.argsort(flat_idx, kind="stable")
        return unique, np.ascontiguousarray(
            values.reshape((flat_idx.size,) + shape[1:])[order])
    values2d = np.ascontiguousarray(values).reshape(flat_idx.size, tail)
    composite = inverse[:, None] * tail + np.arange(tail)
    summed = np.bincount(composite.ravel(), weights=values2d.ravel(),
                         minlength=n * tail)
    return unique, summed.reshape((n,) + shape[1:])


def rowsparse_from_gather(shape: Tuple[int, ...], index: np.ndarray,
                          grad: np.ndarray,
                          densify_fraction: Optional[float] = None):
    """Build the gradient of ``table[index]`` w.r.t. ``table``.

    Returns a coalesced :class:`RowSparseGrad` — or, when the gather
    touches at least ``densify_fraction`` of the table's rows, the
    equivalent dense ``ndarray`` (bit-identical to the dense scatter path).
    """
    rows = shape[0]
    fraction = DENSIFY_FRACTION if densify_fraction is None else densify_fraction
    flat_idx = np.asarray(index, dtype=np.int64).ravel() % rows
    unique, values = _coalesce(shape, flat_idx, grad)
    if unique.size >= rows * fraction:
        dense = np.zeros(shape)
        dense[unique] = values
        return dense
    return RowSparseGrad(unique, values, shape)


# ----------------------------------------------------------------------
# Representation-agnostic gradient helpers (the GL007-sanctioned surface)
# ----------------------------------------------------------------------
def grad_sq_sum(grad) -> float:
    """Sum of squared gradient entries, dense or row-sparse."""
    if isinstance(grad, RowSparseGrad):
        return float((grad.values ** 2).sum())
    return float((grad ** 2).sum())


def grad_scale_(grad, scale: float) -> None:
    """Scale a gradient in place, dense or row-sparse."""
    if isinstance(grad, RowSparseGrad):
        grad.values *= scale
    else:
        grad *= scale


def grad_all_finite(grad) -> bool:
    """True when every gradient entry is finite, dense or row-sparse."""
    if isinstance(grad, RowSparseGrad):
        return bool(np.all(np.isfinite(grad.values)))
    return bool(np.all(np.isfinite(grad)))


def densify_grad(grad) -> np.ndarray:
    """Return the dense ``ndarray`` view of a gradient of either kind."""
    if isinstance(grad, RowSparseGrad):
        return grad.densify()
    return grad
