"""Module/Parameter abstractions and common layers.

The API intentionally mirrors a small subset of ``torch.nn``: modules own
parameters and sub-modules, ``parameters()`` walks the tree, and
``train()``/``eval()`` toggle behaviours such as dropout.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from . import init
from .sparse import grad_all_finite
from .tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as trainable by modules."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


import contextlib


@contextlib.contextmanager
def no_grad(module: "Module"):
    """Temporarily disable gradient tracking for every parameter of
    ``module``: forward passes inside the block build no autograd graph,
    which makes inference measurably cheaper."""
    params = list(module.parameters())
    flags = [p.requires_grad for p in params]
    for param in params:
        param.requires_grad = False
    try:
        yield
    finally:
        for param, flag in zip(params, flags):
            param.requires_grad = flag


class Module:
    """Base class for all neural network modules."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # -- registration ---------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal ------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield every trainable parameter in this module tree (deduplicated)."""
        seen = set()
        for param in self._parameters.values():
            if id(param) not in seen:
                seen.add(id(param))
                yield param
        for module in self._modules.values():
            for param in module.parameters():
                if id(param) not in seen:
                    seen.add(id(param))
                    yield param

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    # -- mode & gradient management --------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def set_sparse_grads(self, enabled: bool = True) -> "Module":
        """Toggle row-sparse gradients on every :class:`Embedding` table.

        Dense parameters (RNN/attention weights, biases) are untouched;
        only gather-fed lookup tables benefit from the sparse path.
        """
        for module in self.modules():
            if isinstance(module, Embedding):
                module.weight.sparse_grad = bool(enabled)
        return self

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def non_finite_parameters(self) -> List[Tuple[str, str]]:
        """``(name, field)`` pairs whose data or gradient contains NaN/Inf.

        ``field`` is ``"data"`` or ``"grad"``.  Used by the training guards
        (and the anomaly sanitizer's error messages) to name exactly which
        parameters went bad instead of reporting a bare non-finite loss.
        """
        bad: List[Tuple[str, str]] = []
        for name, param in self.named_parameters():
            if not np.all(np.isfinite(param.data)):
                bad.append((name, "data"))
            if param.grad is not None and not grad_all_finite(param.grad):
                bad.append((name, "grad"))
        return bad

    # -- state dict -------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Mapping[str, np.ndarray],
                        assign: bool = False) -> None:
        """Load parameters from ``state`` (any mapping, lazily fetched).

        ``assign=False`` copies into the existing parameter buffers (the
        historical behavior, safe for a model that keeps training).
        ``assign=True`` *adopts* each array as ``param.data`` without a
        copy — fetching values one key at a time — so loading never holds
        two full copies of the model in memory; mmap-backed arrays stay
        mmap-backed.  Adopted arrays may be read-only: use ``assign``
        for inference/serving, not for a model about to be optimized
        in place.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for name in state:
            if name not in own:
                raise KeyError(f"unexpected parameter in state dict: {name}")
            values = state[name]
            if own[name].data.shape != values.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{own[name].data.shape} vs {values.shape}")
            if assign:
                own[name].data = values
            else:
                own[name].data[...] = values

    # -- call protocol ----------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with Xavier-uniform weights."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Embedding(Module):
    """Lookup table of dense vectors, with optional padding index.

    Row ``padding_idx`` is kept at zero: its gradient updates are masked out
    after each backward pass by the optimizers via the ``frozen_rows`` hint.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator, padding_idx: Optional[int] = None,
                 std: float = 0.05) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        weight = init.normal((num_embeddings, embedding_dim), rng, std=std)
        if padding_idx is not None:
            weight[padding_idx] = 0.0
        self.weight = Parameter(weight)

    def forward(self, indices: np.ndarray) -> Tensor:
        out = F.embedding_lookup(self.weight, indices)
        return out

    def zero_padding_row(self) -> None:
        """Re-zero the padding row (call after optimizer steps)."""
        if self.padding_idx is not None:
            self.weight.data[self.padding_idx] = 0.0


class Dropout(Module):
    """Inverted dropout driven by an explicit generator for reproducibility."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.rate = rate
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self.training, self.rng)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers: List[Module] = list(layers)
        for i, layer in enumerate(self.layers):
            self.register_module(f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with a configurable activation."""

    def __init__(self, dims: Sequence[int], rng: np.random.Generator,
                 activation: str = "relu", final_activation: bool = False) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        self.activation = activation
        self.final_activation = final_activation
        self.linears: List[Linear] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = Linear(d_in, d_out, rng)
            self.register_module(f"fc{i}", layer)
            self.linears.append(layer)

    def _activate(self, x: Tensor) -> Tensor:
        if self.activation == "relu":
            return x.relu()
        if self.activation == "tanh":
            return x.tanh()
        if self.activation == "sigmoid":
            return x.sigmoid()
        raise ValueError(f"unknown activation: {self.activation}")

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.linears):
            x = layer(x)
            if i < len(self.linears) - 1 or self.final_activation:
                x = self._activate(x)
        return x
