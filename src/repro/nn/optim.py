"""First-order optimizers, gradient clipping and learning-rate schedules."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip gradients jointly to ``max_norm``; return the pre-clip norm."""
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float((param.grad ** 2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = np.zeros_like(param.data)
                vel = self.momentum * vel + grad
                self._velocity[id(param)] = vel
                grad = vel
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad ** 2
            self._m[id(param)] = m
            self._v[id(param)] = v
            param.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


class Adagrad(Optimizer):
    """Adagrad optimizer, the historical choice for sparse recommenders."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 eps: float = 1e-10) -> None:
        super().__init__(params, lr)
        self.eps = eps
        self._accum: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            accum = self._accum.get(id(param))
            if accum is None:
                accum = np.zeros_like(param.data)
            accum = accum + param.grad ** 2
            self._accum[id(param)] = accum
            param.data -= self.lr * param.grad / (np.sqrt(accum) + self.eps)


class StepLR:
    """Multiply the optimizer learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

    @property
    def lr(self) -> float:
        return self.optimizer.lr


def make_optimizer(name: str, params: Iterable[Parameter], lr: float,
                   weight_decay: float = 0.0) -> Optimizer:
    """Factory used by the experiment configs ('adam' | 'sgd' | 'adagrad')."""
    name = name.lower()
    if name == "adam":
        return Adam(params, lr=lr, weight_decay=weight_decay)
    if name == "sgd":
        return SGD(params, lr=lr, weight_decay=weight_decay)
    if name == "adagrad":
        return Adagrad(params, lr=lr)
    raise ValueError(f"unknown optimizer: {name!r}")
