"""First-order optimizers, gradient clipping and learning-rate schedules.

Every optimizer here understands both gradient representations: a dense
``ndarray`` or a :class:`repro.nn.sparse.RowSparseGrad` produced by the
embedding-gather backward.  Sparse gradients take a *lazy* row path — only
the touched rows of the parameter (and of the optimizer state) are read or
written, turning the per-step cost from ``O(V*d)`` into ``O(rows*d)``.

Lazy semantics and dense equivalence
------------------------------------
Per touched row, the sparse update applies exactly the dense elementwise
formula, so a touch pattern covering every row each step produces
bit-identical trajectories to the dense optimizer.  Untouched rows are
frozen, which matches the dense optimizer bit-for-bit wherever the dense
update is a no-op on zero gradient:

* plain ``SGD`` (no momentum, no weight decay) and ``Adagrad`` are
  bit-identical under *any* touch pattern (``x - lr*0 == x`` and
  ``accum += 0`` are exact no-ops);
* ``Adam``/``SparseAdam`` rows are bit-identical from each row's first
  touch onward as long as the row stays touched (zero first/second moments
  make the dense update an exact no-op before the first touch); rows whose
  moments are non-zero while skipped would drift under the dense rule, and
  the lazy path intentionally freezes them instead, catching up the moment
  decay (``m *= beta1**gap``, ``v *= beta2**gap``) and applying the global
  step's bias correction on the next touch;
* momentum ``SGD`` and weight decay likewise update touched rows only.

Optimizer state (velocity, moments, accumulators) is keyed by the stable
parameter *index* in ``self.params`` — never ``id(param)``, which the
allocator may reuse after garbage collection, silently aliasing state
across parameters.  State arrays are updated in place; no per-step
re-allocation of table-sized buffers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .module import Parameter
from .sparse import RowSparseGrad, grad_scale_, grad_sq_sum


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip gradients jointly to ``max_norm``; return the pre-clip norm.

        Representation-aware: a row-sparse gradient contributes the sum of
        squares of its stored rows (its zero rows add exactly zero) and is
        scaled in place without densifying.
        """
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += grad_sq_sum(param.grad)
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.params:
                if param.grad is not None:
                    grad_scale_(param.grad, scale)
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for index, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            if isinstance(grad, RowSparseGrad):
                self._sparse_update(index, param, grad)
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(index)
                if vel is None:
                    vel = np.zeros_like(param.data)
                    self._velocity[index] = vel
                vel *= self.momentum
                vel += grad
                grad = vel
            param.data -= self.lr * grad

    def _sparse_update(self, index: int, param: Parameter,
                       grad: RowSparseGrad) -> None:
        """Dense formula on the touched rows only (lazy momentum/decay)."""
        rows, vals = grad.indices, grad.values
        if self.weight_decay:
            vals = vals + self.weight_decay * param.data[rows]
        if self.momentum:
            vel = self._velocity.get(index)
            if vel is None:
                vel = np.zeros_like(param.data)
                self._velocity[index] = vel
            vel_rows = vel[rows]
            vel_rows *= self.momentum
            vel_rows += vals
            vel[rows] = vel_rows
            vals = vel_rows
        param.data[rows] -= self.lr * vals


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015), with a lazy row-sparse path.

    Dense gradients follow the textbook update with the shared step counter
    ``_t``.  Row-sparse gradients update only the touched rows: per-row
    last-touch steps record how many steps a row skipped, the moment decay
    is caught up exactly (``m *= beta1**gap``, ``v *= beta2**gap`` — what
    ``gap`` zero-gradient dense updates would have left behind), and the
    bias correction uses the global step, so a row touched every step since
    its first touch follows the dense trajectory bit-for-bit.
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        #: Per-parameter ``(rows,)`` int64 array of each row's last-touch
        #: step; present only for parameters that have seen sparse grads.
        self._row_steps: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for index, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            if isinstance(grad, RowSparseGrad):
                self._sparse_update(index, param, grad.indices, grad.values)
                continue
            if index in self._row_steps:
                # Sparse-tracked parameter receiving a dense gradient: a
                # dense grad touches every row, so route it through the
                # row path to keep the per-row step bookkeeping coherent.
                all_rows = np.arange(param.data.shape[0], dtype=np.int64)
                self._sparse_update(index, param, all_rows, grad)
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(index)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
                self._m[index] = m
                self._v[index] = v
            else:
                v = self._v[index]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(grad)
            param.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def _sparse_update(self, index: int, param: Parameter,
                       rows: np.ndarray, vals: np.ndarray) -> None:
        had_state = index in self._m
        steps = self._row_steps.get(index)
        if steps is None:
            # First sparse grad for this parameter.  If it was updated
            # densely before, every row was effectively touched at the
            # previous step; otherwise rows start untouched at step 0.
            start = self._t - 1 if had_state else 0
            steps = np.full(param.data.shape[0], start, dtype=np.int64)
            self._row_steps[index] = steps
        m = self._m.get(index)
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
            self._m[index] = m
            self._v[index] = v
        else:
            v = self._v[index]
        if self.weight_decay:
            vals = vals + self.weight_decay * param.data[rows]
        gaps = self._t - steps[rows]
        steps[rows] = self._t
        m_rows = m[rows]
        v_rows = v[rows]
        if np.all(gaps == 1):
            # Rows touched on the previous step too: plain EMA update,
            # bit-identical to the dense in-place formula.
            m_rows *= self.beta1
            v_rows *= self.beta2
        else:
            # Catch up the decay the skipped steps would have applied.
            corr_shape = (-1,) + (1,) * (param.data.ndim - 1)
            gap_col = gaps.reshape(corr_shape)
            m_rows *= self.beta1 ** gap_col
            v_rows *= self.beta2 ** gap_col
        m_rows += (1.0 - self.beta1) * vals
        v_rows += (1.0 - self.beta2) * np.square(vals)
        m[rows] = m_rows
        v[rows] = v_rows
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        param.data[rows] -= (self.lr * (m_rows / bias1)
                             / (np.sqrt(v_rows / bias2) + self.eps))


class SparseAdam(Adam):
    """Adam variant named for its lazy handling of row-sparse gradients.

    :class:`Adam` already routes sparse gradients through the lazy row
    path; this subclass exists as the explicit spelling (mirroring
    ``torch.optim.SparseAdam``) for configs that train embedding-heavy
    models.
    """


class Adagrad(Optimizer):
    """Adagrad optimizer, the historical choice for sparse recommenders.

    The lazy row path is bit-identical to the dense update under *any*
    touch pattern: a zero gradient leaves the accumulator and the
    parameter bitwise unchanged.
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 eps: float = 1e-10) -> None:
        super().__init__(params, lr)
        self.eps = eps
        self._accum: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for index, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            accum = self._accum.get(index)
            if accum is None:
                accum = np.zeros_like(param.data)
                self._accum[index] = accum
            if isinstance(grad, RowSparseGrad):
                rows, vals = grad.indices, grad.values
                accum_rows = accum[rows]
                accum_rows += np.square(vals)
                accum[rows] = accum_rows
                param.data[rows] -= (self.lr * vals
                                     / (np.sqrt(accum_rows) + self.eps))
            else:
                accum += np.square(grad)
                param.data -= self.lr * grad / (np.sqrt(accum) + self.eps)


class StepLR:
    """Multiply the optimizer learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

    @property
    def lr(self) -> float:
        return self.optimizer.lr


def make_optimizer(name: str, params: Iterable[Parameter], lr: float,
                   weight_decay: float = 0.0) -> Optimizer:
    """Factory used by the experiment configs
    ('adam' | 'sparseadam' | 'sgd' | 'adagrad')."""
    name = name.lower()
    if name == "adam":
        return Adam(params, lr=lr, weight_decay=weight_decay)
    if name in ("sparseadam", "sparse_adam"):
        return SparseAdam(params, lr=lr, weight_decay=weight_decay)
    if name == "sgd":
        return SGD(params, lr=lr, weight_decay=weight_decay)
    if name == "adagrad":
        return Adagrad(params, lr=lr)
    raise ValueError(f"unknown optimizer: {name!r}")
