"""Fused autograd kernels for the engine's hot paths.

Each op here collapses what used to be a chain of elementwise graph nodes
into a single :meth:`Tensor._make` node with a hand-derived backward.  The
win is twofold: the forward pass issues a handful of large numpy calls
instead of dozens of small ones, and the backward pass runs one closure per
step instead of rebuilding gradients through every intermediate.

Numerical contract: every fused forward reproduces the exact op sequence of
the composite implementation it replaces (same associativity, same
:func:`repro.nn.tensor._stable_sigmoid`), so the golden-value fixtures in
``tests/golden`` recorded against the composite code still match to 1e-10.
Backwards are analytic and agree with the composite gradients up to
floating-point rounding; finite-difference checks cover them directly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .sparse import rowsparse_from_gather
from .tensor import Tensor, _scatter_add, _stable_sigmoid


def fused_gru_step(x: Tensor, h: Tensor, w_ih: Tensor, w_hh: Tensor,
                   b_ih: Tensor, b_hh: Tensor,
                   keep: Optional[np.ndarray] = None) -> Tensor:
    """One GRU step as a single graph node.

    Computes ``h' = (1 - z) * n + z * h`` with the standard r/z/n gates.
    ``keep`` is an optional constant ``(batch, 1)`` 0/1 array; where it is
    zero the previous state is carried through unchanged (the layer's
    step-mask skip rule), folded into the same node instead of three extra
    elementwise ops per step.
    """
    x_data, h_data = x.data, h.data
    w_ih_data, w_hh_data = w_ih.data, w_hh.data
    hidden = w_hh_data.shape[1]
    gates_x = x_data @ w_ih_data.T + b_ih.data
    gates_h = h_data @ w_hh_data.T + b_hh.data
    r = _stable_sigmoid(gates_x[:, :hidden] + gates_h[:, :hidden])
    z = _stable_sigmoid(gates_x[:, hidden:2 * hidden]
                        + gates_h[:, hidden:2 * hidden])
    gates_h_n = gates_h[:, 2 * hidden:]
    n = np.tanh(gates_x[:, 2 * hidden:] + r * gates_h_n)
    h_new = (1.0 - z) * n + z * h_data
    out_data = h_new if keep is None else h_new * keep + h_data * (1.0 - keep)

    def backward(grad: np.ndarray) -> None:
        g_new = grad if keep is None else grad * keep
        dz = g_new * (h_data - n)
        dn_pre = g_new * (1.0 - z) * (1.0 - n * n)
        dr = dn_pre * gates_h_n
        dgates_x = np.empty((grad.shape[0], 3 * hidden))
        dgates_x[:, :hidden] = dr * r * (1.0 - r)
        dgates_x[:, hidden:2 * hidden] = dz * z * (1.0 - z)
        dgates_x[:, 2 * hidden:] = dn_pre
        dgates_h = dgates_x.copy()
        dgates_h[:, 2 * hidden:] *= r
        if x.requires_grad:
            x._accumulate(dgates_x @ w_ih_data, own=True)
        if h.requires_grad:
            dh = dgates_h @ w_hh_data + g_new * z
            if keep is not None:
                dh += grad * (1.0 - keep)
            h._accumulate(dh, own=True)
        if w_ih.requires_grad:
            w_ih._accumulate(dgates_x.T @ x_data, own=True)
        if w_hh.requires_grad:
            w_hh._accumulate(dgates_h.T @ h_data, own=True)
        if b_ih.requires_grad:
            b_ih._accumulate(dgates_x.sum(axis=0), own=True)
        if b_hh.requires_grad:
            b_hh._accumulate(dgates_h.sum(axis=0), own=True)

    return Tensor._make(out_data, (x, h, w_ih, w_hh, b_ih, b_hh), backward)


def fused_lstm_step(x: Tensor, h: Tensor, c: Tensor, w_ih: Tensor,
                    w_hh: Tensor, bias: Tensor,
                    keep: Optional[np.ndarray] = None
                    ) -> Tuple[Tensor, Tensor]:
    """One LSTM step producing ``(h', c')`` as two nodes over shared math.

    The two outputs share the forward intermediates; each backward
    accumulates its own contribution into the six parents, and because
    gradients are additive the split is exact.  ``keep`` behaves as in
    :func:`fused_gru_step`, freezing both states on masked steps.
    """
    x_data, h_data, c_data = x.data, h.data, c.data
    w_ih_data, w_hh_data = w_ih.data, w_hh.data
    hidden = w_hh_data.shape[1]
    gates = x_data @ w_ih_data.T + h_data @ w_hh_data.T + bias.data
    i = _stable_sigmoid(gates[:, :hidden])
    f = _stable_sigmoid(gates[:, hidden:2 * hidden])
    g = np.tanh(gates[:, 2 * hidden:3 * hidden])
    o = _stable_sigmoid(gates[:, 3 * hidden:])
    c_new = f * c_data + i * g
    tanh_c = np.tanh(c_new)
    h_new = o * tanh_c
    if keep is None:
        h_out_data, c_out_data = h_new, c_new
    else:
        inv_keep = 1.0 - keep
        h_out_data = h_new * keep + h_data * inv_keep
        c_out_data = c_new * keep + c_data * inv_keep

    parents = (x, h, c, w_ih, w_hh, bias)

    def chain(dc_new: np.ndarray, do: Optional[np.ndarray],
              dh_extra: Optional[np.ndarray],
              dc_extra: Optional[np.ndarray]) -> None:
        dgates = np.empty((dc_new.shape[0], 4 * hidden))
        dgates[:, :hidden] = dc_new * g * i * (1.0 - i)
        dgates[:, hidden:2 * hidden] = dc_new * c_data * f * (1.0 - f)
        dgates[:, 2 * hidden:3 * hidden] = dc_new * i * (1.0 - g * g)
        if do is None:
            dgates[:, 3 * hidden:] = 0.0
        else:
            dgates[:, 3 * hidden:] = do * o * (1.0 - o)
        if x.requires_grad:
            x._accumulate(dgates @ w_ih_data, own=True)
        if h.requires_grad:
            dh = dgates @ w_hh_data
            if dh_extra is not None:
                dh += dh_extra
            h._accumulate(dh, own=True)
        if c.requires_grad:
            dc = dc_new * f
            if dc_extra is not None:
                dc += dc_extra
            c._accumulate(dc, own=True)
        if w_ih.requires_grad:
            w_ih._accumulate(dgates.T @ x_data, own=True)
        if w_hh.requires_grad:
            w_hh._accumulate(dgates.T @ h_data, own=True)
        if bias.requires_grad:
            bias._accumulate(dgates.sum(axis=0), own=True)

    def backward_h(grad: np.ndarray) -> None:
        g_h = grad if keep is None else grad * keep
        do = g_h * tanh_c
        dc_new = g_h * o * (1.0 - tanh_c * tanh_c)
        dh_extra = None if keep is None else grad * (1.0 - keep)
        chain(dc_new, do, dh_extra, None)

    def backward_c(grad: np.ndarray) -> None:
        g_c = grad if keep is None else grad * keep
        dc_extra = None if keep is None else grad * (1.0 - keep)
        chain(g_c, None, None, dc_extra)

    h_out = Tensor._make(h_out_data, parents, backward_h)
    c_out = Tensor._make(c_out_data, parents, backward_c)
    return h_out, c_out


def fused_masked_softmax(x: Tensor, mask: np.ndarray,
                         axis: int = -1) -> Tensor:
    """Masked softmax as one node: ``y = exp * m / (sum + 1e-12)``.

    Backward is the analytic ``y * (g - sum(g * y))`` — exact for this
    forward including the epsilon in the denominator, because the epsilon
    is a constant added to a sum whose derivative it does not change.
    """
    mask_b = np.asarray(mask, dtype=bool)
    x_data = x.data
    shifted = x_data + np.where(mask_b, 0.0, -1e30)
    shifted = shifted - shifted.max(axis=axis, keepdims=True)
    exp = np.exp(shifted) * mask_b.astype(np.float64)
    denom = exp.sum(axis=axis, keepdims=True) + 1e-12
    out_data = exp / denom

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            inner = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - inner), own=True)

    return Tensor._make(out_data, (x,), backward)


def fused_cross_entropy(logits: Tensor, target_indices: np.ndarray) -> Tensor:
    """Softmax cross-entropy with integer targets as a single node.

    Backward is the classic ``(softmax - onehot) / batch`` — one subtraction
    on the already-computed softmax instead of re-deriving through
    log-softmax, gather and mean nodes.
    """
    targets = np.asarray(target_indices, dtype=np.int64)
    x_data = logits.data
    shifted = x_data - x_data.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    sum_exp = exp.sum(axis=-1, keepdims=True)
    rows = np.arange(x_data.shape[0])
    picked = (shifted - np.log(sum_exp))[rows, targets]
    batch = x_data.shape[0]
    out_data = -(picked.sum() * (1.0 / batch))

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            scale = float(grad) * (1.0 / batch)
            dlogits = (exp / sum_exp) * scale
            dlogits[rows, targets] -= scale
            logits._accumulate(dlogits, own=True)

    return Tensor._make(np.asarray(out_data), (logits,), backward)


def fused_bce_with_logits(logits: Tensor, targets: np.ndarray,
                          mask: Optional[np.ndarray] = None) -> Tensor:
    """Stable BCE-on-logits (``max(x,0) - x*y + log(1 + e^{-|x|})``) fused.

    The backward replicates the composite relu/abs subgradients exactly
    (zero at ``x == 0``), so it matches the unfused loss everywhere, not
    just almost-everywhere.
    """
    targets = np.asarray(targets, dtype=np.float64)
    x_data = logits.data
    abs_x = np.abs(x_data)
    exp_neg = np.exp(-abs_x)
    positive = x_data > 0
    per_entry = x_data * positive - x_data * targets + np.log(1.0 + exp_neg)
    if mask is not None:
        mask = np.asarray(mask, dtype=np.float64)
        denom = max(float(mask.sum()), 1.0)
        out_data = (per_entry * mask).sum() * (1.0 / denom)
    else:
        denom = float(per_entry.size)
        out_data = per_entry.sum() * (1.0 / denom)

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            dper = positive - targets - np.sign(x_data) * (exp_neg
                                                           / (1.0 + exp_neg))
            if mask is not None:
                dper *= mask
            dper *= float(grad) * (1.0 / denom)
            logits._accumulate(dper, own=True)

    return Tensor._make(np.asarray(out_data), (logits,), backward)


def fused_gru_sequence(inputs: Tensor, h0: Tensor, w_ih: Tensor,
                       w_hh: Tensor, b_ih: Tensor, b_hh: Tensor,
                       step_mask: Optional[np.ndarray] = None) -> Tensor:
    """A whole GRU unroll as one graph node returning ``(B, T, H)`` states.

    The input-side projection for *all* timesteps runs as a single
    ``(B*T, I) @ (I, 3H)`` gemm, and the backward pass is a tight BPTT loop
    whose weight gradients are likewise batched into one gemm each.  Only
    the recurrent ``h @ W_hh^T`` product remains per-step, because it must.
    ``step_mask`` rows that are False freeze the state exactly like the
    per-step ``keep`` argument of :func:`fused_gru_step`.
    """
    inputs_data, h0_data = inputs.data, h0.data
    w_ih_data, w_hh_data = w_ih.data, w_hh.data
    batch, time, in_size = inputs_data.shape
    hidden = w_hh_data.shape[1]
    keep = None
    if step_mask is not None and not step_mask.all():
        keep = np.asarray(step_mask, dtype=np.float64)

    gates_x = inputs_data.reshape(batch * time, in_size) @ w_ih_data.T
    gates_x += b_ih.data
    gates_x = gates_x.reshape(batch, time, 3 * hidden)

    r_seq = np.empty((batch, time, hidden))
    z_seq = np.empty((batch, time, hidden))
    n_seq = np.empty((batch, time, hidden))
    ghn_seq = np.empty((batch, time, hidden))
    prev_seq = np.empty((batch, time, hidden))
    states_data = np.empty((batch, time, hidden))
    h = h0_data
    b_hh_data = b_hh.data
    for t in range(time):
        prev_seq[:, t] = h
        gates_h = h @ w_hh_data.T + b_hh_data
        gx = gates_x[:, t]
        r = _stable_sigmoid(gx[:, :hidden] + gates_h[:, :hidden])
        z = _stable_sigmoid(gx[:, hidden:2 * hidden]
                            + gates_h[:, hidden:2 * hidden])
        ghn = gates_h[:, 2 * hidden:]
        n = np.tanh(gx[:, 2 * hidden:] + r * ghn)
        h_new = (1.0 - z) * n + z * h
        if keep is not None:
            k = keep[:, t:t + 1]
            h_new = h_new * k + h * (1.0 - k)
        r_seq[:, t], z_seq[:, t], n_seq[:, t], ghn_seq[:, t] = r, z, n, ghn
        states_data[:, t] = h = h_new

    def backward(grad: np.ndarray) -> None:
        dgx_seq = np.empty((batch, time, 3 * hidden))
        dgh_seq = np.empty((batch, time, 3 * hidden))
        dh = np.zeros((batch, hidden))
        for t in range(time - 1, -1, -1):
            g = grad[:, t] + dh
            if keep is not None:
                k = keep[:, t:t + 1]
                g_new = g * k
            else:
                g_new = g
            r, z, n = r_seq[:, t], z_seq[:, t], n_seq[:, t]
            h_prev = prev_seq[:, t]
            dz = g_new * (h_prev - n)
            dn_pre = g_new * (1.0 - z) * (1.0 - n * n)
            dr = dn_pre * ghn_seq[:, t]
            dgx = dgx_seq[:, t]
            dgx[:, :hidden] = dr * r * (1.0 - r)
            dgx[:, hidden:2 * hidden] = dz * z * (1.0 - z)
            dgx[:, 2 * hidden:] = dn_pre
            dgh = dgh_seq[:, t]
            dgh[:] = dgx
            dgh[:, 2 * hidden:] *= r
            dh = dgh @ w_hh_data + g_new * z
            if keep is not None:
                dh += g * (1.0 - k)
        flat_dgx = dgx_seq.reshape(batch * time, 3 * hidden)
        flat_dgh = dgh_seq.reshape(batch * time, 3 * hidden)
        if inputs.requires_grad:
            dx = (flat_dgx @ w_ih_data).reshape(batch, time, in_size)
            inputs._accumulate(dx, own=True)
        if h0.requires_grad:
            h0._accumulate(dh, own=True)
        if w_ih.requires_grad:
            w_ih._accumulate(
                flat_dgx.T @ inputs_data.reshape(batch * time, in_size),
                own=True)
        if w_hh.requires_grad:
            w_hh._accumulate(
                flat_dgh.T @ prev_seq.reshape(batch * time, hidden), own=True)
        if b_ih.requires_grad:
            b_ih._accumulate(flat_dgx.sum(axis=0), own=True)
        if b_hh.requires_grad:
            b_hh._accumulate(flat_dgh.sum(axis=0), own=True)

    return Tensor._make(states_data, (inputs, h0, w_ih, w_hh, b_ih, b_hh),
                        backward)


def fused_lstm_sequence(inputs: Tensor, h0: Tensor, c0: Tensor,
                        w_ih: Tensor, w_hh: Tensor, bias: Tensor,
                        step_mask: Optional[np.ndarray] = None) -> Tensor:
    """A whole LSTM unroll as one node returning ``(B, T, H)`` hidden states.

    The cell chain stays internal to the node (the layer API only exposes
    hidden states), so its gradient is carried by the BPTT loop instead of
    per-step autograd edges.  Masked steps freeze both ``h`` and ``c``.
    """
    inputs_data, h0_data, c0_data = inputs.data, h0.data, c0.data
    w_ih_data, w_hh_data = w_ih.data, w_hh.data
    batch, time, in_size = inputs_data.shape
    hidden = w_hh_data.shape[1]
    keep = None
    if step_mask is not None and not step_mask.all():
        keep = np.asarray(step_mask, dtype=np.float64)

    gates_x = inputs_data.reshape(batch * time, in_size) @ w_ih_data.T
    gates_x += bias.data
    gates_x = gates_x.reshape(batch, time, 4 * hidden)

    i_seq = np.empty((batch, time, hidden))
    f_seq = np.empty((batch, time, hidden))
    g_seq = np.empty((batch, time, hidden))
    o_seq = np.empty((batch, time, hidden))
    tanh_c_seq = np.empty((batch, time, hidden))
    h_prev_seq = np.empty((batch, time, hidden))
    c_prev_seq = np.empty((batch, time, hidden))
    states_data = np.empty((batch, time, hidden))
    h, c = h0_data, c0_data
    for t in range(time):
        h_prev_seq[:, t], c_prev_seq[:, t] = h, c
        gates = gates_x[:, t] + h @ w_hh_data.T
        i = _stable_sigmoid(gates[:, :hidden])
        f = _stable_sigmoid(gates[:, hidden:2 * hidden])
        g = np.tanh(gates[:, 2 * hidden:3 * hidden])
        o = _stable_sigmoid(gates[:, 3 * hidden:])
        c_new = f * c + i * g
        tanh_c = np.tanh(c_new)
        h_new = o * tanh_c
        if keep is not None:
            k = keep[:, t:t + 1]
            inv_k = 1.0 - k
            h_new = h_new * k + h * inv_k
            c_new = c_new * k + c * inv_k
        i_seq[:, t], f_seq[:, t], g_seq[:, t], o_seq[:, t] = i, f, g, o
        tanh_c_seq[:, t] = tanh_c
        states_data[:, t] = h = h_new
        c = c_new

    def backward(grad: np.ndarray) -> None:
        dgates_seq = np.empty((batch, time, 4 * hidden))
        dh = np.zeros((batch, hidden))
        dc = np.zeros((batch, hidden))
        for t in range(time - 1, -1, -1):
            g_total = grad[:, t] + dh
            if keep is not None:
                k = keep[:, t:t + 1]
                g_new, dc_new = g_total * k, dc * k
            else:
                g_new, dc_new = g_total, dc
            i, f = i_seq[:, t], f_seq[:, t]
            g_gate, o = g_seq[:, t], o_seq[:, t]
            tanh_c = tanh_c_seq[:, t]
            c_prev = c_prev_seq[:, t]
            do = g_new * tanh_c
            dc_new = dc_new + g_new * o * (1.0 - tanh_c * tanh_c)
            dgates = dgates_seq[:, t]
            dgates[:, :hidden] = dc_new * g_gate * i * (1.0 - i)
            dgates[:, hidden:2 * hidden] = dc_new * c_prev * f * (1.0 - f)
            dgates[:, 2 * hidden:3 * hidden] = dc_new * i * (1.0 - g_gate
                                                             * g_gate)
            dgates[:, 3 * hidden:] = do * o * (1.0 - o)
            dh = dgates @ w_hh_data
            dc_next = dc_new * f
            if keep is not None:
                inv_k = 1.0 - k
                dh += g_total * inv_k
                dc_next += dc * inv_k
            dc = dc_next
        flat_dgates = dgates_seq.reshape(batch * time, 4 * hidden)
        if inputs.requires_grad:
            dx = (flat_dgates @ w_ih_data).reshape(batch, time, in_size)
            inputs._accumulate(dx, own=True)
        if h0.requires_grad:
            h0._accumulate(dh, own=True)
        if c0.requires_grad:
            c0._accumulate(dc, own=True)
        if w_ih.requires_grad:
            w_ih._accumulate(
                flat_dgates.T @ inputs_data.reshape(batch * time, in_size),
                own=True)
        if w_hh.requires_grad:
            w_hh._accumulate(
                flat_dgates.T @ h_prev_seq.reshape(batch * time, hidden),
                own=True)
        if bias.requires_grad:
            bias._accumulate(flat_dgates.sum(axis=0), own=True)

    return Tensor._make(states_data, (inputs, h0, c0, w_ih, w_hh, bias),
                        backward)


def fused_embedding_gather(weight: Tensor, indices: np.ndarray,
                           sparse: Optional[bool] = None) -> Tensor:
    """Row gather ``weight[indices]`` with a representation-aware backward.

    The dense backward materializes a full ``(V, d)`` zero table and
    scatter-adds into it — ``O(V*d)`` per step.  With ``sparse`` true (or
    left to follow ``weight.sparse_grad``), the backward instead coalesces
    the touched rows into a :class:`repro.nn.sparse.RowSparseGrad`, whose
    row values are bit-identical to the dense scatter's rows (see the
    numerical contract in :mod:`repro.nn.sparse`); gathers covering most of
    the table fall back to the dense array automatically.
    """
    idx = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[idx]
    use_sparse = weight.sparse_grad if sparse is None else bool(sparse)

    def backward(grad: np.ndarray) -> None:
        if not weight.requires_grad:
            return
        if use_sparse:
            weight._accumulate(
                rowsparse_from_gather(weight.data.shape, idx, grad), own=True)
        else:
            full = np.zeros(weight.data.shape)
            _scatter_add(full, idx, grad)
            weight._accumulate(full, own=True)

    return Tensor._make(out_data, (weight,), backward)
