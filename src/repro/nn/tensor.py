"""Reverse-mode automatic differentiation on top of numpy.

This module is the foundation of the :mod:`repro.nn` substrate.  The paper's
models were originally written in PyTorch/MindSpore; neither is available in
this environment, so we provide a small but complete autograd engine whose
semantics mirror PyTorch where the two overlap:

* a :class:`Tensor` wraps a ``numpy.ndarray`` and remembers the operations
  that produced it,
* calling :meth:`Tensor.backward` walks the graph in reverse topological
  order and accumulates gradients into every tensor with
  ``requires_grad=True``,
* broadcasting follows numpy rules; gradients are un-broadcast back to the
  operand shapes.

The engine stores data as ``float64`` which keeps finite-difference gradient
checks tight; model sizes in this reproduction are small enough that the
extra width costs little.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .sparse import RowSparseGrad, densify_grad, rowsparse_from_gather

ArrayLike = Union[np.ndarray, float, int, Sequence]

# ----------------------------------------------------------------------
# Graph observer hook points (anomaly detection)
# ----------------------------------------------------------------------
# The optional observer receives callbacks at the engine's choke points:
# node creation, gradient accumulation and the backward walk.  It exists so
# `repro.analysis.sanitizer` can implement torch-style detect-anomaly mode
# without the engine importing (or paying for) any of it: with no observer
# installed every hook is a single `is None` check.
_OBSERVER = None


def set_graph_observer(observer):
    """Install ``observer`` (or ``None`` to disable); returns the previous one.

    The observer must provide ``on_create(out, parents)``,
    ``on_backward_start(root, topo)``, ``on_node_backward(node)``,
    ``on_backward_end(root)`` and ``on_accumulate(tensor, grad)``.
    """
    global _OBSERVER
    previous = _OBSERVER
    _OBSERVER = observer
    return previous


def graph_observer():
    """The currently installed graph observer, or ``None``."""
    return _OBSERVER


def _as_array(value: ArrayLike) -> np.ndarray:
    """Coerce ``value`` to a float64 numpy array without copying needlessly."""
    if isinstance(value, np.ndarray):
        if value.dtype == np.float64:
            return value
        return value.astype(np.float64)
    return np.asarray(value, dtype=np.float64)


def _stable_sigmoid(data: np.ndarray) -> np.ndarray:
    """Numerically stable logistic used by every sigmoid in the engine.

    Kept as a module-level helper so the fused kernels in
    :mod:`repro.nn.fused` share the exact same numerics as
    :meth:`Tensor.sigmoid` (the golden-equivalence tests rely on this).
    """
    clipped = np.clip(data, -500, 500)
    # One exp of -|x| serves both branches: for x >= 0 it equals exp(-x)
    # and for x < 0 it equals exp(x), so each branch below is bit-identical
    # to the textbook two-sided form while halving the exp calls.
    decay = np.exp(-np.abs(clipped))
    return np.where(data >= 0,
                    1.0 / (1.0 + decay),
                    decay / (1.0 + decay))


def _is_basic_index(index) -> bool:
    """True for indices where every output element maps to a distinct input.

    Basic indexing (ints, slices, Ellipsis, None) and boolean masks never
    select the same source element twice, so the gradient scatter can use a
    direct ``+=`` store instead of the much slower ``np.add.at``.
    """
    basic = (int, np.integer, slice, type(Ellipsis), type(None))
    if isinstance(index, basic):
        return True
    if isinstance(index, np.ndarray):
        return index.dtype == np.bool_
    if isinstance(index, tuple):
        return all(isinstance(part, basic) for part in index)
    return False


def _scatter_add(target: np.ndarray, index, grad: np.ndarray) -> None:
    """Accumulate ``grad`` into ``target[index]``, duplicate-safe and fast.

    Three tiers: direct ``+=`` for duplicate-free (basic/bool) indices, a
    single-``bincount`` scatter for the integer-array gathers on the
    embedding hot path, and ``np.add.at`` as the general fallback.
    """
    if _is_basic_index(index):
        target[index] += grad
        return
    if (isinstance(index, np.ndarray) and index.dtype != np.bool_
            and target.ndim >= 1):
        rows = target.shape[0]
        tail = int(np.prod(target.shape[1:], dtype=np.int64))
        if rows * tail <= 50_000_000:
            flat_idx = np.asarray(index, dtype=np.int64).ravel() % rows
            grad2d = np.ascontiguousarray(grad).reshape(flat_idx.size, tail)
            composite = flat_idx[:, None] * tail + np.arange(tail)
            summed = np.bincount(composite.ravel(), weights=grad2d.ravel(),
                                 minlength=rows * tail)
            target += summed.reshape(target.shape)
            return
    np.add.at(target, index, grad)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    When an operand of shape ``shape`` was broadcast up to ``grad.shape``
    during the forward pass, the chain rule requires summing the incoming
    gradient over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the autograd graph.

    Parameters
    ----------
    data:
        Array-like payload; coerced to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "sparse_grad", "_backward",
                 "_parents", "name", "_op_meta")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: Optional[str] = None) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        # Opt-in: integer-array gathers from this tensor accumulate a
        # RowSparseGrad instead of a dense scatter (embedding tables).
        self.sparse_grad = False
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name
        # (op name, creation traceback) — populated only in anomaly mode.
        self._op_meta: Optional[Tuple[str, str]] = None

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Pickling (process-boundary transport)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle data/grad/flags only — a pickled tensor is detached.

        ``_backward`` closures and parent links cannot cross a process
        boundary; dropping them mirrors :meth:`detach` semantics, which is
        exactly what `repro.parallel` needs when shipping trained models
        to evaluation workers.
        """
        return (self.data, self.grad, self.requires_grad, self.name,
                self.sparse_grad)

    def __setstate__(self, state) -> None:
        if len(state) == 4:  # pre-sparse pickles
            self.data, self.grad, self.requires_grad, self.name = state
            self.sparse_grad = False
        else:
            (self.data, self.grad, self.requires_grad, self.name,
             self.sparse_grad) = state
        self._backward = None
        self._parents = ()
        self._op_meta = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create a result tensor wired into the graph if any parent needs grad."""
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        if _OBSERVER is not None:
            _OBSERVER.on_create(out, parents)
        return out

    def _accumulate(self, grad: np.ndarray, own: bool = False) -> None:
        """Add ``grad`` into this tensor's gradient buffer.

        ``own=True`` asserts the caller freshly allocated ``grad`` and holds
        no other reference, letting the buffer be adopted without the
        defensive copy — the engine's gradient-buffer reuse fast path.
        Closures that may pass through a shared upstream buffer (e.g. the
        identity branch of ``_unbroadcast``) must leave ``own`` False.
        """
        if _OBSERVER is not None:
            _OBSERVER.on_accumulate(self, grad)
        if isinstance(grad, RowSparseGrad):
            # Row-sparse incoming gradient (embedding-gather backward).
            # Each branch reproduces the dense accumulation order exactly:
            # adopt, merge (existing + incoming) or scatter into dense.
            if self.grad is None:
                self.grad = grad if own else grad.copy()
            elif isinstance(self.grad, RowSparseGrad):
                self.grad = self.grad.merge(grad)
            else:
                grad.add_into_dense(self.grad)
            return
        if self.grad is None:
            self.grad = grad if own else grad.copy()
        elif isinstance(self.grad, RowSparseGrad):
            dense = self.grad.densify()
            dense += grad
            self.grad = dense
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (and must be supplied for non-scalar
        outputs only if a non-trivial seed is wanted).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        seed = np.ones_like(self.data) if grad is None else _as_array(grad)
        if seed.shape != self.data.shape:
            raise ValueError(f"gradient shape {seed.shape} does not match tensor shape {self.data.shape}")

        # Iterative post-order topological sort.  The stack holds plain
        # nodes; a node is emitted when popped for the second time, which
        # the `emitted` set distinguishes from the first visit — no
        # (node, flag) tuple allocation per push.
        topo: List[Tensor] = []
        topo_append = topo.append
        visited = set()
        visited_add = visited.add
        emitted = set()
        stack: List[Tensor] = [self]
        stack_pop = stack.pop
        stack_append = stack.append
        while stack:
            node = stack_pop()
            node_id = id(node)
            if node_id in emitted:
                continue
            if node_id in visited:
                emitted.add(node_id)
                topo_append(node)
                continue
            visited_add(node_id)
            stack_append(node)
            for parent in node._parents:
                if id(parent) not in visited:
                    stack_append(parent)

        observer = _OBSERVER
        if observer is not None:
            observer.on_backward_start(self, topo)
        self._accumulate(seed)
        try:
            for node in reversed(topo):
                if node._backward is not None and node.grad is not None:
                    if observer is not None:
                        observer.on_node_backward(node)
                    node._backward(node.grad)
                    # All consumers of an interior node have already run
                    # (reverse topological order), so its gradient buffer
                    # is dead weight from here on — release it to keep the
                    # peak allocation proportional to the live frontier,
                    # not the whole graph.  Leaves (no `_backward`) and the
                    # root keep their gradients for the caller.
                    if node is not self:
                        node.grad = None
        finally:
            if observer is not None:
                observer.on_backward_end(self)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = _unbroadcast(grad, self.shape)
                self._accumulate(g, own=g is not grad)
            if other_t.requires_grad:
                g = _unbroadcast(grad, other_t.shape)
                other_t._accumulate(g, own=g is not grad)

        return Tensor._make(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad, own=True)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other_t)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other_t.data, self.shape),
                                 own=True)
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad * self.data,
                                                 other_t.shape), own=True)

        return Tensor._make(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other_t.data, self.shape),
                                 own=True)
            if other_t.requires_grad:
                other_t._accumulate(
                    _unbroadcast(-grad * self.data / (other_t.data ** 2),
                                 other_t.shape), own=True)

        return Tensor._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log composition")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1),
                                 own=True)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix operations
    # ------------------------------------------------------------------
    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other_t.data
            if self.requires_grad:
                if b.ndim == 1:
                    grad_a = np.multiply.outer(grad, b) if a.ndim > 1 else grad * b
                elif a.ndim == 1:
                    grad_a = grad @ np.swapaxes(b, -1, -2)
                else:
                    grad_a = grad @ np.swapaxes(b, -1, -2)
                self._accumulate(_unbroadcast(grad_a, a.shape), own=True)
            if other_t.requires_grad:
                if a.ndim == 1:
                    grad_b = np.multiply.outer(a, grad) if b.ndim > 1 else a * grad
                elif b.ndim == 1:
                    grad_b = np.swapaxes(a, -1, -2) @ grad if a.ndim > 2 else a.T @ grad
                else:
                    grad_b = np.swapaxes(a, -1, -2) @ grad
                other_t._accumulate(_unbroadcast(grad_b, b.shape), own=True)

        return Tensor._make(out_data, (self, other_t), backward)

    def transpose(self, *axes: int) -> "Tensor":
        order = axes if axes else None
        out_data = np.transpose(self.data, order)
        if order is None:
            inverse = None
        else:
            inverse = tuple(np.argsort(order))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.transpose(grad, inverse).copy(), own=True)

        return Tensor._make(out_data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = grad.reshape(original)
                self._accumulate(g, own=g is not grad)

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        if (self.sparse_grad and isinstance(index, np.ndarray)
                and index.dtype.kind in "iu" and self.data.ndim >= 1):

            def backward_sparse(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(
                        rowsparse_from_gather(self.data.shape, index, grad),
                        own=True)

            return Tensor._make(out_data, (self,), backward_sparse)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                # np.zeros is calloc-backed: untouched pages stay unmapped,
                # which matters when the index selects a small slice of a
                # large tensor (the per-timestep input slices of an unroll).
                full = np.zeros(self.data.shape)
                _scatter_add(full, index, grad)
                self._accumulate(full, own=True)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                g = np.expand_dims(g, axis=tuple(a % self.data.ndim for a in axes))
            self._accumulate(np.broadcast_to(g, self.shape).copy(), own=True)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axis is None:
                mask = (self.data == out_data)
                share = grad / mask.sum()
                self._accumulate(mask * share, own=True)
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data, axis)
                mask = (self.data == expanded)
                g = grad if keepdims else np.expand_dims(grad, axis)
                counts = mask.sum(axis=axis, keepdims=True)
                self._accumulate(mask * g / counts, own=True)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data, own=True)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data, own=True)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data, own=True)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data), own=True)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2), own=True)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = _stable_sigmoid(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data), own=True)

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask, own=True)

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data > low) & (self.data < high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask, own=True)

        return Tensor._make(out_data, (self,), backward)


# ----------------------------------------------------------------------
# Free functions that combine several tensors
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing to each input."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable selection; ``condition`` is a constant boolean mask."""
    a_t = a if isinstance(a, Tensor) else Tensor(a)
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a_t.data, b_t.data)

    def backward(grad: np.ndarray) -> None:
        if a_t.requires_grad:
            a_t._accumulate(_unbroadcast(grad * cond, a_t.shape))
        if b_t.requires_grad:
            b_t._accumulate(_unbroadcast(grad * (~cond), b_t.shape))

    return Tensor._make(out_data, (a_t, b_t), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum with subgradient split at ties."""
    a_t = a if isinstance(a, Tensor) else Tensor(a)
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    return where(a_t.data >= b_t.data, a_t, b_t)


def no_grad_tensor(data: ArrayLike) -> Tensor:
    """Shorthand for a constant tensor."""
    return Tensor(data, requires_grad=False)


def gradient_check(func: Callable[..., Tensor], inputs: Iterable[Tensor],
                   eps: float = 1e-6) -> float:
    """Return the max relative error between analytic and numeric gradients.

    ``func`` must produce a scalar tensor from ``inputs``.  Used extensively
    by the test-suite to validate every op in this module.
    """
    inputs = list(inputs)
    for tensor in inputs:
        tensor.zero_grad()
    out = func(*inputs)
    out.backward()
    worst = 0.0
    for tensor in inputs:
        analytic = (densify_grad(tensor.grad) if tensor.grad is not None
                    else np.zeros_like(tensor.data))
        numeric = np.zeros_like(tensor.data)
        flat = tensor.data.ravel()
        numeric_flat = numeric.ravel()
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = func(*inputs).data.item()
            flat[i] = original - eps
            minus = func(*inputs).data.item()
            flat[i] = original
            numeric_flat[i] = (plus - minus) / (2 * eps)
        denom = max(np.abs(analytic).max(), np.abs(numeric).max(), 1e-8)
        worst = max(worst, float(np.abs(analytic - numeric).max() / denom))
    return worst
