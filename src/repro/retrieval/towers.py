"""Two-tower factorization of the frozen serving artifacts.

The retrieval stage needs every score to decompose into ``scorer(user
vector, item vector) + bias`` so an index over the item side can cut a
shortlist without touching the model.  The frozen bundles built by
:func:`repro.serve.registry.build_artifacts` factor exactly that way:

* **item tower** — the composed output embedding table (rows ``1..V``;
  the padding row 0 is never indexed) plus the per-item output bias,
* **user tower** — the session's recurrent state pushed through the
  model's head *without* the per-item causal effects: for GRU4Rec the
  projected last hidden state (the head *is* a two-tower dot product, so
  retrieval is exact), for Causer the attention-weighted state mixture
  through the adapter (eq. 10 with the causal effects held at 1 — an
  approximation the exact re-rank stage corrects over the shortlist).

Scoring is pluggable: ``dot`` is the model's native inner-product head,
``l2`` ranks by negative squared euclidean distance (plus bias), the
usual choice when item vectors are normalized offline.

This module also hosts :class:`QuantizedTable`, the compressed storage
format for frozen embedding tables (``--quantize {fp16,int8}``): it lives
here, at the import leaf, so both the serving scorers and the IVF index
can dequantize-on-score without a circular import.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

#: Accepted ``--quantize`` modes for frozen serving tables.
QUANTIZE_MODES = ("none", "fp16", "int8")


class QuantizedTable:
    """A frozen 2-D embedding table stored in a compressed dtype.

    ``fp16`` keeps the IEEE half-precision rounding of every entry (a
    4× size cut from the float64 tables the trainers produce); ``int8``
    adds a per-row affine code ``value ≈ code * scale + offset`` with
    symmetric codes in ``[-127, 127]`` (rows with zero dynamic range
    store ``scale = 0`` so dequantization reproduces the constant
    exactly).  Dequantization is row-independent elementwise arithmetic,
    so gathering rows and then dequantizing is bit-identical to
    dequantizing the full table and gathering — the property the exact
    re-rank contract of :mod:`repro.serve.scoring` relies on.
    """

    __slots__ = ("mode", "codes", "scale", "offset")

    def __init__(self, mode: str, codes: np.ndarray,
                 scale: Optional[np.ndarray] = None,
                 offset: Optional[np.ndarray] = None) -> None:
        if mode not in ("fp16", "int8"):
            raise ValueError(f"unsupported quantize mode {mode!r}")
        self.mode = mode
        self.codes = codes
        self.scale = scale
        self.offset = offset

    @classmethod
    def quantize(cls, table: np.ndarray, mode: str) -> "QuantizedTable":
        table = np.asarray(table, dtype=np.float64)
        if table.ndim != 2:
            raise ValueError("QuantizedTable expects a 2-D table")
        if mode == "fp16":
            return cls("fp16", table.astype(np.float16))
        if mode != "int8":
            raise ValueError(f"unsupported quantize mode {mode!r}")
        lo = table.min(axis=1, keepdims=True)
        hi = table.max(axis=1, keepdims=True)
        offset = (hi + lo) / 2.0
        scale = (hi - lo) / 254.0
        # Constant rows quantize to code 0 with scale 0: dequantization
        # yields exactly ``offset`` (notably the all-zero padding row).
        safe = np.where(scale > 0.0, scale, 1.0)
        codes = np.clip(np.rint((table - offset) / safe),
                        -127, 127).astype(np.int8)
        return cls("int8", codes, scale=scale, offset=offset)

    @property
    def shape(self) -> tuple:
        return self.codes.shape

    @property
    def ndim(self) -> int:
        return self.codes.ndim

    @property
    def nbytes(self) -> int:
        total = self.codes.nbytes
        if self.scale is not None:
            total += self.scale.nbytes
        if self.offset is not None:
            total += self.offset.nbytes
        return total

    def setflags(self, write: bool = False) -> None:
        """Mirror ``ndarray.setflags`` over the backing arrays."""
        for array in (self.codes, self.scale, self.offset):
            if array is not None:
                array.setflags(write=write)

    def dequantize(self) -> np.ndarray:
        """Full float64 table (materialized — prefer :meth:`take` on rows)."""
        if self.mode == "fp16":
            return self.codes.astype(np.float64)
        return self.codes.astype(np.float64) * self.scale + self.offset

    def take(self, rows: Union[Sequence[int], np.ndarray]) -> np.ndarray:
        """Dequantized ``table[rows]``, bit-identical to a full-table
        dequantize gathered at the same rows."""
        if self.mode == "fp16":
            return self.codes[rows].astype(np.float64)
        return (self.codes[rows].astype(np.float64)
                * self.scale[rows] + self.offset[rows])

    def __getstate__(self):
        return (self.mode, self.codes, self.scale, self.offset)

    def __setstate__(self, state) -> None:
        self.mode, self.codes, self.scale, self.offset = state


#: Either storage format the scorers accept for a frozen table.
TableLike = Union[np.ndarray, QuantizedTable]


def as_dense(table: Optional[TableLike]) -> Optional[np.ndarray]:
    """An ndarray view of ``table`` suitable for full-table arithmetic.

    Plain arrays pass through untouched (the ``--quantize none`` path
    stays byte-identical).  fp16 tables return the half-precision codes
    directly — numpy upcasts them exactly in mixed-dtype elementwise
    arithmetic, so scoring dequantizes on the fly for free; int8 tables
    materialize the float64 dequantization.
    """
    if table is None or isinstance(table, np.ndarray):
        return table
    if table.mode == "fp16":
        return table.codes
    return table.dequantize()


def take_rows(table: TableLike,
              rows: Union[Sequence[int], np.ndarray]) -> np.ndarray:
    """``table[rows]`` in float64-compatible form for either storage.

    For quantized tables the result is the float64 dequantization of the
    gathered rows, bit-identical to ``as_dense`` arithmetic restricted to
    those rows (dequantization is row-independent).
    """
    if isinstance(table, np.ndarray):
        return table[rows]
    return table.take(rows)


def table_nbytes(table: Optional[TableLike]) -> int:
    """Storage footprint of a frozen table in bytes (0 for ``None``)."""
    if table is None:
        return 0
    return int(table.nbytes)


def dot_scores(query: np.ndarray, vectors: np.ndarray,
               bias: np.ndarray) -> np.ndarray:
    """Inner-product scores, the native head of every servable model."""
    return vectors @ query + bias


def l2_scores(query: np.ndarray, vectors: np.ndarray,
              bias: np.ndarray) -> np.ndarray:
    """Negative squared L2 distance (higher = closer), plus bias."""
    deltas = vectors - query[None, :]
    return -(deltas * deltas).sum(axis=1) + bias


#: name -> scorer(query (d,), vectors (N, d), bias (N,)) -> scores (N,)
SCORERS: Dict[str, Callable[[np.ndarray, np.ndarray, np.ndarray],
                            np.ndarray]] = {
    "dot": dot_scores,
    "l2": l2_scores,
}


@dataclass(frozen=True)
class ItemTower:
    """Frozen item-side arrays the index is built over (padding excluded)."""

    vectors: np.ndarray          # (N, d) item embeddings, rows for ids
    bias: np.ndarray             # (N,)
    ids: np.ndarray              # (N,) catalog item ids (1..V)

    def __post_init__(self) -> None:
        if self.vectors.shape[0] != self.ids.shape[0]:
            raise ValueError("item tower vectors/ids row mismatch")
        if self.bias.shape[0] != self.ids.shape[0]:
            raise ValueError("item tower bias/ids row mismatch")

    @property
    def size(self) -> int:
        return int(self.ids.shape[0])

    @property
    def dim(self) -> int:
        return int(self.vectors.shape[1])


def build_item_tower(artifacts) -> Optional[ItemTower]:
    """Item tower from a frozen serving bundle; ``None`` for replay models.

    Replay-mode artifacts carry no frozen head (the model's own
    ``score_samples`` is the scorer), so there is nothing to index —
    serving falls back to exact full scoring for those classes.
    """
    table = getattr(artifacts, "output_table", None)
    bias = getattr(artifacts, "output_bias", None)
    if table is None or bias is None:
        return None
    vectors = np.ascontiguousarray(table[1:])
    item_bias = np.ascontiguousarray(bias[1:])
    ids = np.arange(1, table.shape[0], dtype=np.int64)
    for array in (vectors, item_bias, ids):
        array.setflags(write=False)
    return ItemTower(vectors=vectors, bias=item_bias, ids=ids)


def user_vector(artifacts, view) -> Optional[np.ndarray]:
    """User-tower query vector for one session snapshot, shape ``(d,)``.

    Returns ``None`` when the bundle has no two-tower factorization
    (replay models) or the session is empty — callers fall back to the
    exact full-scoring path.
    """
    # Late imports: repro.serve imports this package at module level.
    from ..serve.registry import (CausalServingArtifacts,
                                  GRUServingArtifacts)
    if view is None or view.steps == 0:
        return None
    if isinstance(artifacts, CausalServingArtifacts):
        if view.states is None:
            return None
        from ..serve.scoring import _alpha
        alpha = _alpha(view.states, view.last, artifacts.attention_proj)
        context = alpha @ view.states                  # (H,)
        return context @ artifacts.adapt_weight.T      # (d_e,)
    if isinstance(artifacts, GRUServingArtifacts):
        if view.last is None:
            return None
        rep = view.last[0] @ artifacts.project_weight.T
        return rep + artifacts.project_bias
    return None
