"""Two-tower factorization of the frozen serving artifacts.

The retrieval stage needs every score to decompose into ``scorer(user
vector, item vector) + bias`` so an index over the item side can cut a
shortlist without touching the model.  The frozen bundles built by
:func:`repro.serve.registry.build_artifacts` factor exactly that way:

* **item tower** — the composed output embedding table (rows ``1..V``;
  the padding row 0 is never indexed) plus the per-item output bias,
* **user tower** — the session's recurrent state pushed through the
  model's head *without* the per-item causal effects: for GRU4Rec the
  projected last hidden state (the head *is* a two-tower dot product, so
  retrieval is exact), for Causer the attention-weighted state mixture
  through the adapter (eq. 10 with the causal effects held at 1 — an
  approximation the exact re-rank stage corrects over the shortlist).

Scoring is pluggable: ``dot`` is the model's native inner-product head,
``l2`` ranks by negative squared euclidean distance (plus bias), the
usual choice when item vectors are normalized offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np


def dot_scores(query: np.ndarray, vectors: np.ndarray,
               bias: np.ndarray) -> np.ndarray:
    """Inner-product scores, the native head of every servable model."""
    return vectors @ query + bias


def l2_scores(query: np.ndarray, vectors: np.ndarray,
              bias: np.ndarray) -> np.ndarray:
    """Negative squared L2 distance (higher = closer), plus bias."""
    deltas = vectors - query[None, :]
    return -(deltas * deltas).sum(axis=1) + bias


#: name -> scorer(query (d,), vectors (N, d), bias (N,)) -> scores (N,)
SCORERS: Dict[str, Callable[[np.ndarray, np.ndarray, np.ndarray],
                            np.ndarray]] = {
    "dot": dot_scores,
    "l2": l2_scores,
}


@dataclass(frozen=True)
class ItemTower:
    """Frozen item-side arrays the index is built over (padding excluded)."""

    vectors: np.ndarray          # (N, d) item embeddings, rows for ids
    bias: np.ndarray             # (N,)
    ids: np.ndarray              # (N,) catalog item ids (1..V)

    def __post_init__(self) -> None:
        if self.vectors.shape[0] != self.ids.shape[0]:
            raise ValueError("item tower vectors/ids row mismatch")
        if self.bias.shape[0] != self.ids.shape[0]:
            raise ValueError("item tower bias/ids row mismatch")

    @property
    def size(self) -> int:
        return int(self.ids.shape[0])

    @property
    def dim(self) -> int:
        return int(self.vectors.shape[1])


def build_item_tower(artifacts) -> Optional[ItemTower]:
    """Item tower from a frozen serving bundle; ``None`` for replay models.

    Replay-mode artifacts carry no frozen head (the model's own
    ``score_samples`` is the scorer), so there is nothing to index —
    serving falls back to exact full scoring for those classes.
    """
    table = getattr(artifacts, "output_table", None)
    bias = getattr(artifacts, "output_bias", None)
    if table is None or bias is None:
        return None
    vectors = np.ascontiguousarray(table[1:])
    item_bias = np.ascontiguousarray(bias[1:])
    ids = np.arange(1, table.shape[0], dtype=np.int64)
    for array in (vectors, item_bias, ids):
        array.setflags(write=False)
    return ItemTower(vectors=vectors, bias=item_bias, ids=ids)


def user_vector(artifacts, view) -> Optional[np.ndarray]:
    """User-tower query vector for one session snapshot, shape ``(d,)``.

    Returns ``None`` when the bundle has no two-tower factorization
    (replay models) or the session is empty — callers fall back to the
    exact full-scoring path.
    """
    # Late imports: repro.serve imports this package at module level.
    from ..serve.registry import (CausalServingArtifacts,
                                  GRUServingArtifacts)
    if view is None or view.steps == 0:
        return None
    if isinstance(artifacts, CausalServingArtifacts):
        if view.states is None:
            return None
        from ..serve.scoring import _alpha
        alpha = _alpha(view.states, view.last, artifacts.attention_proj)
        context = alpha @ view.states                  # (H,)
        return context @ artifacts.adapt_weight.T      # (d_e,)
    if isinstance(artifacts, GRUServingArtifacts):
        if view.last is None:
            return None
        rep = view.last[0] @ artifacts.project_weight.T
        return rep + artifacts.project_bias
    return None
