"""`repro.retrieval` — two-stage candidate generation for serving.

Two-tower factorization of the frozen serving artifacts
(:mod:`repro.retrieval.towers`), a from-scratch numpy IVF index with a
brute-force oracle (:mod:`repro.retrieval.index`), and exact re-ranking
of the shortlist through the model head (:mod:`repro.retrieval.rerank`).
See ``docs/RETRIEVAL.md``.
"""

from .config import RETRIEVAL_MODES, RetrievalConfig
from .index import (ASSIGN_CHUNK, ExactIndex, IVFIndex, kmeans_fit,
                    top_ids_by_score)
from .rerank import rerank_candidates, rerank_top_z
from .towers import (QUANTIZE_MODES, SCORERS, ItemTower, QuantizedTable,
                     as_dense, build_item_tower, dot_scores, l2_scores,
                     table_nbytes, take_rows, user_vector)

__all__ = [
    "ASSIGN_CHUNK", "ExactIndex", "IVFIndex", "ItemTower",
    "QUANTIZE_MODES", "QuantizedTable", "RETRIEVAL_MODES",
    "RetrievalConfig", "SCORERS", "as_dense", "build_item_tower",
    "dot_scores", "kmeans_fit", "l2_scores", "rerank_candidates",
    "rerank_top_z", "table_nbytes", "take_rows", "top_ids_by_score",
    "user_vector",
]
