"""Retrieval-stage configuration shared by the index, serve, and bench."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Retrieval modes the serving layer accepts (``--retrieval``).
RETRIEVAL_MODES = ("exact", "ivf")


@dataclass(frozen=True)
class RetrievalConfig:
    """Knobs for the candidate-generation stage.

    ``exact`` scores the full catalog through the model head (the
    pre-retrieval serving path, bit-identical to offline evaluation) and
    only labels the response; ``ivf`` runs the two-tower IVF index to cut
    a ``shortlist`` of candidates and re-ranks them through the exact
    head.  ``nprobe`` trades recall for latency; ``n_clusters=None``
    defaults to ``round(sqrt(catalog))``.
    """

    mode: str = "exact"
    shortlist: int = 500
    nprobe: int = 8
    n_clusters: Optional[int] = None
    scorer: str = "dot"          # "dot" | "l2" (see retrieval.towers.SCORERS)
    kmeans_iters: int = 8
    seed: int = 0
    workers: int = 0             # k-means assignment fan-out (repro.parallel)

    def __post_init__(self) -> None:
        if self.mode not in RETRIEVAL_MODES:
            raise ValueError(f"retrieval mode must be one of "
                             f"{RETRIEVAL_MODES}, got {self.mode!r}")
        if self.shortlist < 1:
            raise ValueError("shortlist must be a positive candidate count")
        if self.nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        if self.n_clusters is not None and self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1 when given")
