"""From-scratch numpy ANN: brute-force oracle + IVF inverted-file index.

:class:`ExactIndex` scores every item and is the correctness oracle the
property tests compare against.  :class:`IVFIndex` is the classic
inverted-file design: a k-means **coarse quantizer** partitions the item
tower into ``n_clusters`` cells, each cell keeps a contiguous copy of its
members' vectors (an inverted list), and a query scans only the
``nprobe`` cells whose centroids are nearest — ``nprobe = n_clusters``
degenerates to brute force and is *exactly* the oracle, which the tests
assert bitwise.

Determinism contract (asserted by ``tests/retrieval/test_determinism.py``):

* k-means initialisation draws from ``SeedSequence(seed, spawn_key=(0,))``
  and every other step is arithmetic on fixed-order arrays, so a build is
  bit-identical across runs for a fixed seed;
* the assignment step is row-independent and computed in fixed-size
  chunks, so fanning it out over :mod:`repro.parallel` workers cannot
  change a single bit — ``workers=0`` and ``workers=8`` build the same
  index;
* every ranking (probe order, candidate top-k) breaks score ties by
  ascending id via ``np.lexsort``, so duplicate/degenerate vectors have
  one canonical order.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .towers import SCORERS, ItemTower, as_dense

#: Rows per assignment chunk.  Fixed (never derived from worker count) so
#: the chunk boundaries — and therefore every reduction — are identical
#: no matter how the chunks are scheduled.
ASSIGN_CHUNK = 16_384


def top_ids_by_score(scores: np.ndarray, ids: np.ndarray,
                     k: int) -> np.ndarray:
    """Top-``k`` ids by descending score, ties broken by ascending id.

    The retrieval-wide ranking rule: both index types and the serve
    re-rank stage use it, so IVF-with-all-probes matches brute force
    bitwise and degenerate (all-tied) towers still rank canonically.
    """
    if scores.shape[0] != ids.shape[0]:
        raise ValueError("scores/ids length mismatch")
    order = np.lexsort((ids, -scores))
    return ids[order[:min(k, ids.shape[0])]]


def _score_chunked(query: np.ndarray, vectors: np.ndarray, bias: np.ndarray,
                   scorer) -> np.ndarray:
    return scorer(query, vectors, bias)


class ExactIndex:
    """Brute-force scorer over the full item tower (the oracle)."""

    def __init__(self, tower: ItemTower, scorer: str = "dot") -> None:
        if scorer not in SCORERS:
            raise ValueError(f"unknown scorer {scorer!r}; "
                             f"choose from {sorted(SCORERS)}")
        self.tower = tower
        self.scorer_name = scorer
        self._scorer = SCORERS[scorer]

    @property
    def size(self) -> int:
        return self.tower.size

    def search(self, query: np.ndarray, k: int) -> np.ndarray:
        """Ids of the ``k`` best items for ``query``, best first."""
        scores = self._scorer(np.asarray(query, dtype=np.float64),
                              self.tower.vectors, self.tower.bias)
        return top_ids_by_score(scores, self.tower.ids, k)


# ----------------------------------------------------------------------
# k-means coarse quantizer
# ----------------------------------------------------------------------

def _assign_task(spec) -> Tuple[np.ndarray, np.ndarray]:
    """One chunk of the assignment step: nearest centroid per row.

    Top-level so :func:`repro.parallel.process_map` can pickle it; the
    per-task seed the pool derives is unused — assignment is pure
    arithmetic.
    """
    chunk, centroids, cent_sq = spec
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; the ||x||^2 term is
    # constant per row and dropped (it cannot change the argmin).
    d2 = cent_sq[None, :] - 2.0 * (chunk @ centroids.T)
    assign = np.argmin(d2, axis=1)
    mindist = d2[np.arange(chunk.shape[0]), assign]
    return assign.astype(np.int64), mindist


def _assign_all(vectors: np.ndarray, centroids: np.ndarray,
                workers: int) -> Tuple[np.ndarray, np.ndarray]:
    """Nearest centroid for every row, chunked (optionally fanned out)."""
    cent_sq = (centroids * centroids).sum(axis=1)
    specs = [(vectors[start:start + ASSIGN_CHUNK], centroids, cent_sq)
             for start in range(0, vectors.shape[0], ASSIGN_CHUNK)]
    if workers and workers > 1 and len(specs) > 1:
        from ..parallel import process_map, unwrap
        parts = unwrap(process_map(_assign_task, specs, workers=workers))
    else:
        parts = [_assign_task(spec) for spec in specs]
    assign = np.concatenate([part[0] for part in parts])
    mindist = np.concatenate([part[1] for part in parts])
    return assign, mindist


def kmeans_fit(vectors: np.ndarray, n_clusters: int, seed: int = 0,
               iters: int = 8, workers: int = 0
               ) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm; returns ``(centroids, assignments)``.

    Initial centroids are ``n_clusters`` distinct rows drawn from
    ``SeedSequence(seed, spawn_key=(0,))``.  Empty cells are re-seeded to
    the point farthest from its centroid (ties -> lowest row index), so
    degenerate towers (all-equal rows, zero vectors) terminate with every
    cell owning at least one point whenever ``n_clusters <= n``.
    """
    n = vectors.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty item tower")
    n_clusters = max(1, min(n_clusters, n))
    rng = np.random.default_rng(np.random.SeedSequence(seed,
                                                       spawn_key=(0,)))
    picks = rng.choice(n, size=n_clusters, replace=False)
    centroids = vectors[picks].copy()
    assign = np.full(n, -1, dtype=np.int64)
    for _ in range(max(1, iters)):
        new_assign, mindist = _assign_all(vectors, centroids, workers)
        # Re-seed empty cells from the worst-served points so no cell
        # stays empty (deterministic: argmax breaks ties by lowest index).
        counts = np.bincount(new_assign, minlength=n_clusters)
        for empty in np.flatnonzero(counts == 0):
            donor = int(np.argmax(mindist))
            counts[new_assign[donor]] -= 1
            new_assign[donor] = empty
            counts[empty] += 1
            mindist[donor] = -np.inf
        if np.array_equal(new_assign, assign):
            break
        assign = new_assign
        sums = np.zeros_like(centroids)
        np.add.at(sums, assign, vectors)
        counts = np.bincount(assign, minlength=n_clusters)
        centroids = sums / counts[:, None]
    return centroids, assign


# ----------------------------------------------------------------------
# IVF index
# ----------------------------------------------------------------------

class IVFIndex:
    """Inverted-file index over an :class:`ItemTower`.

    Built via :meth:`build`; all arrays are frozen after construction —
    a hot swap replaces the whole index object, never mutates it.
    """

    def __init__(self, centroids: np.ndarray, list_ids: List[np.ndarray],
                 list_vectors: List[np.ndarray], list_bias: List[np.ndarray],
                 scorer: str = "dot", seed: int = 0) -> None:
        if scorer not in SCORERS:
            raise ValueError(f"unknown scorer {scorer!r}; "
                             f"choose from {sorted(SCORERS)}")
        self.centroids = centroids
        self.list_ids = list_ids
        self.list_vectors = list_vectors
        self.list_bias = list_bias
        self.scorer_name = scorer
        self.seed = seed
        self._scorer = SCORERS[scorer]
        self._cent_sq = (centroids * centroids).sum(axis=1)
        self._cluster_order = np.arange(centroids.shape[0])
        for array in (self.centroids, self._cent_sq, *list_ids,
                      *list_vectors, *list_bias):
            array.setflags(write=False)

    @classmethod
    def build(cls, tower: ItemTower, n_clusters: Optional[int] = None,
              scorer: str = "dot", seed: int = 0, iters: int = 8,
              workers: int = 0) -> "IVFIndex":
        """Train the coarse quantizer and materialize the inverted lists."""
        n = tower.size
        if n_clusters is None:
            n_clusters = max(1, int(round(np.sqrt(n))))
        centroids, assign = kmeans_fit(tower.vectors, n_clusters, seed=seed,
                                       iters=iters, workers=workers)
        list_ids: List[np.ndarray] = []
        list_vectors: List[np.ndarray] = []
        list_bias: List[np.ndarray] = []
        for cluster in range(centroids.shape[0]):
            members = np.flatnonzero(assign == cluster)
            list_ids.append(tower.ids[members].copy())
            list_vectors.append(np.ascontiguousarray(tower.vectors[members]))
            list_bias.append(tower.bias[members].copy())
        return cls(centroids, list_ids, list_vectors, list_bias,
                   scorer=scorer, seed=seed)

    @property
    def n_clusters(self) -> int:
        return int(self.centroids.shape[0])

    @property
    def size(self) -> int:
        return int(sum(ids.shape[0] for ids in self.list_ids))

    def probe_order(self, query: np.ndarray, nprobe: int) -> np.ndarray:
        """The ``nprobe`` nearest cells, nearest first (ties by cell id)."""
        d2 = self._cent_sq - 2.0 * (self.centroids @ query)
        order = np.lexsort((self._cluster_order, d2))
        return order[:min(max(1, nprobe), self.n_clusters)]

    def search(self, query: np.ndarray, k: int,
               nprobe: int = 8) -> np.ndarray:
        """Top-``k`` ids among the probed cells' members, best first.

        Candidate scores are computed per inverted list (row-independent
        arithmetic, so the bits match a brute-force scan of the same
        rows); the final cut uses the shared tie-break rule, which makes
        ``nprobe == n_clusters`` literally the :class:`ExactIndex` result.
        """
        query = np.asarray(query, dtype=np.float64)
        probes = self.probe_order(query, nprobe)
        ids = [self.list_ids[j] for j in probes if self.list_ids[j].size]
        if not ids:
            return np.empty(0, dtype=np.int64)
        # ``as_dense`` makes quantized inverted lists scoreable: fp16
        # lists upcast inside the matmul, int8 lists dequantize per
        # probed cell (cost comparable to the scoring matmul itself).
        scores = [self._scorer(query, as_dense(self.list_vectors[j]),
                               self.list_bias[j])
                  for j in probes if self.list_ids[j].size]
        return top_ids_by_score(np.concatenate(scores), np.concatenate(ids),
                                k)
