"""Exact re-ranking of a retrieval shortlist through the model head.

The index stage ranks by the two-tower approximation (for Causer it drops
the per-item causal effects); this stage pushes *only* the shortlist
through the exact eq.-10 head — the same arithmetic
:func:`repro.serve.scoring.score_views` runs over the full catalog,
restricted to the candidate columns — so the final top-z ordering over
the shortlist is bit-identical to full scoring restricted to those
candidates (``tests/serve/test_retrieval_serve.py`` asserts the scores
with exact equality).
"""

from __future__ import annotations

from typing import List

import numpy as np

from .index import top_ids_by_score


def rerank_candidates(artifacts, view, candidates: np.ndarray
                      ) -> np.ndarray:
    """Exact-head scores for ``candidates``, aligned with the input order."""
    # Late import: repro.serve imports this package at module level.
    from ..serve.scoring import score_view_candidates
    return score_view_candidates(artifacts, view, candidates)


def rerank_top_z(artifacts, view, candidates: np.ndarray,
                 z: int) -> List[int]:
    """Top-``z`` ids of the shortlist under exact scores (ties by id)."""
    candidates = np.asarray(candidates, dtype=np.int64)
    if candidates.size == 0:
        return []
    scores = rerank_candidates(artifacts, view, candidates)
    return [int(i) for i in top_ids_by_score(scores, candidates, z)]
