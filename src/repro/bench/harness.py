"""Wall-clock/RSS benchmarking harness with JSON output.

The harness times zero-argument workloads with warmup iterations and
repeated measurement, records the process peak RSS, and serializes results
to a stable JSON schema (``repro.bench/v1``) so runs can be compared across
commits.  :func:`validate_document` checks that schema; :mod:`repro.bench.compare`
implements the baseline comparison with a configurable regression threshold.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

#: Schema identifier embedded in every benchmark document.
SCHEMA = "repro.bench/v1"

#: Keys every per-bench entry must carry (see :func:`validate_document`).
REQUIRED_BENCH_KEYS = ("mean_s", "std_s", "min_s", "wall_s", "repeats",
                       "warmup", "rss_peak_kb", "meta")


@dataclass
class BenchResult:
    """Timing sample for one named workload."""

    name: str
    wall_s: List[float]
    rss_peak_kb: int
    warmup: int
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def repeats(self) -> int:
        return len(self.wall_s)

    @property
    def mean_s(self) -> float:
        return float(np.mean(self.wall_s))

    @property
    def std_s(self) -> float:
        return float(np.std(self.wall_s))

    @property
    def min_s(self) -> float:
        return float(np.min(self.wall_s))

    def to_dict(self) -> Dict[str, object]:
        return {
            "mean_s": self.mean_s,
            "std_s": self.std_s,
            "min_s": self.min_s,
            "wall_s": [float(w) for w in self.wall_s],
            "repeats": self.repeats,
            "warmup": self.warmup,
            "rss_peak_kb": self.rss_peak_kb,
            "meta": dict(self.meta),
        }


def peak_rss_kb() -> int:
    """Process peak resident-set size in KiB (monotonic over the process)."""
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KiB on Linux
        usage //= 1024
    return int(usage)


def time_workload(name: str, make_workload: Callable[[], Callable[[], object]],
                  warmup: int = 1, repeats: int = 5,
                  meta: Optional[Dict[str, object]] = None) -> BenchResult:
    """Build a workload via ``make_workload()`` and time ``repeats`` runs.

    ``make_workload`` performs all setup (model construction, data
    generation) outside the timed region and returns the zero-argument
    callable to measure.  ``warmup`` untimed calls run first so one-time
    costs (allocator growth, numpy warm paths) do not pollute the samples.

    Workloads that own external resources (worker processes, shared
    memory) may expose a ``close`` attribute on the callable; it runs
    untimed after the last repeat — even when a repeat raises — so a
    failed bench cannot leak processes or /dev/shm segments.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    workload = make_workload()
    try:
        for _ in range(warmup):
            workload()
        walls: List[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            workload()
            walls.append(time.perf_counter() - start)
    finally:
        closer = getattr(workload, "close", None)
        if closer is not None:
            closer()
    return BenchResult(name=name, wall_s=walls, rss_peak_kb=peak_rss_kb(),
                       warmup=warmup, meta=dict(meta or {}))


def environment() -> Dict[str, str]:
    """Interpreter/library versions recorded alongside every run."""
    from ..parallel import available_cpus
    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpus": str(available_cpus()),
    }


def document(suite: str, results: List[BenchResult],
             quick: bool = False) -> Dict[str, object]:
    """Assemble the schema-v1 JSON document for a suite run."""
    return {
        "schema": SCHEMA,
        "suite": suite,
        "quick": bool(quick),
        "env": environment(),
        "benches": {result.name: result.to_dict() for result in results},
    }


def write_json(doc: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def validate_document(doc: object) -> List[str]:
    """Return a list of schema problems (empty when the document is valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("suite"), str):
        problems.append("missing/invalid 'suite' (string)")
    if not isinstance(doc.get("env"), dict):
        problems.append("missing/invalid 'env' (object)")
    benches = doc.get("benches")
    if not isinstance(benches, dict) or not benches:
        problems.append("missing/empty 'benches' (object)")
        return problems
    for name, entry in benches.items():
        if not isinstance(entry, dict):
            problems.append(f"bench {name!r} is not an object")
            continue
        for key in REQUIRED_BENCH_KEYS:
            if key not in entry:
                problems.append(f"bench {name!r} is missing {key!r}")
        wall = entry.get("wall_s")
        if not isinstance(wall, list) or not wall:
            problems.append(f"bench {name!r} has no wall_s samples")
        elif any((not isinstance(w, (int, float))) or w < 0 for w in wall):
            problems.append(f"bench {name!r} has non-numeric/negative wall_s")
    return problems
