"""``python -m repro.bench`` — run/compare engine benchmarks.

Subcommands::

    python -m repro.bench list
    python -m repro.bench run [--suite engine] [--quick] [--out X.json]
                              [--baseline OLD.json] [--threshold 0.25]
                              [--bench NAME ...] [--repeats N] [--warmup N]
    python -m repro.bench compare CURRENT.json BASELINE.json
                              [--threshold 0.25]

Exit codes: 0 success, 1 regression past the threshold, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import compare as compare_mod
from . import harness, suites

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Wall-clock benchmark harness for the repro engine.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available suites and benches")

    run = sub.add_parser("run", help="run a suite and optionally write JSON")
    run.add_argument("--suite", default="engine",
                     choices=sorted(suites.SUITES))
    run.add_argument("--quick", action="store_true",
                     help="smaller workloads, at most 2 repeats (CI smoke)")
    run.add_argument("--out", default=None,
                     help="write the schema-v1 JSON document here")
    run.add_argument("--bench", nargs="+", default=None,
                     help="restrict to specific benches")
    run.add_argument("--repeats", type=int, default=None)
    run.add_argument("--warmup", type=int, default=1)
    run.add_argument("--baseline", default=None,
                     help="baseline JSON to compare against; with --out the "
                          "written document embeds it plus speedup ratios")
    run.add_argument("--threshold", type=float, default=0.25,
                     help="regression threshold on mean wall time (0.25 = "
                          "fail when 25%% slower than baseline)")

    cmp_cmd = sub.add_parser("compare", help="compare two result documents")
    cmp_cmd.add_argument("current")
    cmp_cmd.add_argument("baseline")
    cmp_cmd.add_argument("--threshold", type=float, default=0.25)
    return parser


def _cmd_list() -> int:
    for suite_name, spec in sorted(suites.SUITES.items()):
        print(f"suite {suite_name}:")
        for bench_name, (_, repeats, meta) in spec.items():
            extras = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
            print(f"  {bench_name:<22} repeats={repeats}  {extras}")
    return EXIT_OK


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        results = suites.run_suite(args.suite, quick=args.quick,
                                   warmup=args.warmup, repeats=args.repeats,
                                   only=args.bench)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    doc = harness.document(args.suite, results, quick=args.quick)
    summary = suites.suite_summary(args.suite, results)
    if summary:
        doc["summary"] = summary
    for result in results:
        print(f"{result.name:<24} mean={result.mean_s * 1e3:8.1f}ms  "
              f"min={result.min_s * 1e3:8.1f}ms  (n={result.repeats}, "
              f"warmup={result.warmup})")
    for base, speedup in sorted(summary.get("speedups", {}).items()):
        detail = ""
        if summary.get("workers") is not None:
            detail = (f" (serial vs workers={summary.get('workers')}, "
                      f"cpus={summary.get('cpus')})")
        print(f"speedup {base:<16} {speedup:5.2f}x{detail}")

    exit_code = EXIT_OK
    if args.baseline is not None:
        try:
            baseline = harness.load_json(args.baseline)
            report = compare_mod.compare_documents(doc, baseline,
                                                   threshold=args.threshold)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        print(report.render())
        if report.has_regressions:
            exit_code = EXIT_REGRESSION
        doc = compare_mod.merged_document(doc, baseline,
                                          threshold=args.threshold)
    if args.out is not None:
        try:
            harness.write_json(doc, args.out)
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
            return EXIT_ERROR
        print(f"wrote {args.out}")
    return exit_code


def _cmd_compare(args: argparse.Namespace) -> int:
    try:
        current = harness.load_json(args.current)
        baseline = harness.load_json(args.baseline)
        report = compare_mod.compare_documents(current, baseline,
                                               threshold=args.threshold)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    print(report.render())
    return EXIT_REGRESSION if report.has_regressions else EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_compare(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
