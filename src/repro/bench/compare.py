"""Baseline comparison with a configurable regression threshold.

Given two schema-v1 documents (see :mod:`repro.bench.harness`), compares
per-bench mean wall time.  A bench regresses when

    current_mean > baseline_mean * (1 + threshold)

and speeds up when ``current_mean < baseline_mean / (1 + threshold)``.
Benches present on only one side are reported but never fail the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .harness import SCHEMA, validate_document


@dataclass
class BenchComparison:
    """Comparison outcome for a single named bench."""

    name: str
    baseline_s: Optional[float]
    current_s: Optional[float]
    threshold: float

    @property
    def speedup(self) -> Optional[float]:
        """baseline/current — > 1 means the current code is faster."""
        if not self.baseline_s or not self.current_s:
            return None
        return self.baseline_s / self.current_s

    @property
    def status(self) -> str:
        if self.baseline_s is None:
            return "new"
        if self.current_s is None:
            return "missing"
        if self.current_s > self.baseline_s * (1.0 + self.threshold):
            return "regression"
        if self.current_s < self.baseline_s / (1.0 + self.threshold):
            return "improvement"
        return "ok"

    def to_dict(self) -> Dict[str, object]:
        return {
            "baseline_s": self.baseline_s,
            "current_s": self.current_s,
            "speedup": self.speedup,
            "status": self.status,
        }


@dataclass
class ComparisonReport:
    """All per-bench comparisons for one (current, baseline) pair."""

    entries: List[BenchComparison]
    threshold: float

    @property
    def regressions(self) -> List[BenchComparison]:
        return [e for e in self.entries if e.status == "regression"]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def speedups(self) -> Dict[str, float]:
        return {e.name: e.speedup for e in self.entries
                if e.speedup is not None}

    def render(self) -> str:
        lines = [f"{'bench':<24} {'baseline':>12} {'current':>12} "
                 f"{'speedup':>8}  status"]
        for entry in self.entries:
            base = ("-" if entry.baseline_s is None
                    else f"{entry.baseline_s * 1e3:.1f}ms")
            cur = ("-" if entry.current_s is None
                   else f"{entry.current_s * 1e3:.1f}ms")
            speed = ("-" if entry.speedup is None
                     else f"{entry.speedup:.2f}x")
            lines.append(f"{entry.name:<24} {base:>12} {cur:>12} "
                         f"{speed:>8}  {entry.status}")
        lines.append(f"(regression threshold: +{self.threshold:.0%} mean wall "
                     f"time)")
        return "\n".join(lines)


def _bench_means(doc: Dict[str, object]) -> Dict[str, float]:
    return {name: float(entry["mean_s"])
            for name, entry in doc.get("benches", {}).items()}


def compare_documents(current: Dict[str, object], baseline: Dict[str, object],
                      threshold: float = 0.25) -> ComparisonReport:
    """Compare two benchmark documents; raises on schema violations."""
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    for label, doc in (("current", current), ("baseline", baseline)):
        problems = validate_document(doc)
        if problems:
            raise ValueError(
                f"{label} document is not valid {SCHEMA}: "
                + "; ".join(problems))
    current_means = _bench_means(current)
    baseline_means = _bench_means(baseline)
    names = sorted(set(current_means) | set(baseline_means))
    entries = [BenchComparison(name=name,
                               baseline_s=baseline_means.get(name),
                               current_s=current_means.get(name),
                               threshold=threshold)
               for name in names]
    return ComparisonReport(entries=entries, threshold=threshold)


def merged_document(current: Dict[str, object], baseline: Dict[str, object],
                    threshold: float = 0.25) -> Dict[str, object]:
    """Current document with the baseline and per-bench speedups embedded.

    This is the shape of the checked-in ``BENCH_engine.json``: the current
    run under ``benches``, the pre-optimization run under ``baseline`` and
    the baseline/current wall-time ratio under ``speedup``.
    """
    report = compare_documents(current, baseline, threshold=threshold)
    merged = dict(current)
    merged["baseline"] = {
        "env": baseline.get("env", {}),
        "benches": baseline.get("benches", {}),
    }
    merged["speedup"] = report.speedups()
    merged["threshold"] = threshold
    return merged
