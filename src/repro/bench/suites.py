"""Benchmark suite definitions over the engine's hot paths.

The ``engine`` suite covers the loops Algorithm 1 spends its time in:

* ``train_epoch_gru`` — the headline microbench: a full training epoch of a
  GRU sequence recommender (seq_len=50, batch=64, d=64) through embedding
  gather, RNN unroll, candidate scoring, BCE, backward and Adam;
* ``train_epoch_lstm`` — the same epoch with the LSTM backbone;
* ``backward_engine`` — a long elementwise op chain isolating per-node
  autograd overhead (topo sort + closure dispatch);
* ``embedding_scatter`` — embedding gather + scatter-add gradient;
* ``eval_topk`` — full-catalog scoring, top-K extraction and ranking
  metrics over a synthetic catalog;
* ``dag_constraint`` — repeated ``h(W)`` value/gradient evaluations as the
  augmented-Lagrangian inner loop performs them.

Workload factories do all setup un-timed and fix every seed so a run
measures exactly the same computation on every commit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..causal.dag_constraint import h_tensor, h_value
from ..data.batching import PaddedBatch, sample_negatives
from ..data.interactions import EvalSample
from ..eval.evaluator import evaluate_model
from ..models.base import Recommender, TrainConfig
from ..models.gru4rec import GRU4Rec
from ..nn import RecurrentLayer, Tensor, losses, make_optimizer
from .harness import BenchResult, time_workload

#: (factory, default_repeats, meta) per bench name; factory(quick) -> workload.
BenchFactory = Callable[[bool], Callable[[], object]]


def _synthetic_batch(rng: np.random.Generator, batch: int, seq_len: int,
                     num_items: int, num_negatives: int) -> PaddedBatch:
    """A dense single-item-per-basket batch with sampled negatives."""
    items = rng.integers(1, num_items + 1, size=(batch, seq_len, 1))
    padded = PaddedBatch(
        users=rng.integers(0, batch, size=batch),
        items=items,
        basket_mask=np.ones((batch, seq_len, 1), dtype=np.float64),
        step_mask=np.ones((batch, seq_len), dtype=bool),
        positives=rng.integers(1, num_items + 1, size=(batch, 1)),
        positive_mask=np.ones((batch, 1), dtype=np.float64))
    sample_negatives(padded, num_items, num_negatives, rng)
    return padded


def make_train_epoch(cell_type: str, quick: bool) -> Callable[[], object]:
    """One optimization epoch at the acceptance shape (T=50, B=64, d=64)."""
    batch, seq_len, dim, num_items = 64, 50, 64, 512
    num_batches = 1 if quick else 3
    rng = np.random.default_rng(7)
    cfg = TrainConfig(embedding_dim=dim, hidden_dim=dim, num_epochs=1,
                      batch_size=batch, num_negatives=4, seed=0)
    model = GRU4Rec(num_users=batch, num_items=num_items, config=cfg)
    if cell_type == "lstm":
        model.rnn = RecurrentLayer("lstm", dim, dim, model.rng)
    batches = [_synthetic_batch(rng, batch, seq_len, num_items,
                                cfg.num_negatives)
               for _ in range(num_batches)]
    optimizer = make_optimizer("adam", model.parameters(), lr=1e-3)
    model.train()

    def workload() -> float:
        total = 0.0
        for padded in batches:
            optimizer.zero_grad()
            loss = model.training_loss(padded)
            loss.backward()
            optimizer.clip_grad_norm(cfg.grad_clip)
            optimizer.step()
            model._after_step()
            total += loss.item()
        return total

    return workload


def make_backward_engine(quick: bool) -> Callable[[], object]:
    """A deep elementwise chain: per-node engine overhead dominates."""
    depth = 60 if quick else 150
    rng = np.random.default_rng(3)
    base = rng.normal(size=(64, 64))

    def workload() -> float:
        x = Tensor(base, requires_grad=True)
        y = x
        for i in range(depth):
            y = (y * 0.999 + 0.001).tanh() if i % 3 == 0 else y * 1.0001 + x
        out = (y * y).sum()
        out.backward()
        return out.item()

    return workload


def make_embedding_scatter(quick: bool) -> Callable[[], object]:
    """Embedding gather forward + scatter-add gradient backward."""
    lookups = 4 if quick else 10
    rng = np.random.default_rng(5)
    vocab, dim = 4096, 64
    table = Tensor(rng.normal(size=(vocab, dim)) * 0.05, requires_grad=True)
    indices = rng.integers(0, vocab, size=(64, 50))
    weights = Tensor(rng.normal(size=(64, 50, dim)))

    def workload() -> float:
        total = 0.0
        for _ in range(lookups):
            table.zero_grad()
            out = (table[indices] * weights).sum()
            out.backward()
            total += out.item()
        return total

    return workload


class _FixedScoreRecommender(Recommender):
    """Evaluation-path fixture: precomputed full-catalog scores."""

    name = "fixed"

    def __init__(self, scores: np.ndarray) -> None:
        self._scores = scores

    def score_samples(self, samples) -> np.ndarray:
        return self._scores[:len(samples)].copy()

    def fit(self, corpus):  # pragma: no cover - not used by the bench
        raise NotImplementedError


def make_eval_topk(quick: bool) -> Callable[[], object]:
    """Full-catalog top-K extraction + HR/NDCG metrics for a sample batch."""
    users = 128 if quick else 512
    num_items = 2000
    rng = np.random.default_rng(11)
    scores = rng.normal(size=(users, num_items + 1))
    samples = [EvalSample(user_id=u,
                          history=((int(rng.integers(1, num_items + 1)),),),
                          target=tuple(int(t) for t in
                                       rng.integers(1, num_items + 1, size=3)))
               for u in range(users)]
    model = _FixedScoreRecommender(scores)

    def workload() -> float:
        result = evaluate_model(model, samples, z=10)
        return result.mean("ndcg")

    return workload


def make_dag_constraint(quick: bool) -> Callable[[], object]:
    """h(W) value + gradient as the augmented-Lagrangian loop evaluates it.

    Alternates graph-building (``h_tensor`` + backward) with value-only
    reads of the *same* weights — the pattern Algorithm 1 produces on
    frozen-causal epochs, where the cached series pays off.
    """
    inner_steps = 8 if quick else 24
    rng = np.random.default_rng(13)
    weights = rng.uniform(0.0, 0.4, size=(48, 48))
    np.fill_diagonal(weights, 0.0)

    def workload() -> float:
        total = 0.0
        tensor = Tensor(weights, requires_grad=True)
        node = h_tensor(tensor)
        node.backward()
        total += node.item()
        for _ in range(inner_steps):
            total += h_value(weights)
        return total

    return workload


#: name -> (factory, repeats, meta).  Meta records the workload shape so the
#: JSON is self-describing.
ENGINE_SUITE: Dict[str, Tuple[BenchFactory, int, Dict[str, object]]] = {
    "train_epoch_gru": (
        lambda quick: make_train_epoch("gru", quick), 3,
        {"seq_len": 50, "batch": 64, "dim": 64, "cell": "gru",
         "headline": True}),
    "train_epoch_lstm": (
        lambda quick: make_train_epoch("lstm", quick), 3,
        {"seq_len": 50, "batch": 64, "dim": 64, "cell": "lstm"}),
    "backward_engine": (make_backward_engine, 5, {"kind": "op-chain"}),
    "embedding_scatter": (make_embedding_scatter, 5,
                          {"vocab": 4096, "dim": 64}),
    "eval_topk": (make_eval_topk, 3, {"num_items": 2000, "z": 10}),
    "dag_constraint": (make_dag_constraint, 5, {"nodes": 48}),
}

SUITES: Dict[str, Dict[str, Tuple[BenchFactory, int, Dict[str, object]]]] = {
    "engine": ENGINE_SUITE,
}


def run_suite(suite: str = "engine", quick: bool = False,
              warmup: int = 1, repeats: Optional[int] = None,
              only: Optional[List[str]] = None) -> List[BenchResult]:
    """Execute a suite and return one :class:`BenchResult` per bench."""
    if suite not in SUITES:
        raise KeyError(f"unknown suite {suite!r}; available: {sorted(SUITES)}")
    spec = SUITES[suite]
    names = list(spec) if only is None else list(only)
    unknown = [n for n in names if n not in spec]
    if unknown:
        raise KeyError(f"unknown bench(es) {unknown} in suite {suite!r}")
    results: List[BenchResult] = []
    for name in names:
        factory, default_repeats, meta = spec[name]
        bench_repeats = repeats if repeats is not None else default_repeats
        if quick:
            bench_repeats = min(bench_repeats, 2)
        results.append(time_workload(
            name, lambda factory=factory: factory(quick),
            warmup=warmup, repeats=bench_repeats,
            meta={**meta, "quick": quick}))
    return results
