"""Benchmark suite definitions over the engine's hot paths.

The ``parallel`` suite measures the :mod:`repro.parallel` fan-out layer on
the three wired call sites — the Table IV runner, the Table III grid
search, and sharded evaluation — each as a serial/``workers=4`` pair, plus
a blocking-task pair isolating pure scheduling overlap.  Pair speedups are
summarised by :func:`suite_summary` and recorded in ``BENCH_parallel.json``
(compute-bound pairs can only beat serial when the machine actually has
spare cores; the blocking pair shows overlap on any machine).

The ``serve`` suite measures the online inference path (:mod:`repro.serve`)
on a small trained Causer: un-batched single-request latency through the
full route stack, micro-batched throughput under 8 concurrent submitters,
and the ``score_incremental``/``score_replay`` pair quantifying what the
incrementally-maintained session state saves over replaying the full
history per request (summarised as ``incremental_vs_replay`` and recorded
in ``BENCH_serve.json``).

The ``optim`` suite measures the row-sparse gradient path
(:mod:`repro.nn.sparse` + the lazy optimizers in :mod:`repro.nn.optim`):
full embedding-table training steps as dense/sparse pairs at
V ∈ {1k, 10k, 100k} (summarised as ``sparse_vs_dense_v*`` speedups and
recorded in ``BENCH_optim.json``), plus an allocation probe comparing the
in-place optimizer-state update against the legacy rebinding formulas.
At V=1k the gather covers most of the table, the sparse path densifies
automatically, and the pair documents the no-regression floor; at V=100k
the dense path's ``O(V*d)`` scatter + state sweep dominates and the pair
shows the headline speedup.

The ``online`` suite measures the continual-learning path
(:mod:`repro.online`) end to end on the same small trained Causer the
serve benches use: sustained ``/v1/events`` ingestion through the
request → session → log tee → trainer micro-batch pipeline, the wall
time of one refresh cycle (warm-started Algorithm 1 on the sliding
window, drift measurement, hot swap through the registry), and a
recommend-latency pair with the background trainer on vs off whose p99
ratio bounds what continual learning costs the request path (recorded
in ``BENCH_online.json``).

The ``retrieval`` suite measures the two-tower ANN candidate-generation
path (:mod:`repro.retrieval`) on synthetic normalized item towers at
V ∈ {10k, 100k, 1M}: each scale is an exact/IVF pair where ``exact``
brute-force-scores the full catalog and ``ivf`` runs the served two-stage
pipeline (coarse-quantizer probe → shortlist → exact re-rank).  The IVF
factories measure recall@shortlist against the exact top-z during untimed
setup and embed it in the bench meta; :func:`suite_summary` derives the
``ivf_vs_exact_v*`` speedups and per-scale recalls recorded in
``BENCH_retrieval.json``.

The ``engine`` suite covers the loops Algorithm 1 spends its time in:

* ``train_epoch_gru`` — the headline microbench: a full training epoch of a
  GRU sequence recommender (seq_len=50, batch=64, d=64) through embedding
  gather, RNN unroll, candidate scoring, BCE, backward and Adam;
* ``train_epoch_lstm`` — the same epoch with the LSTM backbone;
* ``backward_engine`` — a long elementwise op chain isolating per-node
  autograd overhead (topo sort + closure dispatch);
* ``embedding_scatter`` — embedding gather + scatter-add gradient;
* ``eval_topk`` — full-catalog scoring, top-K extraction and ranking
  metrics over a synthetic catalog;
* ``dag_constraint`` — repeated ``h(W)`` value/gradient evaluations as the
  augmented-Lagrangian inner loop performs them.

Workload factories do all setup un-timed and fix every seed so a run
measures exactly the same computation on every commit.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..causal.dag_constraint import h_tensor, h_value
from ..data.batching import PaddedBatch, sample_negatives
from ..data.interactions import EvalSample
from ..eval.evaluator import evaluate_model
from ..models.base import Recommender, TrainConfig
from ..models.gru4rec import GRU4Rec
from ..nn import RecurrentLayer, Tensor, losses, make_optimizer
from .harness import BenchResult, time_workload

#: (factory, default_repeats, meta) per bench name; factory(quick) -> workload.
BenchFactory = Callable[[bool], Callable[[], object]]


def _synthetic_batch(rng: np.random.Generator, batch: int, seq_len: int,
                     num_items: int, num_negatives: int) -> PaddedBatch:
    """A dense single-item-per-basket batch with sampled negatives."""
    items = rng.integers(1, num_items + 1, size=(batch, seq_len, 1))
    padded = PaddedBatch(
        users=rng.integers(0, batch, size=batch),
        items=items,
        basket_mask=np.ones((batch, seq_len, 1), dtype=np.float64),
        step_mask=np.ones((batch, seq_len), dtype=bool),
        positives=rng.integers(1, num_items + 1, size=(batch, 1)),
        positive_mask=np.ones((batch, 1), dtype=np.float64))
    sample_negatives(padded, num_items, num_negatives, rng)
    return padded


def make_train_epoch(cell_type: str, quick: bool) -> Callable[[], object]:
    """One optimization epoch at the acceptance shape (T=50, B=64, d=64)."""
    batch, seq_len, dim, num_items = 64, 50, 64, 512
    num_batches = 1 if quick else 3
    rng = np.random.default_rng(7)
    cfg = TrainConfig(embedding_dim=dim, hidden_dim=dim, num_epochs=1,
                      batch_size=batch, num_negatives=4, seed=0)
    model = GRU4Rec(num_users=batch, num_items=num_items, config=cfg)
    if cell_type == "lstm":
        model.rnn = RecurrentLayer("lstm", dim, dim, model.rng)
    batches = [_synthetic_batch(rng, batch, seq_len, num_items,
                                cfg.num_negatives)
               for _ in range(num_batches)]
    optimizer = make_optimizer("adam", model.parameters(), lr=1e-3)
    model.train()

    def workload() -> float:
        total = 0.0
        for padded in batches:
            optimizer.zero_grad()
            loss = model.training_loss(padded)
            loss.backward()
            optimizer.clip_grad_norm(cfg.grad_clip)
            optimizer.step()
            model._after_step()
            total += loss.item()
        return total

    return workload


def make_backward_engine(quick: bool) -> Callable[[], object]:
    """A deep elementwise chain: per-node engine overhead dominates."""
    depth = 60 if quick else 150
    rng = np.random.default_rng(3)
    base = rng.normal(size=(64, 64))

    def workload() -> float:
        x = Tensor(base, requires_grad=True)
        y = x
        for i in range(depth):
            y = (y * 0.999 + 0.001).tanh() if i % 3 == 0 else y * 1.0001 + x
        out = (y * y).sum()
        out.backward()
        return out.item()

    return workload


def make_embedding_scatter(quick: bool) -> Callable[[], object]:
    """Embedding gather forward + scatter-add gradient backward."""
    lookups = 4 if quick else 10
    rng = np.random.default_rng(5)
    vocab, dim = 4096, 64
    table = Tensor(rng.normal(size=(vocab, dim)) * 0.05, requires_grad=True)
    indices = rng.integers(0, vocab, size=(64, 50))
    weights = Tensor(rng.normal(size=(64, 50, dim)))

    def workload() -> float:
        total = 0.0
        for _ in range(lookups):
            table.zero_grad()
            out = (table[indices] * weights).sum()
            out.backward()
            total += out.item()
        return total

    return workload


class _FixedScoreRecommender(Recommender):
    """Evaluation-path fixture: precomputed full-catalog scores."""

    name = "fixed"

    def __init__(self, scores: np.ndarray) -> None:
        self._scores = scores

    def score_samples(self, samples) -> np.ndarray:
        return self._scores[:len(samples)].copy()

    def fit(self, corpus):  # pragma: no cover - not used by the bench
        raise NotImplementedError


def make_eval_topk(quick: bool) -> Callable[[], object]:
    """Full-catalog top-K extraction + HR/NDCG metrics for a sample batch."""
    users = 128 if quick else 512
    num_items = 2000
    rng = np.random.default_rng(11)
    scores = rng.normal(size=(users, num_items + 1))
    samples = [EvalSample(user_id=u,
                          history=((int(rng.integers(1, num_items + 1)),),),
                          target=tuple(int(t) for t in
                                       rng.integers(1, num_items + 1, size=3)))
               for u in range(users)]
    model = _FixedScoreRecommender(scores)

    def workload() -> float:
        result = evaluate_model(model, samples, z=10)
        return result.mean("ndcg")

    return workload


def make_dag_constraint(quick: bool) -> Callable[[], object]:
    """h(W) value + gradient as the augmented-Lagrangian loop evaluates it.

    Alternates graph-building (``h_tensor`` + backward) with value-only
    reads of the *same* weights — the pattern Algorithm 1 produces on
    frozen-causal epochs, where the cached series pays off.
    """
    inner_steps = 8 if quick else 24
    rng = np.random.default_rng(13)
    weights = rng.uniform(0.0, 0.4, size=(48, 48))
    np.fill_diagonal(weights, 0.0)

    def workload() -> float:
        total = 0.0
        tensor = Tensor(weights, requires_grad=True)
        node = h_tensor(tensor)
        node.backward()
        total += node.item()
        for _ in range(inner_steps):
            total += h_value(weights)
        return total

    return workload


# ----------------------------------------------------------------------
# `optim` suite — the row-sparse gradient path at scaling vocabularies
# ----------------------------------------------------------------------

def make_optim_train_step(vocab: int, sparse: bool,
                          quick: bool) -> Callable[[], object]:
    """Full embedding-table train steps: gather → score → BCE → backward →
    clip → SparseAdam, with the tables on the dense or sparse grad path.

    The workload shape (B=128, T=16, d=64, 5 candidates) touches ~2k rows
    per step, so the dense path pays ``O(V*d)`` in the scatter backward and
    the optimizer sweep while the sparse path pays ``O(rows*d)``.
    """
    from ..nn import Parameter
    from ..nn.functional import embedding_lookup
    from ..nn.optim import SparseAdam
    batch, seq_len, dim, cands = 128, 16, 64, 5
    steps = 1 if quick else 2
    rng = np.random.default_rng(41)
    item_table = Parameter(rng.normal(size=(vocab, dim)) * 0.05)
    out_table = Parameter(rng.normal(size=(vocab, dim)) * 0.05)
    out_bias = Parameter(np.zeros(vocab))
    for param in (item_table, out_table, out_bias):
        param.sparse_grad = sparse
    history = rng.integers(1, vocab, size=(batch, seq_len))
    candidates = rng.integers(1, vocab, size=(batch, cands))
    targets = np.zeros((batch, cands))
    targets[:, 0] = 1.0
    optimizer = SparseAdam([item_table, out_table, out_bias], lr=1e-3)

    def workload() -> float:
        total = 0.0
        for _ in range(steps):
            optimizer.zero_grad()
            gathered = embedding_lookup(item_table, history)   # (B, T, d)
            representation = gathered.mean(axis=1)             # (B, d)
            cand_emb = embedding_lookup(out_table, candidates)  # (B, C, d)
            logits = (cand_emb * representation.reshape(batch, 1, dim)
                      ).sum(axis=-1) + out_bias[candidates]
            loss = losses.bce_with_logits(logits, targets)
            loss.backward()
            optimizer.clip_grad_norm(5.0)
            optimizer.step()
            total += loss.item()
        return total

    return workload


def make_state_alloc_probe(quick: bool):
    """Dense Adam/Adagrad state handling: in-place vs legacy rebinding.

    Measures (via ``tracemalloc``) the peak bytes allocated by one dense
    optimizer step against a faithful re-creation of the pre-fix formulas
    (``m = beta1*m + (1-beta1)*g`` and ``accum = accum + g**2``), which
    re-allocated table-sized state arrays every step.  The measured peaks
    land in the bench meta as ``step_peak_bytes_inplace`` /
    ``step_peak_bytes_rebind`` next to ``table_bytes`` for scale.
    """
    import tracemalloc
    from ..nn import Parameter
    from ..nn.optim import Adagrad, Adam
    vocab, dim = (2_000, 64) if quick else (10_000, 64)
    steps = 2 if quick else 5
    rng = np.random.default_rng(43)
    param = Parameter(rng.normal(size=(vocab, dim)) * 0.05)
    indices = rng.integers(0, vocab, size=(64, 20))
    scale = Tensor(rng.normal(size=(64, 20, dim)))
    adam = Adam([param], lr=1e-3)
    adagrad = Adagrad([param], lr=1e-2)

    def one_backward() -> None:
        param.zero_grad()
        ((param[indices] * scale).sum()).backward()

    def run_steps(optimizer, count: int) -> None:
        for _ in range(count):
            one_backward()
            optimizer.step()

    def legacy_adam_step(weights: np.ndarray, m: np.ndarray,
                         v: np.ndarray, grad: np.ndarray):
        beta1, beta2, eps, lr, t = 0.9, 0.999, 1e-8, 1e-3, 3
        m = beta1 * m + (1 - beta1) * grad
        v = beta2 * v + (1 - beta2) * grad ** 2
        bias1, bias2 = 1.0 - beta1 ** t, 1.0 - beta2 ** t
        weights -= lr * (m / bias1) / (np.sqrt(v / bias2) + eps)
        return m, v

    # Warm both optimizers so state exists, then measure one steady step.
    run_steps(adam, 2)
    run_steps(adagrad, 2)
    one_backward()
    tracemalloc.start()
    adam.step()
    _, peak_inplace = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    weights = param.data.copy()
    m_state = np.zeros_like(weights)
    v_state = np.zeros_like(weights)
    grad = rng.normal(size=weights.shape)
    tracemalloc.start()
    m_state, v_state = legacy_adam_step(weights, m_state, v_state, grad)
    _, peak_rebind = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    extra_meta = {
        "vocab": vocab, "dim": dim,
        "table_bytes": int(param.data.nbytes),
        "step_peak_bytes_inplace": int(peak_inplace),
        "step_peak_bytes_rebind": int(peak_rebind),
    }

    def workload() -> float:
        run_steps(adam, steps)
        run_steps(adagrad, steps)
        return float(param.data[0, 0])

    return workload, extra_meta


OPTIM_SUITE: Dict[str, Tuple[BenchFactory, int, Dict[str, object]]] = {
    "train_step_dense_v1k": (
        lambda quick: make_optim_train_step(1_000, False, quick), 5,
        {"vocab": 1_000, "dim": 64, "batch": 128, "sparse": False}),
    "train_step_sparse_v1k": (
        lambda quick: make_optim_train_step(1_000, True, quick), 5,
        {"vocab": 1_000, "dim": 64, "batch": 128, "sparse": True}),
    "train_step_dense_v10k": (
        lambda quick: make_optim_train_step(10_000, False, quick), 5,
        {"vocab": 10_000, "dim": 64, "batch": 128, "sparse": False}),
    "train_step_sparse_v10k": (
        lambda quick: make_optim_train_step(10_000, True, quick), 5,
        {"vocab": 10_000, "dim": 64, "batch": 128, "sparse": True}),
    "train_step_dense_v100k": (
        lambda quick: make_optim_train_step(100_000, False, quick), 3,
        {"vocab": 100_000, "dim": 64, "batch": 128, "sparse": False,
         "headline": True}),
    "train_step_sparse_v100k": (
        lambda quick: make_optim_train_step(100_000, True, quick), 3,
        {"vocab": 100_000, "dim": 64, "batch": 128, "sparse": True,
         "headline": True}),
    "optimizer_state_alloc": (
        make_state_alloc_probe, 3, {"kind": "alloc-probe"}),
}


# ----------------------------------------------------------------------
# `parallel` suite — serial vs workers=4 on the wired fan-out sites
# ----------------------------------------------------------------------
#: Worker count the parallel-suite benches request (the acceptance shape).
PARALLEL_BENCH_WORKERS = 4

#: Table IV subset used by the runner pair: cheap but real model fits.
_RUNNER_LINEUP = ("BPR", "NCF", "GRU4Rec", "STAMP", "NARM", "SASRec")


def _parallel_settings(quick: bool):
    from ..exp.config import BenchmarkSettings
    return BenchmarkSettings(scale=0.02, num_epochs=2 if quick else 4,
                             quick=quick)


def make_runner_lineup(workers: int, quick: bool) -> Callable[[], object]:
    """Table IV lineup fan-out: one process per model, shared split."""
    from ..data.datasets import load_dataset
    from ..exp.runner import run_models
    settings = _parallel_settings(quick)
    names = _RUNNER_LINEUP[:3] if quick else _RUNNER_LINEUP
    dataset = load_dataset("baby", scale=settings.scale,
                           seed=settings.data_seed)

    def workload() -> float:
        runs = run_models(names, dataset, settings, workers=workers)
        return sum(run.ndcg for run in runs)

    return workload


def make_grid_bench(workers: int, quick: bool) -> Callable[[], object]:
    """Table III grid fan-out: one process per hyper-parameter combo."""
    from ..data.datasets import load_dataset
    from ..exp.grid import grid_search_causer
    settings = _parallel_settings(True)  # Causer fits dominate; stay quick
    grid = ({"epsilon": [0.2, 0.3]} if quick
            else {"epsilon": [0.2, 0.3], "eta": [0.5, 1.0]})
    dataset = load_dataset("baby", scale=settings.scale,
                           seed=settings.data_seed)

    def workload() -> float:
        result = grid_search_causer(dataset, grid, settings,
                                    workers=workers)
        return result.best[1]

    return workload


def make_eval_shards(workers: int, quick: bool) -> Callable[[], object]:
    """Sharded full-catalog evaluation of a trained GRU4Rec."""
    from ..data.datasets import load_dataset
    from ..data.interactions import leave_one_out_split
    from ..exp.runner import build_model
    settings = _parallel_settings(True)
    dataset = load_dataset("baby", scale=settings.scale,
                           seed=settings.data_seed)
    split = leave_one_out_split(dataset.corpus)
    model = build_model("GRU4Rec", dataset, settings)
    model.fit(split.train)
    # Tile the held-out set so the eval pass is long enough to shard.
    samples = list(split.test) * (4 if quick else 16)

    def workload() -> float:
        result = evaluate_model(model, samples, z=settings.z,
                                batch_size=64, workers=workers)
        return result.mean("ndcg")

    return workload


def _blocking_task(spec) -> float:
    """A task dominated by a blocking wait plus a pinch of numpy compute."""
    duration, seed = spec
    time.sleep(duration)
    rng = np.random.default_rng(seed)
    block = rng.normal(size=(64, 64))
    return float((block @ block.T).trace())


def make_blocking_tasks(workers: int, quick: bool) -> Callable[[], object]:
    """Pure scheduling overlap: 8 blocking tasks through the pool.

    Unlike the compute-bound pairs this one parallelises on any machine —
    blocked tasks hold no core — so it isolates the pool's dispatch
    overhead and overlap behaviour from hardware core counts.
    """
    from ..parallel import process_map, unwrap
    num_tasks, duration = (4, 0.1) if quick else (8, 0.25)
    specs = [(duration, index) for index in range(num_tasks)]

    def workload() -> float:
        results = process_map(_blocking_task, specs, workers=workers)
        return sum(unwrap(results))

    return workload


# ----------------------------------------------------------------------
# `serve` suite — the online inference path (repro.serve)
# ----------------------------------------------------------------------

def _serve_model(quick: bool):
    """A small trained Causer shared by the serve benches (untimed setup)."""
    from ..core import Causer, CauserConfig
    rng = np.random.default_rng(17)
    num_users, num_items = 32, 120
    features = rng.normal(size=(num_items + 1, 12))
    cfg = CauserConfig(num_clusters=6, embedding_dim=16, hidden_dim=16,
                       num_epochs=1 if quick else 2, batch_size=32,
                       max_history=10, epsilon=0.1, seed=3)
    model = Causer(num_users, num_items, features, cfg)
    samples = [EvalSample(
        user_id=u,
        history=tuple((int(i),) for i in
                      rng.integers(1, num_items + 1, size=8)),
        target=(int(rng.integers(1, num_items + 1)),))
        for u in range(num_users)]
    model.fit_samples(samples)
    return model


def _serve_app(model, max_wait_ms: float, quick: bool):
    """ServeApp + in-process client with per-user sessions preloaded."""
    from ..serve import InProcessClient, ServeApp
    app = ServeApp(max_wait_ms=max_wait_ms)
    app.install_model(model)
    client = InProcessClient(app)
    rng = np.random.default_rng(23)
    num_users = 16 if quick else 32
    for user in range(num_users):
        for _ in range(6):
            basket = [int(i) for i in
                      rng.integers(1, model.num_items + 1, size=2)]
            client.post("/v1/events", {"user_id": user, "basket": basket})
    return client, num_users


def make_serve_request(quick: bool) -> Callable[[], object]:
    """Sequential single-request latency through the full route stack.

    ``max_wait_ms=0`` so a lone request never lingers in the batcher — this
    measures the un-batched request path end to end (JSON round-trip,
    session snapshot, incremental head, ranking)."""
    client, num_users = _serve_app(_serve_model(quick), 0.0, quick)

    def workload() -> float:
        total = 0
        for user in range(num_users):
            status, body = client.post("/v1/recommend", {"user_id": user})
            assert status == 200
            total += body["items"][0]
        return float(total)

    return workload


def make_serve_throughput(quick: bool) -> Callable[[], object]:
    """Concurrent requests coalesced by the micro-batcher (8 submitters)."""
    from concurrent.futures import ThreadPoolExecutor
    client, num_users = _serve_app(_serve_model(quick), 2.0, quick)
    rounds = 2 if quick else 4
    users = [u for _ in range(rounds) for u in range(num_users)]

    def one(user: int) -> int:
        status, body = client.post("/v1/recommend", {"user_id": user})
        assert status == 200
        return body["items"][0]

    def workload() -> float:
        with ThreadPoolExecutor(max_workers=8) as pool:
            return float(sum(pool.map(one, users)))

    return workload


def make_serve_score(mode: str, quick: bool) -> Callable[[], object]:
    """Score prebuilt sessions: incremental head vs full history replay.

    Both score the *same* sessions through :func:`repro.serve.scoring.
    score_views`; ``incremental`` reuses the per-event recurrent states the
    session store already advanced, ``replay`` re-runs the whole history
    through the model's offline batch scorer — the pair quantifies what the
    O(1)-per-event state maintenance buys at request time.
    """
    from ..serve import SessionStore, build_artifacts
    from ..serve.registry import ServingArtifacts
    from ..serve.scoring import score_views
    model = _serve_model(quick)
    artifacts = build_artifacts(model, generation=1)
    replay = ServingArtifacts(
        generation=1, path=None, model=model, model_class="Causer",
        num_users=model.num_users, num_items=model.num_items,
        max_history=model.config.max_history, mode="replay")
    store = SessionStore()
    rng = np.random.default_rng(29)
    num_users = 16 if quick else 32
    for user in range(num_users):
        for _ in range(model.config.max_history):
            basket = tuple(int(i) for i in
                           rng.integers(1, model.num_items + 1, size=2))
            store.append_event(user, basket, artifacts)
    views = [store.view(user, artifacts) for user in range(num_users)]
    target = artifacts if mode == "incremental" else replay

    def workload() -> float:
        return float(score_views(target, views).sum())

    return workload


def make_serve_mp_saturation(num_workers: int, quantize: str,
                             retrieval_mode: Optional[str], quick: bool):
    """Sharded-cluster throughput: RPS + p99 across N worker processes.

    The workload drives the coordinator's router with 8 concurrent
    submitters (each recommend crosses a real process boundary to its
    hash shard); per-run RPS and the slab-merged p99 land in the bench
    meta under ``saturation``, the numbers the docs' scaling table
    quotes.  Cluster teardown runs via ``workload.close`` so a failed
    repeat cannot strand worker processes or shm segments.
    """
    import time as _time
    from concurrent.futures import ThreadPoolExecutor

    from ..serve import InProcessClient, ServeCluster
    retrieval = None
    if retrieval_mode == "ivf":
        from ..retrieval import RetrievalConfig
        retrieval = RetrievalConfig(mode="ivf", shortlist=64, nprobe=4)
    model = _serve_model(quick)
    cluster = ServeCluster(num_workers, quantize=quantize,
                           retrieval=retrieval, max_wait_ms=1.0)
    try:
        cluster.start()
        cluster.install(model)
        deadline = _time.monotonic() + 120
        while not all(g >= 1 for g in cluster.worker_generations()):
            if _time.monotonic() > deadline:
                raise RuntimeError("workers never adopted the checkpoint")
            _time.sleep(0.05)
        client = InProcessClient(cluster)
        rng = np.random.default_rng(23)
        num_users = 16 if quick else 32
        for user in range(num_users):
            for _ in range(6):
                basket = [int(i) for i in
                          rng.integers(1, model.num_items + 1, size=2)]
                status, _ = client.post("/v1/events",
                                        {"user_id": user, "basket": basket})
                assert status == 200
    except BaseException:
        cluster.close()
        raise
    requests = 64 if quick else 320
    users = [u % num_users for u in range(requests)]
    saturation: Dict[str, object] = {}

    def one(user: int) -> int:
        status, body = client.post("/v1/recommend", {"user_id": user})
        assert status == 200, body
        return body["items"][0]

    def workload() -> float:
        start = _time.perf_counter()
        with ThreadPoolExecutor(max_workers=8) as pool:
            total = float(sum(pool.map(one, users)))
        elapsed = _time.perf_counter() - start
        saturation["rps"] = round(requests / elapsed, 1)
        saturation["p99_ms"] = round(
            cluster.recommend_percentile(99) * 1e3, 3)
        return total

    workload.close = cluster.close
    checkpoint = cluster.current_checkpoint()
    extra_meta = {
        "num_workers": num_workers, "quantize": quantize,
        "retrieval": retrieval_mode or "exact", "requests": requests,
        "submitters": 8, "saturation": saturation,
        "table_bytes": checkpoint.table_bytes,
        "table_bytes_dense": checkpoint.table_bytes_dense,
        "segment_bytes": checkpoint.nbytes,
    }
    return workload, extra_meta


def make_serve_mp_rss(quick: bool):
    """Per-extra-worker memory probe for the shared-memory design.

    A deliberately table-heavy (untrained) GRU4Rec is published once;
    the probe records each worker's **USS** (private pages only — RSS
    double-counts the shared checkpoint mapping) before and after
    attach.  The acceptance claim is that the per-worker delta is a
    small fraction of the frozen-artifact footprint: workers reference
    the tables, they do not copy them.
    """
    import time as _time

    from ..serve import InProcessClient, ServeCluster
    num_items = 2_000 if quick else 20_000
    dim = 32 if quick else 64
    cfg = TrainConfig(embedding_dim=dim, hidden_dim=dim, num_epochs=0,
                      batch_size=32, seed=3)
    model = GRU4Rec(num_users=32, num_items=num_items, config=cfg)

    def uss(worker_id: int) -> int:
        stats = cluster.worker_stats(worker_id)
        return int((stats or {}).get("uss_kb") or 0)

    cluster = ServeCluster(2, max_wait_ms=1.0)
    try:
        cluster.start()
        before = {w: uss(w) for w in (0, 1)}
        cluster.install(model)
        deadline = _time.monotonic() + 120
        while not all(g >= 1 for g in cluster.worker_generations()):
            if _time.monotonic() > deadline:
                raise RuntimeError("workers never adopted the checkpoint")
            _time.sleep(0.05)
        # Measure straight after adoption: this is the attach cost (page
        # tables + registry bookkeeping), before request traffic starts
        # allocating private session/buffer memory.
        after = {w: uss(w) for w in (0, 1)}
        client = InProcessClient(cluster)
        for user in range(4):
            client.post("/v1/events", {"user_id": user, "basket": [1, 2]})
            client.post("/v1/recommend", {"user_id": user})
    except BaseException:
        cluster.close()
        raise
    checkpoint = cluster.current_checkpoint()
    deltas = [max(0, after[w] - before[w]) for w in (0, 1)]
    footprint_kb = checkpoint.artifact_bytes / 1024

    def workload() -> float:
        total = 0
        for user in range(4):
            status, body = client.post("/v1/recommend", {"user_id": user})
            assert status == 200
            total += body["items"][0]
        return float(total)

    workload.close = cluster.close
    extra_meta = {
        "num_workers": 2, "num_items": num_items, "dim": dim,
        "artifact_kb": round(footprint_kb, 1),
        "segment_bytes": checkpoint.nbytes,
        "worker_uss_before_kb": before, "worker_uss_after_kb": after,
        "uss_per_extra_worker_kb": round(float(np.mean(deltas)), 1),
        "uss_over_artifact": round(
            float(np.mean(deltas)) / max(footprint_kb, 1e-9), 4),
    }
    return workload, extra_meta


SERVE_SUITE: Dict[str, Tuple[BenchFactory, int, Dict[str, object]]] = {
    "request_latency": (
        make_serve_request, 3,
        {"endpoint": "/v1/recommend", "batched": False, "headline": True}),
    "batched_throughput": (
        make_serve_throughput, 3,
        {"endpoint": "/v1/recommend", "batched": True, "submitters": 8}),
    "score_incremental": (
        lambda quick: make_serve_score("incremental", quick), 5,
        {"scorer": "incremental", "model": "Causer"}),
    "score_replay": (
        lambda quick: make_serve_score("replay", quick), 5,
        {"scorer": "replay", "model": "Causer"}),
    "mp_saturation_w1": (
        lambda quick: make_serve_mp_saturation(1, "none", None, quick), 2,
        {"kind": "mp-saturation"}),
    "mp_saturation_w2": (
        lambda quick: make_serve_mp_saturation(2, "none", None, quick), 2,
        {"kind": "mp-saturation"}),
    "mp_saturation_w4": (
        lambda quick: make_serve_mp_saturation(4, "none", None, quick), 2,
        {"kind": "mp-saturation", "headline": True}),
    "mp_saturation_w8": (
        lambda quick: make_serve_mp_saturation(8, "none", None, quick), 2,
        {"kind": "mp-saturation"}),
    "mp_saturation_w4_ivf": (
        lambda quick: make_serve_mp_saturation(4, "none", "ivf", quick), 2,
        {"kind": "mp-saturation"}),
    "mp_saturation_w4_fp16": (
        lambda quick: make_serve_mp_saturation(4, "fp16", None, quick), 2,
        {"kind": "mp-saturation"}),
    "mp_worker_rss": (
        make_serve_mp_rss, 2,
        {"kind": "mp-memory"}),
}


# ----------------------------------------------------------------------
# `online` suite — continual learning from the event stream (repro.online)
# ----------------------------------------------------------------------

ONLINE_BATCH_EVENTS = 32


def _online_stack(quick: bool, lr: float = 0.05):
    """App + tee'd memory log + trainer over a small trained Causer.

    Untimed setup shared by the online benches; returns everything plus a
    teardown closure the workloads attach as ``workload.close``.
    """
    import copy as _copy

    from ..online import EventLog, OnlineTrainer
    from ..serve import InProcessClient, ServeApp
    model = _serve_model(quick)
    app = ServeApp(max_wait_ms=0.0)
    app.install_model(model)
    client = InProcessClient(app)
    log = EventLog(None)
    app.event_sink = log.append
    trainer = OnlineTrainer(_copy.deepcopy(model), log, lr=lr,
                            batch_events=ONLINE_BATCH_EVENTS)

    def close() -> None:
        trainer.stop()
        app.close()
        log.close()

    return model, app, client, log, trainer, close


def make_online_events(quick: bool):
    """Sustained event ingestion through the full online path.

    Each run posts a fixed burst of ``/v1/events`` (request validation →
    session append → log tee) and then drains every complete micro-batch
    through the trainer — the end-to-end cost of keeping the shadow
    model caught up with the stream.  ``suite_summary`` divides the
    burst size by the mean run time into the headline events/sec.
    """
    model, _app, client, _log, trainer, close = _online_stack(quick)
    count = 128 if quick else 512
    rng = np.random.default_rng(31)
    baskets = [[int(i) for i in rng.integers(1, model.num_items + 1,
                                             size=2)]
               for _ in range(count)]

    def workload() -> float:
        total = 0
        for k, basket in enumerate(baskets):
            status, body = client.post(
                "/v1/events", {"user_id": k % 24, "basket": basket})
            assert status == 200
            total += body["session_length"]
        trainer.pump()
        return float(total)

    workload.close = close
    return workload, {"events_per_run": count,
                      "batch_events": ONLINE_BATCH_EVENTS}


def make_online_refresh(quick: bool):
    """Wall time of one full refresh cycle on a warm window.

    Deep-copy the shadow, warm-start Algorithm 1 for one epoch on the
    sliding window, measure drift, publish through the registry, hand
    the trainer a fresh copy — the whole hot-swap pipeline, timed.
    """
    from ..online import RefreshController
    model, app, client, log, trainer, close = _online_stack(quick)
    window = 192 if quick else 512
    rng = np.random.default_rng(37)
    for k in range(window):
        status, _body = client.post(
            "/v1/events",
            {"user_id": k % 24,
             "basket": [int(i) for i in
                        rng.integers(1, model.num_items + 1, size=2)]})
        assert status == 200
    trainer.pump()
    refresh = RefreshController(trainer, log, app.install_model,
                                window=window, refresh_epochs=1,
                                baseline=model)

    def workload() -> float:
        assert refresh.refresh_once()
        return float(refresh.generations)

    workload.close = close
    return workload, {"window": window, "refresh_epochs": 1}


def make_online_recommend(trainer_on: bool, quick: bool):
    """p99 recommend latency with the background trainer on vs off.

    Both variants interleave event posts with recommends; the ``on``
    variant additionally runs the trainer's pump loop on its background
    thread, so the pair isolates what continual learning costs the
    request path (the trainer holds no serving locks — the overhead is
    pure CPU contention).  Per-run p99 lands in the bench meta.
    """
    import time as _time
    model, _app, client, _log, trainer, close = _online_stack(
        quick, lr=0.05 if trainer_on else 0.0)
    if trainer_on:
        trainer.poll_interval = 0.001
        trainer.start()
    requests = 64 if quick else 200
    rng = np.random.default_rng(41)
    baskets = [[int(i) for i in rng.integers(1, model.num_items + 1,
                                             size=2)]
               for _ in range(requests)]
    latency: Dict[str, object] = {}

    def workload() -> float:
        samples = []
        for k, basket in enumerate(baskets):
            status, _body = client.post(
                "/v1/events", {"user_id": k % 24, "basket": basket})
            assert status == 200
            began = _time.perf_counter()
            status, body = client.post("/v1/recommend",
                                       {"user_id": k % 24, "z": 10})
            samples.append(_time.perf_counter() - began)
            assert status == 200, body
        latency["p99_ms"] = round(
            float(np.percentile(samples, 99)) * 1e3, 3)
        latency["p50_ms"] = round(
            float(np.percentile(samples, 50)) * 1e3, 3)
        return float(len(samples))

    workload.close = close
    return workload, {"trainer": "on" if trainer_on else "off",
                      "requests": requests, "latency": latency}


ONLINE_SUITE: Dict[str, Tuple[BenchFactory, int, Dict[str, object]]] = {
    "events_sustained": (
        make_online_events, 3,
        {"endpoint": "/v1/events", "headline": True}),
    "refresh_walltime": (
        make_online_refresh, 3,
        {"kind": "refresh-cycle"}),
    "recommend_p99_trainer_on": (
        lambda quick: make_online_recommend(True, quick), 2,
        {"endpoint": "/v1/recommend"}),
    "recommend_p99_trainer_off": (
        lambda quick: make_online_recommend(False, quick), 2,
        {"endpoint": "/v1/recommend"}),
}


# ----------------------------------------------------------------------
# `retrieval` suite — two-tower ANN candidate generation (repro.retrieval)
# ----------------------------------------------------------------------

RETRIEVAL_DIM = 16
RETRIEVAL_SHORTLIST = 500
RETRIEVAL_NPROBE = 8
RETRIEVAL_TOP_Z = 10


def _retrieval_tower(catalog: int, num_queries: int):
    """Synthetic normalized item tower + near-item queries (untimed setup).

    Items are drawn around random unit directions and re-normalized, so
    inner-product and L2 rankings coincide and the workload exercises the
    geometry IVF is built for; queries are perturbed item vectors, the
    serving situation where a session's user vector sits near the items
    it should retrieve.
    """
    from ..retrieval import ItemTower
    rng = np.random.default_rng(np.random.SeedSequence(101, spawn_key=(1,)))
    centers = rng.normal(size=(256, RETRIEVAL_DIM))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    which = rng.integers(0, centers.shape[0], size=catalog)
    vectors = centers[which] + rng.normal(size=(catalog, RETRIEVAL_DIM)) * 0.08
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
    bias = rng.normal(size=catalog) * 0.01
    tower = ItemTower(vectors=vectors, bias=bias,
                      ids=np.arange(1, catalog + 1, dtype=np.int64))
    picks = rng.choice(catalog, size=num_queries, replace=False)
    queries = (vectors[picks]
               + rng.normal(size=(num_queries, RETRIEVAL_DIM)) * 0.05)
    return tower, queries


def make_retrieval_search(catalog: int, mode: str, quick: bool):
    """Search latency over one catalog scale: brute force vs IVF+re-rank.

    The ``ivf`` workload is the full served candidate pipeline — probe,
    shortlist, exact re-rank of the shortlist — so its latency is directly
    comparable to the ``exact`` full-catalog scan it replaces.  Recall of
    the shortlist against the exact top-z is measured at setup (untimed)
    and recorded in the bench meta.
    """
    from ..retrieval import ExactIndex, IVFIndex, top_ids_by_score
    num_queries = 10 if quick else 20
    tower, queries = _retrieval_tower(catalog, num_queries)
    if mode == "exact":
        index = ExactIndex(tower)

        def workload() -> float:
            total = 0
            for query in queries:
                total += int(index.search(query, RETRIEVAL_TOP_Z)[0])
            return float(total)

        return workload

    iters = 2 if quick else (3 if catalog >= 1_000_000 else 4)
    ivf = IVFIndex.build(tower, seed=0, iters=iters)
    exact = ExactIndex(tower)
    recalls = []
    for query in queries:
        top = exact.search(query, RETRIEVAL_TOP_Z)
        shortlist = ivf.search(query, RETRIEVAL_SHORTLIST,
                               nprobe=RETRIEVAL_NPROBE)
        hits = len(set(top.tolist()) & set(shortlist.tolist()))
        recalls.append(hits / top.shape[0])
    extra_meta = {"recall_at_shortlist": float(np.mean(recalls)),
                  "n_clusters": ivf.n_clusters,
                  "kmeans_iters": iters}

    def workload() -> float:
        total = 0
        for query in queries:
            shortlist = ivf.search(query, RETRIEVAL_SHORTLIST,
                                   nprobe=RETRIEVAL_NPROBE)
            rows = tower.vectors[shortlist - 1]
            scores = rows @ query + tower.bias[shortlist - 1]
            total += int(top_ids_by_score(scores, shortlist,
                                          RETRIEVAL_TOP_Z)[0])
        return float(total)

    return workload, extra_meta


def _retrieval_meta(catalog: int, mode: str) -> Dict[str, object]:
    meta: Dict[str, object] = {"catalog": catalog, "dim": RETRIEVAL_DIM,
                               "mode": mode, "top_z": RETRIEVAL_TOP_Z}
    if mode == "ivf":
        meta.update(shortlist=RETRIEVAL_SHORTLIST, nprobe=RETRIEVAL_NPROBE)
    return meta


RETRIEVAL_SUITE: Dict[str, Tuple[BenchFactory, int, Dict[str, object]]] = {
    "exact_search_v10k": (
        lambda quick: make_retrieval_search(10_000, "exact", quick), 5,
        _retrieval_meta(10_000, "exact")),
    "ivf_search_v10k": (
        lambda quick: make_retrieval_search(10_000, "ivf", quick), 5,
        _retrieval_meta(10_000, "ivf")),
    "exact_search_v100k": (
        lambda quick: make_retrieval_search(100_000, "exact", quick), 3,
        _retrieval_meta(100_000, "exact")),
    "ivf_search_v100k": (
        lambda quick: make_retrieval_search(100_000, "ivf", quick), 3,
        _retrieval_meta(100_000, "ivf")),
    "exact_search_v1m": (
        lambda quick: make_retrieval_search(1_000_000, "exact", quick), 2,
        {**_retrieval_meta(1_000_000, "exact"), "headline": True}),
    "ivf_search_v1m": (
        lambda quick: make_retrieval_search(1_000_000, "ivf", quick), 2,
        {**_retrieval_meta(1_000_000, "ivf"), "headline": True}),
}


PARALLEL_SUITE: Dict[str, Tuple[BenchFactory, int, Dict[str, object]]] = {
    "runner_serial": (
        lambda quick: make_runner_lineup(1, quick), 2,
        {"site": "exp.runner.run_models", "workers": 1, "headline": True}),
    "runner_workers4": (
        lambda quick: make_runner_lineup(PARALLEL_BENCH_WORKERS, quick), 2,
        {"site": "exp.runner.run_models", "workers": PARALLEL_BENCH_WORKERS,
         "headline": True}),
    "grid_serial": (
        lambda quick: make_grid_bench(1, quick), 2,
        {"site": "exp.grid.grid_search_causer", "workers": 1}),
    "grid_workers4": (
        lambda quick: make_grid_bench(PARALLEL_BENCH_WORKERS, quick), 2,
        {"site": "exp.grid.grid_search_causer",
         "workers": PARALLEL_BENCH_WORKERS}),
    "eval_shard_serial": (
        lambda quick: make_eval_shards(1, quick), 3,
        {"site": "eval.evaluator.evaluate_model", "workers": 1}),
    "eval_shard_workers4": (
        lambda quick: make_eval_shards(PARALLEL_BENCH_WORKERS, quick), 3,
        {"site": "eval.evaluator.evaluate_model",
         "workers": PARALLEL_BENCH_WORKERS}),
    "blocking_serial": (
        lambda quick: make_blocking_tasks(1, quick), 3,
        {"site": "parallel.pool.process_map", "workers": 1,
         "kind": "blocking-overlap"}),
    "blocking_workers4": (
        lambda quick: make_blocking_tasks(PARALLEL_BENCH_WORKERS, quick), 3,
        {"site": "parallel.pool.process_map",
         "workers": PARALLEL_BENCH_WORKERS, "kind": "blocking-overlap"}),
}


def suite_summary(suite: str,
                  results: List[BenchResult]) -> Dict[str, object]:
    """Derived quantities embedded into the result document.

    For the ``parallel`` suite: ``speedup`` per ``X_serial``/``X_workers4``
    pair (serial mean / parallel mean) plus the CPU count the numbers were
    measured on, since compute-bound speedup is core-bounded.

    For the ``serve`` suite: the ``score_replay``/``score_incremental``
    speedup — how much the incrementally-maintained session state saves
    over replaying the full history at request time — plus, when the
    multi-process saturation benches ran, the w4/w1 RPS scaling factor
    (annotated as core-count-limited on small hosts), the fp16 table
    shrink, and the per-extra-worker USS as a fraction of the frozen
    artifact footprint.

    For the ``optim`` suite: one ``sparse_vs_dense_v*`` speedup per
    dense/sparse train-step pair (dense mean / sparse mean), showing how
    the row-sparse gradient path scales with vocabulary size.

    For the ``retrieval`` suite: one ``ivf_vs_exact_v*`` speedup per
    catalog scale (exact mean / ivf mean) plus the shortlist recalls the
    IVF factories measured at setup — the acceptance numbers for the
    two-stage candidate pipeline.

    For the ``online`` suite: sustained events/sec through the tee +
    trainer path, the refresh-cycle wall time, and the p99 recommend
    latency with the background trainer on vs off (the trainer-overhead
    ratio is the acceptance number — the trainer holds no serving locks,
    so the ratio isolates CPU contention).
    """
    if suite == "online":
        by_name = {result.name: result for result in results}
        summary: Dict[str, object] = {}
        events = by_name.get("events_sustained")
        if events is not None and events.mean_s > 0:
            summary["events_per_s"] = round(
                events.meta["events_per_run"] / events.mean_s, 1)
        cycle = by_name.get("refresh_walltime")
        if cycle is not None:
            summary["refresh_wall_s"] = round(cycle.mean_s, 4)

        def p99(name: str) -> Optional[float]:
            result = by_name.get(name)
            if result is None:
                return None
            value = result.meta.get("latency", {}).get("p99_ms")
            return float(value) if value else None

        on, off = p99("recommend_p99_trainer_on"), \
            p99("recommend_p99_trainer_off")
        if on is not None:
            summary["recommend_p99_ms_trainer_on"] = on
        if off is not None:
            summary["recommend_p99_ms_trainer_off"] = off
        if on and off:
            summary["trainer_overhead_p99"] = round(on / off, 3)
        return summary
    if suite == "optim":
        by_name = {result.name: result for result in results}
        speedups: Dict[str, float] = {}
        for name, result in by_name.items():
            if not name.startswith("train_step_dense_"):
                continue
            scale = name[len("train_step_dense_"):]
            partner = by_name.get(f"train_step_sparse_{scale}")
            if partner is not None and partner.mean_s > 0:
                speedups[f"sparse_vs_dense_{scale}"] = (
                    result.mean_s / partner.mean_s)
        return {"speedups": speedups} if speedups else {}
    if suite == "serve":
        from ..parallel import available_cpus
        by_name = {result.name: result for result in results}
        summary: Dict[str, object] = {}
        speedups: Dict[str, float] = {}
        incremental = by_name.get("score_incremental")
        replay = by_name.get("score_replay")
        if incremental is not None and replay is not None \
                and incremental.mean_s > 0:
            speedups["incremental_vs_replay"] = (
                replay.mean_s / incremental.mean_s)

        def rps(name: str) -> Optional[float]:
            result = by_name.get(name)
            if result is None:
                return None
            value = result.meta.get("saturation", {}).get("rps")
            return float(value) if value else None

        base, scaled = rps("mp_saturation_w1"), rps("mp_saturation_w4")
        if base and scaled:
            cpus = available_cpus()
            summary["rps_scaling_w4_vs_w1"] = round(scaled / base, 3)
            summary["cpus"] = cpus
            if cpus < 4:
                summary["scaling_note"] = (
                    f"core-count-limited: host has {cpus} usable CPU(s), "
                    "so 4 workers time-share instead of running in "
                    "parallel; the >=2.5x acceptance target applies on "
                    ">=4-core hosts")
        dense, fp16 = by_name.get("mp_saturation_w4"), \
            by_name.get("mp_saturation_w4_fp16")
        if dense is not None and fp16 is not None \
                and fp16.meta.get("table_bytes"):
            summary["fp16_table_shrink"] = round(
                dense.meta["table_bytes"] / fp16.meta["table_bytes"], 3)
        rss = by_name.get("mp_worker_rss")
        if rss is not None:
            summary["uss_over_artifact"] = rss.meta.get("uss_over_artifact")
        if speedups:
            summary["speedups"] = speedups
        return summary
    if suite == "retrieval":
        by_name = {result.name: result for result in results}
        speedups = {}
        recalls = {}
        for name, result in by_name.items():
            if not name.startswith("exact_search_"):
                continue
            scale = name[len("exact_search_"):]
            partner = by_name.get(f"ivf_search_{scale}")
            if partner is None or partner.mean_s <= 0:
                continue
            speedups[f"ivf_vs_exact_{scale}"] = result.mean_s / partner.mean_s
            recall = partner.meta.get("recall_at_shortlist")
            if recall is not None:
                recalls[scale] = recall
        out: Dict[str, object] = {}
        if speedups:
            out["speedups"] = speedups
        if recalls:
            out["recalls"] = recalls
        return out
    if suite != "parallel":
        return {}
    from ..parallel import available_cpus
    by_name = {result.name: result for result in results}
    speedups: Dict[str, float] = {}
    for name, result in by_name.items():
        if not name.endswith("_serial"):
            continue
        partner = by_name.get(name[:-len("_serial")] + "_workers4")
        if partner is not None and partner.mean_s > 0:
            speedups[name[:-len("_serial")]] = result.mean_s / partner.mean_s
    return {"speedups": speedups, "cpus": available_cpus(),
            "workers": PARALLEL_BENCH_WORKERS}


#: name -> (factory, repeats, meta).  Meta records the workload shape so the
#: JSON is self-describing.
ENGINE_SUITE: Dict[str, Tuple[BenchFactory, int, Dict[str, object]]] = {
    "train_epoch_gru": (
        lambda quick: make_train_epoch("gru", quick), 3,
        {"seq_len": 50, "batch": 64, "dim": 64, "cell": "gru",
         "headline": True}),
    "train_epoch_lstm": (
        lambda quick: make_train_epoch("lstm", quick), 3,
        {"seq_len": 50, "batch": 64, "dim": 64, "cell": "lstm"}),
    "backward_engine": (make_backward_engine, 5, {"kind": "op-chain"}),
    "embedding_scatter": (make_embedding_scatter, 5,
                          {"vocab": 4096, "dim": 64}),
    "eval_topk": (make_eval_topk, 3, {"num_items": 2000, "z": 10}),
    "dag_constraint": (make_dag_constraint, 5, {"nodes": 48}),
}

SUITES: Dict[str, Dict[str, Tuple[BenchFactory, int, Dict[str, object]]]] = {
    "engine": ENGINE_SUITE,
    "online": ONLINE_SUITE,
    "optim": OPTIM_SUITE,
    "parallel": PARALLEL_SUITE,
    "retrieval": RETRIEVAL_SUITE,
    "serve": SERVE_SUITE,
}


def run_suite(suite: str = "engine", quick: bool = False,
              warmup: int = 1, repeats: Optional[int] = None,
              only: Optional[List[str]] = None) -> List[BenchResult]:
    """Execute a suite and return one :class:`BenchResult` per bench."""
    if suite not in SUITES:
        raise KeyError(f"unknown suite {suite!r}; available: {sorted(SUITES)}")
    spec = SUITES[suite]
    names = list(spec) if only is None else list(only)
    unknown = [n for n in names if n not in spec]
    if unknown:
        raise KeyError(f"unknown bench(es) {unknown} in suite {suite!r}")
    results: List[BenchResult] = []
    for name in names:
        factory, default_repeats, meta = spec[name]
        bench_repeats = repeats if repeats is not None else default_repeats
        if quick:
            bench_repeats = min(bench_repeats, 2)
        merged_meta: Dict[str, object] = {**meta, "quick": quick}

        # A factory may return either the workload callable or a
        # ``(workload, extra_meta)`` pair when setup itself measures
        # something worth recording (e.g. the allocation probe).  The
        # build runs before ``time_workload`` snapshots the meta dict,
        # so updating it here lands in the result document.
        def build(factory=factory, merged_meta=merged_meta):
            built = factory(quick)
            if isinstance(built, tuple):
                workload, extra_meta = built
                merged_meta.update(extra_meta)
                return workload
            return built

        results.append(time_workload(
            name, build, warmup=warmup, repeats=bench_repeats,
            meta=merged_meta))
    return results
