"""`repro.bench` — wall-clock regression benchmarks for the engine.

A measured-performance layer: :mod:`.harness` times seeded workloads and
writes schema-v1 JSON (``BENCH_<name>.json``), :mod:`.suites` defines the
engine hot-path suite, :mod:`.compare` implements baseline comparison with
a configurable regression threshold, and :mod:`.cli` exposes it all as
``python -m repro.bench``.
"""

from .compare import (BenchComparison, ComparisonReport, compare_documents,
                      merged_document)
from .harness import (SCHEMA, BenchResult, document, environment, load_json,
                      peak_rss_kb, time_workload, validate_document,
                      write_json)
from .suites import SUITES, run_suite

__all__ = [
    "SCHEMA", "BenchResult", "document", "environment", "load_json",
    "peak_rss_kb", "time_workload", "validate_document", "write_json",
    "BenchComparison", "ComparisonReport", "compare_documents",
    "merged_document",
    "SUITES", "run_suite",
]
