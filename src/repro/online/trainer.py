"""Background trainer applying event micro-batches to a shadow model.

The online half of §III-C's slow-update story: serving keeps handing out
scores from the *frozen* published checkpoint while this trainer folds
the live event stream into a private **shadow copy** of the model —
lazy row-sparse steps touching only the embedding-family parameters
(item/output/user embedding rows plus the output bias).  The recurrent
weights and the causal graph stay fixed between refreshes; re-deriving
them (Algorithm 1 warm-started on a sliding window) is the
:class:`repro.online.refresh.RefreshController`'s job, which then hot
swaps the refreshed shadow into the registry.

Determinism contract (the replay guarantee):

* Events are consumed strictly in log-offset order, in fixed-size
  micro-batches at fixed offsets — batch ``k`` is exactly offsets
  ``[k*B, (k+1)*B)`` and is applied **exactly once**.  A partial tail
  batch is never applied; it waits until the log fills it.
* Negative sampling for batch ``k`` draws from
  ``default_rng(SeedSequence(seed, spawn_key=(k,)))`` — independent of
  wall clock, thread timing, or how many serving workers appended.

Together these make ``python -m repro.online replay`` bit-reproduce the
live shadow tables from the log alone, at any worker count.

Session-eviction resync: the trainer keeps its own bounded LRU of
per-user history tails.  When a user reappears after their tail was
evicted (or after the serving :class:`SessionStore` dropped them — same
symptom upstream), the event is treated as the start of a fresh session
(``online_trainer_resyncs_total``), never as a corrupt append.
"""

from __future__ import annotations

import copy
import json
import threading
import time
from collections import OrderedDict, deque
from pathlib import Path
from typing import Deque, List, Optional, Set, Tuple

import numpy as np

from ..data.batching import pad_samples, sample_negatives
from ..data.interactions import EvalSample
from ..nn.optim import make_optimizer
from .log import EventLog

__all__ = ["OnlineTrainer", "ONLINE_PARAM_TOKENS"]

#: Parameter-name fragments eligible for online steps.  Everything else
#: (recurrent cells, attention, the causal graph) is frozen between
#: refreshes — the cheap/fast vs expensive/slow split of §III-C.
ONLINE_PARAM_TOKENS = ("item_embedding", "output_embedding",
                      "user_embedding", "output_bias")

Basket = Tuple[int, ...]


def select_online_params(model) -> List:
    """Embedding-family parameters of ``model``, in stable name order."""
    return [param for name, param in model.named_parameters()
            if any(token in name for token in ONLINE_PARAM_TOKENS)]


class OnlineTrainer:
    """Consume an :class:`EventLog` into sparse updates on a shadow model.

    ``model`` must be a *private trainable copy* (``load_model(...,
    mmap=False)`` or a deepcopy) — published serving artifacts alias the
    published model's arrays, so the trainer must never share parameters
    with anything the registry holds.

    ``lr == 0`` disables updates entirely (no optimizer is even
    constructed — :class:`repro.nn.optim.Optimizer` rejects ``lr <= 0``);
    events are still consumed so offsets, tails, and lag metrics stay
    truthful, and serving output is bit-identical to the frozen
    checkpoint (the ``--online-lr 0`` parity contract).
    """

    def __init__(self, model, log: EventLog, *, lr: float = 0.01,
                 optimizer: str = "adagrad", batch_events: int = 32,
                 num_negatives: int = 4, seed: int = 0,
                 clip_norm: float = 5.0, tail_capacity: int = 10_000,
                 start_offset: int = 0, poll_interval: float = 0.05,
                 metrics=None) -> None:
        if batch_events < 1:
            raise ValueError("batch_events must be positive")
        if start_offset % batch_events != 0:
            raise ValueError(
                "start_offset must be a micro-batch boundary "
                f"(a multiple of {batch_events}) so batch indices — and "
                "therefore negative-sampling streams — line up with a "
                "from-zero replay")
        self.log = log
        self.lr = float(lr)
        self.optimizer_name = optimizer
        self.batch_events = int(batch_events)
        self.num_negatives = int(num_negatives)
        self.seed = int(seed)
        self.clip_norm = float(clip_norm)
        self.tail_capacity = int(tail_capacity)
        self.poll_interval = float(poll_interval)
        self.metrics = metrics
        self._lock = threading.RLock()
        self._consumed = int(start_offset)
        self._steps = 0
        self._tails: "OrderedDict[int, Deque[Basket]]" = OrderedDict()
        self._seen: Set[int] = set()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        with self._lock:
            self._adopt_locked(model)

    # -- model / optimizer plumbing --------------------------------------
    def _adopt_locked(self, model) -> None:
        self.model = model
        self.max_history = int(model.config.max_history)
        self._causal = hasattr(model, "item_causal_matrix")
        model.set_sparse_grads(True)
        params = select_online_params(model)
        if self.lr > 0.0:
            self._optimizer = make_optimizer(self.optimizer_name, params,
                                             self.lr)
        else:
            self._optimizer = None

    def snapshot_model(self):
        """Deep copy of the shadow model (safe to publish or fit further)."""
        with self._lock:
            return copy.deepcopy(self.model)

    def adopt_model(self, model) -> None:
        """Replace the shadow with a refreshed model (private copy!).

        Optimizer state restarts cold: a refresh re-derives the very
        rows the moments describe, so stale curvature estimates would
        mis-scale the first post-refresh steps.
        """
        with self._lock:
            self._adopt_locked(model)

    # -- consumption ------------------------------------------------------
    @property
    def consumed_offset(self) -> int:
        """Next log offset the trainer will consume."""
        with self._lock:
            return self._consumed

    @property
    def steps(self) -> int:
        with self._lock:
            return self._steps

    def pump(self, max_batches: Optional[int] = None) -> int:
        """Apply every complete pending micro-batch; return how many.

        Safe to call from tests/CLI while the background thread runs —
        consumption is serialized by the trainer lock, and each batch is
        claimed (offset advanced) in the same critical section that
        applies it, so no batch can be applied twice.
        """
        applied = 0
        while max_batches is None or applied < max_batches:
            with self._lock:
                info = self._pump_one_locked()
            if info is None:
                break
            applied += 1
            self._emit(info)
        if applied and self.metrics is not None:
            self.metrics.set_gauge("online_update_lag",
                                   self.log.next_offset
                                   - self.consumed_offset)
        return applied

    def _emit(self, info: dict) -> None:
        # Metrics fire outside the trainer lock — the registry lock stays
        # a leaf, same discipline as the serving stores.
        if self.metrics is None:
            return
        self.metrics.inc("online_events_consumed_total",
                         by=float(self.batch_events))
        if info["resyncs"]:
            self.metrics.inc("online_trainer_resyncs_total",
                             by=float(info["resyncs"]))
        if info["stepped"]:
            self.metrics.inc("online_steps_total")
            self.metrics.observe("online_batch_seconds", info["seconds"])

    def _pump_one_locked(self) -> Optional[dict]:
        start = self._consumed
        records = self.log.read(start, start + self.batch_events)
        if len(records) < self.batch_events:
            return None
        batch_index = start // self.batch_events
        resyncs = 0
        samples: List[EvalSample] = []
        for record in records:
            tail = self._tails.get(record.user_id)
            if tail is None:
                if record.user_id in self._seen:
                    # The user's tail was evicted (here or in the serving
                    # SessionStore): resynchronize on a fresh session.
                    resyncs += 1
                tail = deque(maxlen=self.max_history)
                self._tails[record.user_id] = tail
                self._seen.add(record.user_id)
                if len(self._tails) > self.tail_capacity:
                    self._tails.popitem(last=False)
            self._tails.move_to_end(record.user_id)
            if not record.basket:
                continue
            if tail:
                # Cold-start events (empty prior tail) seed the tail but
                # yield no sample — pad_samples needs a non-empty history.
                samples.append(EvalSample(user_id=record.user_id,
                                          history=tuple(tail),
                                          target=record.basket))
            tail.append(record.basket)
        self._consumed = start + self.batch_events
        info = {"resyncs": resyncs, "stepped": False, "seconds": 0.0}
        if samples and self._optimizer is not None:
            began = time.perf_counter()
            self._step_locked(samples, batch_index)
            info["stepped"] = True
            info["seconds"] = time.perf_counter() - began
        return info

    def _step_locked(self, samples: List[EvalSample],
                     batch_index: int) -> None:
        batch = pad_samples(samples, max_history=self.max_history)
        rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(batch_index,)))
        sample_negatives(batch, self.model.num_items, self.num_negatives,
                         rng)
        self.model.train()
        self.model.zero_grad()
        if self._causal:
            # Causal penalties drive parameters the online step freezes;
            # computing their gradients here would be pure waste.
            loss = self.model.training_loss(batch,
                                            include_causal_penalties=False)
        else:
            loss = self.model.training_loss(batch)
        loss.backward()
        self._optimizer.clip_grad_norm(self.clip_norm)
        self._optimizer.step()
        self.model._after_step()
        self._steps += 1

    # -- background thread -------------------------------------------------
    def start(self) -> None:
        """Run the pump loop on a daemon thread until :meth:`stop`."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            thread = threading.Thread(target=self._run,
                                      name="online-trainer", daemon=True)
            self._thread = thread
        thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            self.pump()
        self.pump()  # final drain of complete batches

    def stop(self) -> None:
        self._stop.set()
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join()

    # -- durability --------------------------------------------------------
    def save_state(self, path) -> None:
        """Persist shadow model + optimizer state + consumption cursor.

        Restoring (:meth:`restore_state`) and continuing is equivalent to
        never having stopped: moments, per-row steps, tails, the seen-user
        set, and the consumed offset all round-trip.
        """
        from ..io import save_model, save_optimizer_state
        state_dir = Path(path)
        state_dir.mkdir(parents=True, exist_ok=True)
        with self._lock:
            save_model(self.model, state_dir / "shadow.npz")
            if self._optimizer is not None:
                save_optimizer_state(self._optimizer,
                                     state_dir / "optimizer.npz")
            meta = {
                "consumed": self._consumed,
                "steps": self._steps,
                "batch_events": self.batch_events,
                "seed": self.seed,
                "seen": sorted(self._seen),
                "tails": [[user_id, [list(basket) for basket in tail]]
                          for user_id, tail in self._tails.items()],
            }
        (state_dir / "trainer.json").write_text(json.dumps(meta),
                                                encoding="utf-8")

    def restore_state(self, path) -> None:
        """Warm-restart from :meth:`save_state` output."""
        from ..io import load_model, load_optimizer_state
        state_dir = Path(path)
        meta = json.loads((state_dir / "trainer.json").read_text(
            encoding="utf-8"))
        if meta["batch_events"] != self.batch_events:
            raise ValueError(
                f"{state_dir}: saved batch_events={meta['batch_events']} "
                f"!= configured {self.batch_events}; offsets would shear")
        model = load_model(state_dir / "shadow.npz", mmap=False)
        with self._lock:
            self._adopt_locked(model)
            optimizer_path = state_dir / "optimizer.npz"
            if self._optimizer is not None and optimizer_path.exists():
                load_optimizer_state(self._optimizer, optimizer_path)
            self._consumed = int(meta["consumed"])
            self._steps = int(meta["steps"])
            self._seen = set(int(user) for user in meta["seen"])
            self._tails = OrderedDict()
            for user_id, baskets in meta["tails"]:
                tail: Deque[Basket] = deque(maxlen=self.max_history)
                tail.extend(tuple(int(i) for i in basket)
                            for basket in baskets)
                self._tails[int(user_id)] = tail
