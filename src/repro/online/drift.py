"""Offline-vs-online drift measurement.

Two complementary views of "how far has the online model moved":

* **Score divergence** — on a fixed probe set of evaluation samples,
  compare full-catalog scores between a baseline (the frozen offline
  checkpoint) and a candidate (the refreshed shadow): mean absolute
  score delta plus top-``z`` recommendation overlap.  Catches drift
  that matters for ranking even when individual weights barely moved.
* **Causal-graph edge churn** — compare two item-level causal matrices
  under the serving ε-gate: edges *added* (crossed ε upward), *dropped*
  (fell below ε), and *sign-flipped* (survived the gate on both sides
  but reversed direction).  Catches structural drift in the discovered
  behavior graph that scores alone can hide.

Both are exported to ``/metrics`` as gauges by the refresh controller,
so dashboards see drift per refresh generation in single- and
multi-process serving alike.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..data.interactions import EvalSample
from ..models.base import rank_top_z

__all__ = ["edge_churn", "score_divergence", "DriftReport"]


def edge_churn(previous: np.ndarray, current: np.ndarray,
               epsilon: float) -> Dict[str, int]:
    """Edge-set churn between two causal matrices under the ε-gate.

    An edge "exists" when ``|W_ij| > epsilon`` (the serving gate of
    eq. 10).  Returns counts of ``added``, ``dropped``, and ``flipped``
    (present on both sides with opposite sign) edges; ``kept`` counts
    surviving same-sign edges for rate computations.
    """
    previous = np.asarray(previous)
    current = np.asarray(current)
    if previous.shape != current.shape:
        raise ValueError(
            f"causal matrices disagree on shape: {previous.shape} vs "
            f"{current.shape}")
    before = np.abs(previous) > epsilon
    after = np.abs(current) > epsilon
    both = before & after
    flipped = both & (np.sign(previous) != np.sign(current))
    return {
        "added": int(np.count_nonzero(after & ~before)),
        "dropped": int(np.count_nonzero(before & ~after)),
        "flipped": int(np.count_nonzero(flipped)),
        "kept": int(np.count_nonzero(both & ~flipped)),
    }


def score_divergence(baseline, candidate,
                     probes: Sequence[EvalSample],
                     z: int = 10) -> Dict[str, float]:
    """Probe-set score drift between two recommenders.

    Returns ``mean_abs_delta`` (mean absolute per-item score difference)
    and ``topz_overlap`` (mean Jaccard-free overlap fraction of the two
    top-``z`` lists — 1.0 means recommendations are unchanged).
    """
    if not probes:
        raise ValueError("score_divergence needs a non-empty probe set")
    base_scores = baseline.score_samples(probes)
    cand_scores = candidate.score_samples(probes)
    mean_abs = float(np.mean(np.abs(base_scores - cand_scores)))
    base_top: List[List[int]] = rank_top_z(base_scores, z)
    cand_top: List[List[int]] = rank_top_z(cand_scores, z)
    overlaps = [len(set(a) & set(b)) / float(z)
                for a, b in zip(base_top, cand_top)]
    return {"mean_abs_delta": mean_abs,
            "topz_overlap": float(np.mean(overlaps))}


class DriftReport(dict):
    """Flat metric-name → value mapping from one refresh's drift pass.

    A dict subclass so callers can both iterate it into gauges and read
    named fields in tests (``report["online_edge_churn_added"]``).
    """

    @classmethod
    def build(cls, *, churn: Dict[str, int] = None,
              divergence: Dict[str, float] = None) -> "DriftReport":
        report = cls()
        if churn is not None:
            for kind in ("added", "dropped", "flipped", "kept"):
                report[f"online_edge_churn_{kind}"] = float(churn[kind])
        if divergence is not None:
            report["online_score_divergence"] = divergence["mean_abs_delta"]
            report["online_topz_overlap"] = divergence["topz_overlap"]
        return report
