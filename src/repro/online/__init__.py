"""repro.online — continual learning from the serving event stream.

Serving tees every ``/v1/events`` hit into an append-only
:class:`~repro.online.log.EventLog`; an
:class:`~repro.online.trainer.OnlineTrainer` folds the stream into a
shadow model with deterministic, exactly-once micro-batches; a
:class:`~repro.online.refresh.RefreshController` periodically
re-derives the frozen causal artifacts on a sliding window, measures
drift (:mod:`repro.online.drift`), and hot swaps the result into the
live registry.  ``python -m repro.online replay`` re-runs the trainer
offline from a log for bit-reproducible debugging.

See ``docs/ONLINE.md`` for the full architecture and determinism
contract.
"""

from .drift import DriftReport, edge_churn, score_divergence
from .log import EventLog, EventRecord
from .refresh import RefreshController, build_refresh_samples
from .trainer import ONLINE_PARAM_TOKENS, OnlineTrainer, select_online_params

__all__ = [
    "DriftReport",
    "edge_churn",
    "score_divergence",
    "EventLog",
    "EventRecord",
    "RefreshController",
    "build_refresh_samples",
    "ONLINE_PARAM_TOKENS",
    "OnlineTrainer",
    "select_online_params",
]
