"""Periodic re-derivation of frozen artifacts + atomic hot swap.

The online trainer (``trainer.py``) only moves embedding rows; the
expensive, slow-moving state — the causal graph Ŵ of Algorithm 1, its
ε-gate, the cluster assignments, the recurrent weights — is re-derived
here on a sliding window of the event log, then atomically published:

1. deep-copy the trainer's current shadow model,
2. warm-start Algorithm 1 on samples expanded from ``log.window(W)``
   (``fit_samples(..., warm_start=True, num_epochs=refresh_epochs)`` —
   multipliers, the seeded graph, and the h-stall tracker carry over),
3. measure drift (edge churn vs the previous gated graph, score
   divergence vs the frozen offline baseline on a probe set),
4. publish through the injected ``publish`` callable — the registry's
   generation-bumping ``install`` in one process, ``ServeCluster
   .install`` (which shared-memory-broadcasts via ``publish_artifacts``)
   with ``--workers N`` — and
5. hand the trainer a *fresh deep copy* to keep training.  Published
   artifacts alias the published model's arrays, so the model that went
   out must never be touched again.

Sessions survive the swap: ``SessionStore._sync`` lazily re-windows and
replays each session under the new generation on first touch, and the
registry's generation counter makes the swap atomic and monotone.
"""

from __future__ import annotations

import copy
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..data.interactions import EvalSample
from .drift import DriftReport, edge_churn, score_divergence
from .log import EventLog, EventRecord
from .trainer import OnlineTrainer

__all__ = ["RefreshController", "build_refresh_samples"]


def build_refresh_samples(records: Sequence[EventRecord],
                          max_history: int) -> List[EvalSample]:
    """Expand a log window into per-user sequential prefix samples.

    Walks records in offset order; each event with a non-empty prior
    tail becomes one ``(history, target)`` sample, exactly the
    construction the online trainer uses for its micro-batches.
    """
    tails: Dict[int, List] = {}
    samples: List[EvalSample] = []
    for record in records:
        if not record.basket:
            continue
        tail = tails.setdefault(record.user_id, [])
        if tail:
            samples.append(EvalSample(
                user_id=record.user_id,
                history=tuple(tail[-max_history:]),
                target=record.basket))
        tail.append(record.basket)
    return samples


class RefreshController:
    """Drive refresh cycles, drift measurement, and hot swaps.

    ``publish`` receives the refreshed model and must make it live
    (``registry.install`` / ``cluster.install`` / ``app.install_model``).
    ``baseline`` is the frozen offline model used for score-divergence
    probes; it is only ever read (``score_samples`` under ``no_grad``).
    """

    def __init__(self, trainer: OnlineTrainer, log: EventLog,
                 publish: Callable, *, window: int = 2048,
                 refresh_epochs: int = 1, min_samples: int = 8,
                 baseline=None, probes: Sequence[EvalSample] = (),
                 probe_z: int = 10, probe_limit: int = 64,
                 interval: Optional[float] = None,
                 metrics=None) -> None:
        if window < 1:
            raise ValueError("refresh window must be positive")
        self.trainer = trainer
        self.log = log
        self.publish = publish
        self.window = int(window)
        self.refresh_epochs = int(refresh_epochs)
        self.min_samples = max(1, int(min_samples))
        self.baseline = baseline
        self.probes = list(probes)
        self.probe_z = int(probe_z)
        self.probe_limit = int(probe_limit)
        self.interval = interval
        self.metrics = metrics
        self.generations = 0
        self.last_report: Optional[DriftReport] = None
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- one refresh cycle -------------------------------------------------
    def refresh_once(self) -> bool:
        """Run one re-derive → drift → publish → adopt cycle.

        Returns ``False`` (and publishes nothing) when the window holds
        too few trainable samples to re-derive from.
        """
        records = self.log.window(self.window)
        samples = build_refresh_samples(records, self.trainer.max_history)
        if len(samples) < self.min_samples:
            return False
        snapshot = self.trainer.snapshot_model()
        causal = hasattr(snapshot, "item_causal_matrix")
        previous_matrix = None
        if causal:
            previous_matrix = snapshot.item_causal_matrix().copy()
        began = time.perf_counter()
        if causal:
            snapshot.fit_samples(samples, warm_start=True,
                                 num_epochs=self.refresh_epochs)
        else:
            # Baselines have no warm-start hook; a refresh is a plain
            # (short, config-driven) re-fit on the window.
            snapshot.fit_samples(samples)
        elapsed = time.perf_counter() - began
        # With no explicit probe set, probe on a slice of the very window
        # we refreshed from — keeps the divergence gauges live in CLI
        # deployments that have no held-out data at serve time.
        probes = self.probes or samples[:self.probe_limit]
        report = self._measure_drift(snapshot, previous_matrix, probes)
        self.publish(snapshot)
        # The published model's arrays are now aliased by live serving
        # artifacts — the trainer continues on its own private copy.
        self.trainer.adopt_model(copy.deepcopy(snapshot))
        self.generations += 1
        self.last_report = report
        if self.metrics is not None:
            self.metrics.inc("online_refresh_total")
            self.metrics.observe("online_refresh_seconds", elapsed)
            for name, value in report.items():
                self.metrics.set_gauge(name, value)
        return True

    def _measure_drift(self, snapshot, previous_matrix,
                       probes: Sequence[EvalSample]) -> DriftReport:
        churn = None
        if previous_matrix is not None:
            churn = edge_churn(previous_matrix,
                               snapshot.item_causal_matrix(),
                               epsilon=float(snapshot.config.epsilon))
        divergence = None
        if self.baseline is not None and probes:
            divergence = score_divergence(self.baseline, snapshot,
                                          list(probes), z=self.probe_z)
        return DriftReport.build(churn=churn, divergence=divergence)

    # -- background thread -------------------------------------------------
    def start(self) -> None:
        """Refresh every ``interval`` seconds on a daemon thread."""
        if self.interval is None or self.interval <= 0:
            raise ValueError("start() needs a positive refresh interval")
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            thread = threading.Thread(target=self._run,
                                      name="online-refresh", daemon=True)
            self._thread = thread
        thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.refresh_once()

    def stop(self) -> None:
        self._stop.set()
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join()
