"""Append-only, replayable event log backing online learning.

``/v1/events`` tees every accepted event here (see ``ServeApp.event_sink``
/ ``ServeCluster.event_sink``); the online trainer and the refresh loop
consume it.  The log is the *only* coupling between serving and online
training: serving appends, training reads — so online training can be
replayed offline (``python -m repro.online replay``), restarted from any
offset, or disabled entirely without touching the request path.

Layout: a directory of ``events-<start>.jsonl`` segments, rotated every
``segment_records`` records.  One JSON object per line::

    {"o": 17, "u": 42, "b": [3, 9], "t": 1722000000.123}

``o`` is the global offset (dense, starting at 0), ``u`` the user id,
``b`` the basket, ``t`` a wall-clock timestamp.  The timestamp is
diagnostic only — readers return ``(offset, user, basket)`` records, so
replays are bit-reproducible regardless of when events were logged.

A bounded in-memory mirror (a deque of the most recent records) serves
``window()`` and recent ``read()`` calls without disk I/O; older ranges
fall back to scanning segments.  With ``path=None`` the log is
memory-only (tests, ephemeral serving) and ranges evicted from the
mirror are unrecoverable — ``read`` raises rather than silently
returning a gap.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from itertools import islice
from pathlib import Path
from typing import Deque, List, NamedTuple, Optional, Sequence, Tuple

__all__ = ["EventLog", "EventRecord"]

_SEGMENT_PREFIX = "events-"
_SEGMENT_SUFFIX = ".jsonl"


class EventRecord(NamedTuple):
    """One logged event: global offset, user, basket."""

    offset: int
    user_id: int
    basket: Tuple[int, ...]


def _segment_name(start_offset: int) -> str:
    return f"{_SEGMENT_PREFIX}{start_offset:012d}{_SEGMENT_SUFFIX}"


def _segment_start(path: Path) -> int:
    return int(path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])


def _parse_line(line: str) -> Optional[EventRecord]:
    line = line.strip()
    if not line:
        return None
    obj = json.loads(line)
    return EventRecord(offset=int(obj["o"]), user_id=int(obj["u"]),
                       basket=tuple(int(item) for item in obj["b"]))


class EventLog:
    """Thread-safe append-only event log with segment rotation.

    ``append`` is the serving tee's target (it matches the
    ``event_sink(user_id, basket)`` signature, ignoring the returned
    offset); ``read``/``window`` are the trainer/refresh read side.
    Reopening an existing directory recovers ``next_offset`` from the
    last segment and refills the mirror from the tail — appends resume
    exactly where the previous process stopped.
    """

    def __init__(self, path=None, segment_records: int = 4096,
                 mirror_capacity: int = 65536) -> None:
        if segment_records < 1:
            raise ValueError("segment_records must be positive")
        if mirror_capacity < 1:
            raise ValueError("mirror_capacity must be positive")
        self.path = None if path is None else Path(path)
        self.segment_records = int(segment_records)
        self._lock = threading.Lock()
        self._mirror: Deque[EventRecord] = deque(maxlen=int(mirror_capacity))
        self._next_offset = 0
        self._handle = None          # open file of the current segment
        self._segment_count = 0      # records written to the current segment
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
            with self._lock:
                self._recover_locked()

    # -- recovery (constructor only; the lock is not yet shared) ---------
    def _segments(self) -> List[Path]:
        if self.path is None:
            return []
        return sorted(
            (p for p in self.path.glob(
                f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")),
            key=_segment_start)

    def _recover_locked(self) -> None:
        segments = self._segments()
        if not segments:
            return
        tail: Deque[EventRecord] = deque(maxlen=self._mirror.maxlen)
        for segment in segments:
            with segment.open("r", encoding="utf-8") as handle:
                for line in handle:
                    record = _parse_line(line)
                    if record is not None:
                        tail.append(record)
        if tail:
            self._next_offset = tail[-1].offset + 1
            self._mirror.extend(tail)
        # Continue filling the last segment if it still has room.
        last = segments[-1]
        written = self._next_offset - _segment_start(last)
        if written < self.segment_records:
            self._handle = last.open("a", encoding="utf-8")
            self._segment_count = written

    # -- write side ------------------------------------------------------
    def append(self, user_id: int, basket: Sequence[int]) -> int:
        """Durably record one event; returns its global offset."""
        basket = tuple(int(item) for item in basket)
        with self._lock:
            offset = self._next_offset
            self._next_offset = offset + 1
            record = EventRecord(offset=offset, user_id=int(user_id),
                                 basket=basket)
            self._mirror.append(record)
            if self.path is not None:
                self._write_locked(record)
        return offset

    def _write_locked(self, record: EventRecord) -> None:
        if self._handle is None or self._segment_count >= self.segment_records:
            if self._handle is not None:
                self._handle.close()
            segment = self.path / _segment_name(record.offset)
            self._handle = segment.open("a", encoding="utf-8")
            self._segment_count = 0
        line = json.dumps({"o": record.offset, "u": record.user_id,
                           "b": list(record.basket),
                           "t": round(time.time(), 3)})
        self._handle.write(line + "\n")
        self._handle.flush()
        self._segment_count += 1

    # -- read side -------------------------------------------------------
    @property
    def next_offset(self) -> int:
        """Offset the next append will receive (== total events logged)."""
        with self._lock:
            return self._next_offset

    def __len__(self) -> int:
        return self.next_offset

    def read(self, start: int, stop: int) -> List[EventRecord]:
        """Records with ``start <= offset < stop``, in offset order.

        Served from the in-memory mirror when the range is recent enough,
        from disk segments otherwise.  Requesting a range that predates
        the mirror of a memory-only log raises ``ValueError`` (the data
        is gone); ``stop`` past the end is clamped, not an error.
        """
        if start < 0:
            raise ValueError("start offset must be non-negative")
        with self._lock:
            stop = min(stop, self._next_offset)
            if stop <= start:
                return []
            mirror_start = (self._mirror[0].offset if self._mirror
                            else self._next_offset)
            if start >= mirror_start:
                skip = start - mirror_start
                return list(islice(self._mirror, skip,
                                   skip + (stop - start)))
            if self.path is None:
                raise ValueError(
                    f"offsets [{start}, {mirror_start}) were evicted from "
                    f"the in-memory mirror of a memory-only event log")
        # Disk scan outside the lock: segments already written are
        # immutable except the live tail, and the tail range we need
        # ends at a snapshot of next_offset taken under the lock.
        return self._read_disk(start, stop)

    def _read_disk(self, start: int, stop: int) -> List[EventRecord]:
        out: List[EventRecord] = []
        for segment in self._segments():
            seg_start = _segment_start(segment)
            if seg_start >= stop:
                break
            if seg_start + self.segment_records <= start:
                continue
            with segment.open("r", encoding="utf-8") as handle:
                for line in handle:
                    record = _parse_line(line)
                    if record is None or record.offset < start:
                        continue
                    if record.offset >= stop:
                        break
                    out.append(record)
        return out

    def window(self, count: int) -> List[EventRecord]:
        """The most recent ``count`` records (fewer if the log is shorter)."""
        if count < 1:
            return []
        end = self.next_offset
        return self.read(max(0, end - count), end)

    def export_columnar(self, path, num_items: int, *,
                        shard_events: Optional[int] = 1_000_000,
                        meta: Optional[dict] = None):
        """Export the log as a columnar event log (``repro.data.eventlog``).

        Each ``append`` becomes one basket; a user's baskets keep their
        offset order, so the export is a deterministic function of the
        log contents.  Users are written in ascending id order (the
        writer's ordering contract) and empty baskets — which carry no
        training signal — are dropped.  Returns the opened
        :class:`~repro.data.eventlog.EventLogStore`, ready for
        ``.corpus()`` / streaming splits, so logged traffic can feed the
        same out-of-core training path as generated corpora.
        """
        from ..data.eventlog import EventLogWriter
        records = self.read(0, self.next_offset)
        baskets_by_user: dict = {}
        for record in records:
            if record.basket:
                baskets_by_user.setdefault(record.user_id,
                                           []).append(record.basket)
        if not baskets_by_user:
            raise ValueError("cannot export an event log with no "
                             "non-empty baskets")
        export_meta = {"generator": "online.EventLog.export_columnar",
                       "source_events": len(records)}
        export_meta.update(meta or {})
        with EventLogWriter(path, num_items=num_items,
                            shard_events=shard_events,
                            meta=export_meta) as writer:
            for user_id in sorted(baskets_by_user):
                writer.add_user(user_id, baskets_by_user[user_id])
        from ..data.eventlog import open_eventlog
        return open_eventlog(path)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
