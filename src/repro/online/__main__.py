"""Offline replay of an event log against a checkpoint.

``python -m repro.online replay --checkpoint C --event-log DIR`` rebuilds
the online trainer's shadow tables from the log alone — same micro-batch
boundaries, same per-batch negative-sampling streams — so the result is
bit-identical to what the live trainer computed while serving, at any
worker count.  The go-to tool for debugging an online run after the
fact: replay, save the shadow, diff against the live state.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys

from ..io import load_model, save_model
from .log import EventLog
from .trainer import OnlineTrainer


def fingerprint(model) -> str:
    """Order-stable SHA-256 over every parameter buffer."""
    digest = hashlib.sha256()
    for name, param in sorted(model.named_parameters()):
        digest.update(name.encode("utf-8"))
        digest.update(param.data.tobytes())
    return digest.hexdigest()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.online",
        description="offline tools for the online-learning subsystem")
    sub = parser.add_subparsers(dest="command", required=True)
    replay = sub.add_parser(
        "replay", help="re-run the online trainer over a logged stream")
    replay.add_argument("--checkpoint", required=True,
                        help="offline checkpoint the live run started from")
    replay.add_argument("--event-log", required=True,
                        help="event-log directory written by serving")
    replay.add_argument("--out", default=None,
                        help="save the replayed shadow model here (.npz)")
    replay.add_argument("--online-lr", type=float, default=0.01)
    replay.add_argument("--online-optimizer", default="adagrad")
    replay.add_argument("--online-batch-events", type=int, default=32)
    replay.add_argument("--online-negatives", type=int, default=4)
    replay.add_argument("--online-seed", type=int, default=0)
    replay.add_argument("--start-offset", type=int, default=0)
    return parser


def _run_replay(args: argparse.Namespace) -> int:
    model = load_model(args.checkpoint, mmap=False)
    log = EventLog(args.event_log)
    trainer = OnlineTrainer(
        model, log, lr=args.online_lr, optimizer=args.online_optimizer,
        batch_events=args.online_batch_events,
        num_negatives=args.online_negatives, seed=args.online_seed,
        start_offset=args.start_offset)
    batches = trainer.pump()
    log.close()
    if args.out:
        save_model(trainer.model, args.out)
    summary = {
        "events_logged": log.next_offset,
        "events_consumed": trainer.consumed_offset - args.start_offset,
        "batches_applied": batches,
        "steps": trainer.steps,
        "fingerprint": fingerprint(trainer.model),
        "saved": args.out,
    }
    print(json.dumps(summary, indent=2))
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "replay":
        return _run_replay(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
