"""repro — reproduction of "Sequential Recommendation with User Causal
Behavior Discovery" (Causer, ICDE 2023).

Subpackages
-----------
``repro.nn``
    From-scratch autograd/neural substrate (tensors, RNN cells, attention,
    optimizers) replacing the paper's PyTorch dependency.
``repro.causal``
    NOTEARS causal discovery: acyclicity constraint, linear solver,
    d-separation, Markov-equivalence and structure metrics.
``repro.data``
    Sequential-interaction corpora, the causal behaviour simulator that
    substitutes for the paper's five public datasets, batching and the
    derived explanation-label dataset.
``repro.models``
    The Table IV baselines (BPR, NCF, FPMC, GRU4Rec, NARM, STAMP, SASRec,
    VTRNN, MMSARec) on a unified interface.
``repro.core``
    The Causer model itself: differentiable item clustering, the
    cluster-level causal graph, eq. 10's causally-filtered scorer and the
    augmented-Lagrangian trainer.
``repro.eval``
    F1@Z / NDCG@Z ranking metrics, paired t-tests and the explanation
    evaluation protocol.
``repro.exp``
    One reproduction function per paper table/figure plus grid search.
``repro.analysis``
    Correctness tooling: the gradlint static-analysis suite
    (``python -m repro.analysis``) and the opt-in runtime gradient
    sanitizer (``detect_anomaly``).
"""

__version__ = "1.0.0"

from . import analysis, causal, core, data, eval, exp, models, nn

__all__ = ["nn", "causal", "data", "models", "core", "eval", "exp",
           "analysis", "__version__"]
