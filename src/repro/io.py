"""Model persistence: save/load trained models to a single ``.npz`` file.

The archive stores every named parameter plus a JSON header with the model
class, config dataclass fields and vocabulary sizes, so a model can be
restored for inference without retraining.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Union

import numpy as np

from .core import Causer, CauserConfig
from .models import (GRU4Rec, MMSARec, NARM, SASRec, STAMP, TrainConfig,
                     VTRNN)

PathLike = Union[str, pathlib.Path]

_MODEL_CLASSES = {
    "Causer": Causer,
    "GRU4Rec": GRU4Rec,
    "NARM": NARM,
    "STAMP": STAMP,
    "SASRec": SASRec,
    "VTRNN": VTRNN,
    "MMSARec": MMSARec,
}
_NEEDS_FEATURES = {"Causer", "VTRNN", "MMSARec"}


def save_model(model, path: PathLike) -> None:
    """Serialize a trained model (parameters + config) to ``path``.

    Supported classes: Causer and the neural sequential baselines.
    """
    class_name = type(model).__name__
    if class_name not in _MODEL_CLASSES:
        raise TypeError(f"cannot serialize {class_name}; supported: "
                        f"{sorted(_MODEL_CLASSES)}")
    header = {
        "class": class_name,
        "num_users": model.num_users,
        "num_items": model.num_items,
        "config": dataclasses.asdict(model.config),
    }
    arrays = {f"param::{name}": values
              for name, values in model.state_dict().items()}
    if class_name == "Causer":
        arrays["features"] = model.clusters.raw_features
    elif class_name in _NEEDS_FEATURES:
        arrays["features"] = model.item_features
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(str(path), **arrays)


def load_model(path: PathLike):
    """Restore a model saved with :func:`save_model`."""
    with np.load(str(path)) as archive:
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
        class_name = header["class"]
        if class_name not in _MODEL_CLASSES:
            raise TypeError(f"unknown model class in archive: {class_name}")
        config_cls = CauserConfig if class_name == "Causer" else TrainConfig
        config_fields = {f.name for f in dataclasses.fields(config_cls)}
        config = config_cls(**{k: v for k, v in header["config"].items()
                               if k in config_fields})
        cls = _MODEL_CLASSES[class_name]
        if class_name in _NEEDS_FEATURES:
            model = cls(header["num_users"], header["num_items"],
                        archive["features"], config)
        else:
            model = cls(header["num_users"], header["num_items"], config)
        state = {key[len("param::"):]: archive[key]
                 for key in archive.files if key.startswith("param::")}
        model.load_state_dict(state)
    model.eval()
    return model
