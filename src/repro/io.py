"""Model persistence: save/load trained models to a single ``.npz`` file.

The archive stores every named parameter plus a JSON header with the model
class, a format version, config dataclass fields, vocabulary sizes and any
extra constructor arguments, so a model can be restored for inference
without retraining.  Every class in :mod:`repro.models` (and the Causer
core) is registered here; the serving registry
(:mod:`repro.serve.registry`) loads checkpoints through this module.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Callable, Dict, Union

import numpy as np

from .core import Causer, CauserConfig
from .models import (BERT4Rec, BPR, FPMC, GRU4Rec, HRNN, MMSARec, NARM, NCF,
                     SASRec, STAMP, TrainConfig, VTRNN)

PathLike = Union[str, pathlib.Path]

#: Bumped whenever the archive layout changes incompatibly.  Version 1
#: introduced the explicit header field; unversioned archives predate it.
FORMAT_VERSION = 1

_MODEL_CLASSES = {
    "Causer": Causer,
    "BERT4Rec": BERT4Rec,
    "BPR": BPR,
    "FPMC": FPMC,
    "GRU4Rec": GRU4Rec,
    "HRNN": HRNN,
    "MMSARec": MMSARec,
    "NARM": NARM,
    "NCF": NCF,
    "SASRec": SASRec,
    "STAMP": STAMP,
    "VTRNN": VTRNN,
}
_NEEDS_FEATURES = {"Causer", "VTRNN", "MMSARec"}

#: Constructor arguments beyond (num_users, num_items[, features], config)
#: that shape the parameter tree and therefore must round-trip.
_EXTRA_KWARGS: Dict[str, Callable[[object], Dict[str, object]]] = {
    "BERT4Rec": lambda m: {"num_blocks": len(m.blocks),
                           "num_heads": m.blocks[0].attn.num_heads},
    "SASRec": lambda m: {"num_blocks": len(m.blocks),
                         "num_heads": m.blocks[0].attn.num_heads},
    "MMSARec": lambda m: {"num_blocks": len(m.blocks),
                          "num_heads": m.blocks[0].attn.num_heads},
    "HRNN": lambda m: {"session_length": m.session_length},
}


def registered_model_classes() -> Dict[str, type]:
    """Copy of the class registry (name -> class)."""
    return dict(_MODEL_CLASSES)


def save_model(model, path: PathLike) -> None:
    """Serialize a trained model (parameters + config) to ``path``.

    Supported classes: Causer and every baseline in :mod:`repro.models`.
    """
    class_name = type(model).__name__
    if class_name not in _MODEL_CLASSES:
        raise TypeError(f"cannot serialize {class_name}; supported: "
                        f"{sorted(_MODEL_CLASSES)}")
    header = {
        "class": class_name,
        "format_version": FORMAT_VERSION,
        "num_users": model.num_users,
        "num_items": model.num_items,
        "config": dataclasses.asdict(model.config),
        "extra": _EXTRA_KWARGS.get(class_name, lambda m: {})(model),
    }
    arrays = {f"param::{name}": values
              for name, values in model.state_dict().items()}
    if class_name == "Causer":
        arrays["features"] = model.clusters.raw_features
    elif class_name in _NEEDS_FEATURES:
        arrays["features"] = model.item_features
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(str(path), **arrays)


def load_model(path: PathLike):
    """Restore a model saved with :func:`save_model`.

    Raises :class:`ValueError` (naming the file) when the archive declares
    an unknown model class or a format version this build cannot read.
    """
    with np.load(str(path)) as archive:
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
        version = header.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported checkpoint format_version {version!r} "
                f"(this build reads version {FORMAT_VERSION}); re-save the "
                f"model with the current repro.io.save_model")
        class_name = header["class"]
        if class_name not in _MODEL_CLASSES:
            raise ValueError(
                f"{path}: unknown model class {class_name!r} in archive "
                f"header; registered classes: {sorted(_MODEL_CLASSES)}")
        config_cls = CauserConfig if class_name == "Causer" else TrainConfig
        config_fields = {f.name for f in dataclasses.fields(config_cls)}
        config = config_cls(**{k: v for k, v in header["config"].items()
                               if k in config_fields})
        cls = _MODEL_CLASSES[class_name]
        extra = header.get("extra", {})
        if class_name in _NEEDS_FEATURES:
            model = cls(header["num_users"], header["num_items"],
                        archive["features"], config, **extra)
        else:
            model = cls(header["num_users"], header["num_items"], config,
                        **extra)
        state = {key[len("param::"):]: archive[key]
                 for key in archive.files if key.startswith("param::")}
        model.load_state_dict(state)
    model.eval()
    return model
