"""Model persistence: save/load trained models.

Two on-disk formats share one JSON header (model class, format version,
config dataclass fields, vocabulary sizes, extra constructor arguments):

* ``.npz`` (default) — a single compressed archive.  Loading streams one
  parameter at a time and *adopts* each decompressed array
  (``load_state_dict(assign=True)``), so cold-start peak RSS is one
  model plus one parameter, not the historical ~2× artifact size.
  zip-compressed members cannot be mmapped (numpy silently ignores
  ``mmap_mode`` for npz), which is why the second format exists.
* **directory** (``save_model(..., format="dir")``) — ``header.json``
  plus one raw ``.npy`` per parameter.  Loading maps every parameter
  with ``np.load(mmap_mode="r")``: pages fault in on first touch and
  stay evictable, so a serving coordinator's cold start touches only
  the tables it actually reads.

Every class in :mod:`repro.models` (and the Causer core) is registered
here; the serving registry (:mod:`repro.serve.registry`) loads
checkpoints through this module.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Callable, Dict, Iterator, Mapping, Union

import numpy as np

from .core import Causer, CauserConfig
from .models import (BERT4Rec, BPR, FPMC, GRU4Rec, HRNN, MMSARec, NARM, NCF,
                     SASRec, STAMP, TrainConfig, VTRNN)

PathLike = Union[str, pathlib.Path]

#: Bumped whenever the archive layout changes incompatibly.  Version 1
#: introduced the explicit header field; unversioned archives predate it.
FORMAT_VERSION = 1

_MODEL_CLASSES = {
    "Causer": Causer,
    "BERT4Rec": BERT4Rec,
    "BPR": BPR,
    "FPMC": FPMC,
    "GRU4Rec": GRU4Rec,
    "HRNN": HRNN,
    "MMSARec": MMSARec,
    "NARM": NARM,
    "NCF": NCF,
    "SASRec": SASRec,
    "STAMP": STAMP,
    "VTRNN": VTRNN,
}
_NEEDS_FEATURES = {"Causer", "VTRNN", "MMSARec"}

#: Constructor arguments beyond (num_users, num_items[, features], config)
#: that shape the parameter tree and therefore must round-trip.
_EXTRA_KWARGS: Dict[str, Callable[[object], Dict[str, object]]] = {
    "BERT4Rec": lambda m: {"num_blocks": len(m.blocks),
                           "num_heads": m.blocks[0].attn.num_heads},
    "SASRec": lambda m: {"num_blocks": len(m.blocks),
                         "num_heads": m.blocks[0].attn.num_heads},
    "MMSARec": lambda m: {"num_blocks": len(m.blocks),
                          "num_heads": m.blocks[0].attn.num_heads},
    "HRNN": lambda m: {"session_length": m.session_length},
}


def registered_model_classes() -> Dict[str, type]:
    """Copy of the class registry (name -> class)."""
    return dict(_MODEL_CLASSES)


def _model_header(model) -> Dict[str, object]:
    class_name = type(model).__name__
    if class_name not in _MODEL_CLASSES:
        raise TypeError(f"cannot serialize {class_name}; supported: "
                        f"{sorted(_MODEL_CLASSES)}")
    return {
        "class": class_name,
        "format_version": FORMAT_VERSION,
        "num_users": model.num_users,
        "num_items": model.num_items,
        "config": dataclasses.asdict(model.config),
        "extra": _EXTRA_KWARGS.get(class_name, lambda m: {})(model),
    }


def _model_features(model):
    class_name = type(model).__name__
    if class_name == "Causer":
        return model.clusters.raw_features
    if class_name in _NEEDS_FEATURES:
        return model.item_features
    return None


def save_model(model, path: PathLike, format: str = "npz") -> None:
    """Serialize a trained model (parameters + config) to ``path``.

    ``format="npz"`` writes the single-file compressed archive;
    ``format="dir"`` writes a directory of raw ``.npy`` files that
    :func:`load_model` can map with ``mmap_mode="r"`` (low cold-start
    RSS).  Supported classes: Causer and every baseline in
    :mod:`repro.models`.
    """
    if format not in ("npz", "dir"):
        raise ValueError(f"format must be 'npz' or 'dir', got {format!r}")
    header = _model_header(model)
    features = _model_features(model)
    if format == "dir":
        root = pathlib.Path(path)
        (root / "params").mkdir(parents=True, exist_ok=True)
        header["format"] = "dir"
        header["params"] = sorted(name for name, _
                                  in model.named_parameters())
        with open(root / "header.json", "w", encoding="utf-8") as fh:
            json.dump(header, fh, indent=1)
        if features is not None:
            np.save(root / "features.npy", features)
        for name, param in model.named_parameters():
            np.save(root / "params" / f"{name}.npy", param.data)
        return
    arrays = {f"param::{name}": values
              for name, values in model.state_dict().items()}
    if features is not None:
        arrays["features"] = features
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(str(path), **arrays)


class _NpzState(Mapping):
    """Lazy parameter mapping over an open npz archive.

    ``load_state_dict`` pulls one value at a time, so only a single
    decompressed parameter is ever in flight (the archive members are
    decompressed on ``__getitem__``, not up front).
    """

    def __init__(self, archive, prefix: str = "param::") -> None:
        self._archive = archive
        self._prefix = prefix
        self._names = [key[len(prefix):] for key in archive.files
                       if key.startswith(prefix)]

    def __getitem__(self, name: str) -> np.ndarray:
        return self._archive[self._prefix + name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)


class _DirState(Mapping):
    """Parameter mapping over a directory checkpoint, one mmap per file."""

    def __init__(self, root: pathlib.Path, names, mmap: bool) -> None:
        self._root = root
        self._names = list(names)
        self._mmap_mode = "r" if mmap else None

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._names:
            raise KeyError(name)
        return np.load(self._root / "params" / f"{name}.npy",
                       mmap_mode=self._mmap_mode)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)


def _check_header(path: PathLike, header: Dict[str, object]):
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported checkpoint format_version {version!r} "
            f"(this build reads version {FORMAT_VERSION}); re-save the "
            f"model with the current repro.io.save_model")
    class_name = header["class"]
    if class_name not in _MODEL_CLASSES:
        raise ValueError(
            f"{path}: unknown model class {class_name!r} in archive "
            f"header; registered classes: {sorted(_MODEL_CLASSES)}")
    config_cls = CauserConfig if class_name == "Causer" else TrainConfig
    config_fields = {f.name for f in dataclasses.fields(config_cls)}
    config = config_cls(**{k: v for k, v in header["config"].items()
                           if k in config_fields})
    return _MODEL_CLASSES[class_name], class_name, config


def _construct(cls, class_name: str, header, config, features):
    extra = header.get("extra", {})
    if class_name in _NEEDS_FEATURES:
        return cls(header["num_users"], header["num_items"], features,
                   config, **extra)
    return cls(header["num_users"], header["num_items"], config, **extra)


# ----------------------------------------------------------------------
# Generic versioned JSON headers (shared by on-disk stores outside model
# checkpoints, e.g. the columnar event log in ``repro.data.eventlog``).
# ----------------------------------------------------------------------
def write_json_header(path: PathLike, format_name: str, version: int,
                      payload: Mapping) -> None:
    """Write ``header.json``-style metadata with format name + version.

    The ``format``/``format_version`` keys come first so a truncated or
    hand-inspected header still identifies itself; ``payload`` keys must
    not collide with them.
    """
    header = {"format": format_name, "format_version": int(version)}
    for key in payload:
        if key in header:
            raise ValueError(f"payload key {key!r} collides with the "
                             f"reserved header fields")
    header.update(payload)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(header, fh, indent=1, sort_keys=False)


def read_json_header(path: PathLike, format_name: str,
                     version: int) -> Dict[str, object]:
    """Read and validate a header written by :func:`write_json_header`.

    Raises :class:`ValueError` (naming the file) when the format name or
    version does not match — the same contract model checkpoints follow,
    so stale on-disk stores fail loudly instead of being misparsed.
    """
    with open(path, "r", encoding="utf-8") as fh:
        header = json.load(fh)
    found = header.get("format")
    if found != format_name:
        raise ValueError(f"{path}: expected format {format_name!r}, "
                         f"found {found!r}")
    found_version = header.get("format_version")
    if found_version != version:
        raise ValueError(
            f"{path}: unsupported {format_name} format_version "
            f"{found_version!r} (this build reads version {version})")
    return header


#: Bumped whenever the optimizer-state archive layout changes.
OPTIMIZER_STATE_VERSION = 1

#: Per-optimizer state tables (``Dict[int, ndarray]`` keyed by the stable
#: parameter index) that must survive a restart.  ``_row_steps`` carries
#: Adam's per-row last-touch steps — without it a warm restart would
#: re-apply moment-decay catch-up from step 0 and diverge from the
#: uninterrupted trajectory.
_OPTIMIZER_STATE_SLOTS = ("_velocity", "_m", "_v", "_row_steps", "_accum")


def save_optimizer_state(optimizer, path: PathLike) -> None:
    """Serialize an optimizer's state tables (moments, accumulators,
    per-row last-touch steps, global step) to a ``.npz`` archive.

    Together with :func:`save_model` this lets a training loop — the
    online shadow trainer in particular — restart *warm*: reloading both
    archives and continuing produces the same update a never-interrupted
    run would have applied (bit-identical for the lazy sparse paths,
    whose state is exactly these tables plus the step counter).
    """
    header = {
        "format_version": OPTIMIZER_STATE_VERSION,
        "optimizer": type(optimizer).__name__,
        "lr": float(optimizer.lr),
        "num_params": len(optimizer.params),
        "step": int(getattr(optimizer, "_t", 0)),
    }
    arrays: Dict[str, np.ndarray] = {}
    for slot in _OPTIMIZER_STATE_SLOTS:
        table = getattr(optimizer, slot, None)
        if not table:
            continue
        for index, value in table.items():
            arrays[f"state::{slot}::{index}"] = value
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(str(path), **arrays)


def load_optimizer_state(optimizer, path: PathLike):
    """Restore state written by :func:`save_optimizer_state` in place.

    The optimizer must already be constructed over the *same parameter
    list* (same order, same shapes) it was saved with — state is keyed by
    the stable parameter index.  Raises :class:`ValueError` (naming the
    file) on version, class, or parameter-count mismatch.
    """
    with np.load(str(path)) as archive:
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
        version = header.get("format_version")
        if version != OPTIMIZER_STATE_VERSION:
            raise ValueError(
                f"{path}: unsupported optimizer-state format_version "
                f"{version!r} (this build reads version "
                f"{OPTIMIZER_STATE_VERSION})")
        saved_class = header.get("optimizer")
        if saved_class != type(optimizer).__name__:
            raise ValueError(
                f"{path}: optimizer state was saved from {saved_class!r} "
                f"but is being loaded into {type(optimizer).__name__}")
        if header.get("num_params") != len(optimizer.params):
            raise ValueError(
                f"{path}: optimizer state covers "
                f"{header.get('num_params')} parameters, the target "
                f"optimizer holds {len(optimizer.params)}")
        if hasattr(optimizer, "_t"):
            optimizer._t = int(header.get("step", 0))
        for slot in _OPTIMIZER_STATE_SLOTS:
            table = getattr(optimizer, slot, None)
            if table is not None:
                table.clear()
        for key in archive.files:
            if not key.startswith("state::"):
                continue
            _, slot, index = key.split("::")
            table = getattr(optimizer, slot, None)
            if table is None:
                raise ValueError(
                    f"{path}: state slot {slot!r} does not exist on "
                    f"{type(optimizer).__name__}")
            value = archive[key]
            row = int(index)
            if row >= len(optimizer.params):
                raise ValueError(f"{path}: state entry {key!r} indexes "
                                 f"past the parameter list")
            table[row] = value
    return optimizer


def load_model(path: PathLike, mmap: bool = True):
    """Restore a model saved with :func:`save_model`.

    Directory checkpoints map their parameters read-only
    (``mmap_mode="r"``) unless ``mmap=False`` — pass that when the
    loaded model will be trained further (in-place optimizer updates
    need writable buffers).  npz checkpoints stream one decompressed
    parameter at a time; both paths adopt arrays without copying.

    Raises :class:`ValueError` (naming the file) when the archive
    declares an unknown model class or an unreadable format version.
    """
    root = pathlib.Path(path)
    if root.is_dir():
        with open(root / "header.json", "r", encoding="utf-8") as fh:
            header = json.load(fh)
        cls, class_name, config = _check_header(path, header)
        features = None
        if class_name in _NEEDS_FEATURES:
            features = np.load(root / "features.npy")
        model = _construct(cls, class_name, header, config, features)
        model.load_state_dict(_DirState(root, header["params"], mmap),
                              assign=True)
    else:
        with np.load(str(path)) as archive:
            header = json.loads(bytes(archive["header"]).decode("utf-8"))
            cls, class_name, config = _check_header(path, header)
            features = (archive["features"]
                        if class_name in _NEEDS_FEATURES else None)
            model = _construct(cls, class_name, header, config, features)
            model.load_state_dict(_NpzState(archive), assign=True)
    model.eval()
    return model
