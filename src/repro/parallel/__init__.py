"""`repro.parallel` — deterministic multi-process execution layer.

A dependency-free (stdlib ``multiprocessing`` + numpy) process pool with
per-task deterministic seeding, BLAS thread pinning, bounded timeouts with
retry, structured failure capture and an automatic serial fallback —
plus adapters that wire the repo's embarrassingly-parallel outer loops
(Table IV lineup, Table III grid search, sharded evaluation, multi-seed
significance runs) through it.  See ``docs/PARALLEL.md``.
"""

from .adapters import (evaluate_model_sharded, grid_scores_parallel,
                       map_seeds, run_models_parallel, run_table_cells,
                       shard_batch_ranges)
from .pool import (BLAS_ENV_VARS, DEFAULT_WORKER_CAP, ProcessMap, TaskResult,
                   WorkerError, available_cpus, default_context,
                   default_workers, process_map, resolve_workers,
                   task_seed_sequence, unwrap)

__all__ = [
    "BLAS_ENV_VARS", "DEFAULT_WORKER_CAP", "ProcessMap", "TaskResult",
    "WorkerError", "available_cpus", "default_context", "default_workers",
    "evaluate_model_sharded", "grid_scores_parallel", "map_seeds",
    "process_map", "resolve_workers", "run_models_parallel",
    "run_table_cells", "shard_batch_ranges", "task_seed_sequence", "unwrap",
]
