"""Deterministic multi-process task pool (the `repro.parallel` core).

:class:`ProcessMap` fans a list of pickle-able task *specs* out to worker
processes and returns one :class:`TaskResult` per spec, in spec order.  It
is designed around four contracts the rest of the repo relies on:

* **Determinism** — when a ``seed`` is supplied, task ``i`` receives
  ``numpy.random.SeedSequence(seed, spawn_key=(i,))``.  The derivation
  depends only on the run seed and the task *index*, never on worker
  count or scheduling order, so ``workers=1`` and ``workers=8`` produce
  bit-identical per-task results.
* **Spawn safety** — tasks are ``(module-level function, picklable spec)``
  pairs, not closures.  Everything crossing the process boundary is pickled
  explicitly up front, so an unpicklable spec fails fast in the parent
  with a clear error instead of hanging a queue feeder thread.
* **Isolation of failures** — a task that raises returns a
  :class:`TaskResult` carrying the formatted traceback; a task that blows
  past ``timeout`` gets its worker killed and is retried once (then
  recorded as a timeout failure).  One bad task never kills the run.
* **Serial fallback** — ``workers<=1``, a single task, or running inside
  an already-parallel region (daemonic worker processes cannot fork) all
  degrade to an in-process loop with the *same* seed derivation and the
  same structured failure capture, so call sites behave identically on
  one core.  Timeouts are not enforced on the serial path.

Workers pin BLAS/OpenMP thread counts to 1 (``OMP_NUM_THREADS`` etc.) so
``N`` processes do not oversubscribe the machine with ``N x T`` BLAS
threads.  The pin is applied to the parent environment while workers
start (inherited by spawn/forkserver children at exec time) and re-applied
inside each worker for libraries loaded later.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BLAS_ENV_VARS", "DEFAULT_WORKER_CAP", "ProcessMap", "TaskResult",
    "WorkerError", "available_cpus", "default_context", "default_workers",
    "process_map", "resolve_workers", "task_seed_sequence", "unwrap",
]

#: Upper bound applied by :func:`default_workers` — fanning out wider than
#: this rarely helps the workloads in this repo and hurts shared machines.
DEFAULT_WORKER_CAP = 8

#: Thread-count knobs honoured by the BLAS/OpenMP stacks numpy may load.
BLAS_ENV_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                 "MKL_NUM_THREADS", "VECLIB_MAXIMUM_THREADS",
                 "NUMEXPR_NUM_THREADS")

#: Seconds between parent scheduling passes (deadline checks, liveness).
_POLL_SECONDS = 0.05


def available_cpus() -> int:
    """CPUs usable by this process (affinity/cgroup aware where possible)."""
    counter = getattr(os, "process_cpu_count", None)
    if counter is not None:
        count = counter()
        if count:
            return int(count)
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:
            pass
    return max(1, os.cpu_count() or 1)


def default_workers(cap: int = DEFAULT_WORKER_CAP) -> int:
    """CPU-count-aware default worker count, capped at ``cap``."""
    return max(1, min(int(cap), available_cpus()))


def in_parallel_region() -> bool:
    """True inside a daemonic worker process (which cannot fork children)."""
    return bool(mp.current_process().daemon)


def resolve_workers(workers: Optional[int], num_tasks: int) -> int:
    """Effective worker count for ``num_tasks`` tasks.

    ``None`` means :func:`default_workers`; ``0``/``1`` force serial; the
    result is clamped to the task count; nested parallel regions always
    resolve to 1 (the serial fallback).
    """
    if num_tasks <= 1:
        return 1
    if workers is None:
        workers = default_workers()
    workers = int(workers)
    if workers <= 1:
        return 1
    if in_parallel_region():
        return 1
    return min(workers, num_tasks)


def default_context() -> str:
    """Preferred multiprocessing start method for this platform.

    ``fork`` where available (cheap startup, no re-import); ``spawn``
    elsewhere.  Every code path stays spawn-safe regardless — specs are
    pickled either way — so callers may force ``context="spawn"``.
    """
    if "fork" in mp.get_all_start_methods():
        return "fork"
    return "spawn"


def task_seed_sequence(run_seed: int, index: int) -> np.random.SeedSequence:
    """The per-task seed contract: depends on (run seed, task index) only.

    Identical to ``SeedSequence(run_seed).spawn(n)[index]`` without
    materialising ``n`` children, and — critically — independent of worker
    count and scheduling order.
    """
    return np.random.SeedSequence(run_seed, spawn_key=(index,))


@dataclass
class TaskResult:
    """Outcome of one task: a value or a captured failure, never both."""

    index: int
    ok: bool
    value: Any = None
    error: Optional[str] = None      # formatted traceback / failure reason
    seconds: float = 0.0
    attempts: int = 1
    timed_out: bool = False
    worker: str = "serial"


class WorkerError(RuntimeError):
    """Raised by :func:`unwrap` for the first failed task in a run."""

    def __init__(self, result: TaskResult, context: str = "parallel task"):
        self.result = result
        super().__init__(
            f"{context} #{result.index} failed after {result.attempts} "
            f"attempt(s){' (timeout)' if result.timed_out else ''}:\n"
            f"{result.error}")


def unwrap(results: Sequence[TaskResult],
           context: str = "parallel task") -> List[Any]:
    """Values in task order; raises :class:`WorkerError` on any failure."""
    for result in results:
        if not result.ok:
            raise WorkerError(result, context=context)
    return [result.value for result in results]


def _pin_blas_environ(environ: Optional[Dict[str, str]] = None) -> None:
    """Set single-threaded BLAS knobs in ``environ`` (default: os.environ)."""
    target = os.environ if environ is None else environ
    for var in BLAS_ENV_VARS:
        target[var] = "1"


@contextmanager
def _pinned_parent_env(enabled: bool) -> Iterator[None]:
    """Temporarily pin BLAS vars in the parent while workers start.

    spawn/forkserver children inherit ``os.environ`` at exec time, which is
    the only reliable moment to cap BLAS pools (the libraries size their
    thread pools at import).  The parent's own values are restored after
    startup so the caller's environment is untouched.
    """
    if not enabled:
        yield
        return
    saved = {var: os.environ.get(var) for var in BLAS_ENV_VARS}
    _pin_blas_environ()
    try:
        yield
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


def _run_payload(blob: bytes) -> Tuple[bool, bytes, float]:
    """Execute one pickled ``(fn, spec, seed_seq)`` task; never raises.

    The result value is pickled *here* so an unpicklable return value is
    reported as a structured task failure instead of crashing the result
    queue's feeder thread (which would hang the parent).
    """
    start = time.perf_counter()
    try:
        fn, spec, seed_seq = pickle.loads(blob)
        value = fn(spec) if seed_seq is None else fn(spec, seed_seq)
        payload = pickle.dumps(value)
        ok = True
    except Exception:
        payload = traceback.format_exc().encode("utf-8")
        ok = False
    return ok, payload, time.perf_counter() - start


def _worker_main(worker_id: int, task_queue: Any, result_queue: Any,
                 pin_blas: bool) -> None:
    """Worker loop: pull (index, attempt, blob) tasks until ``None``."""
    if pin_blas:
        _pin_blas_environ()
    while True:
        item = task_queue.get()
        if item is None:
            return
        index, attempt, blob = item
        ok, payload, seconds = _run_payload(blob)
        result_queue.put((worker_id, index, attempt, ok, payload, seconds))


class _WorkerHandle:
    """A live worker process plus its private task queue and current task."""

    def __init__(self, ctx, worker_id: int, result_queue, pin_blas: bool):
        self.worker_id = worker_id
        self.task_queue = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main, name=f"repro-parallel-{worker_id}",
            args=(worker_id, self.task_queue, result_queue, pin_blas),
            daemon=True)
        self.process.start()
        #: (task index, attempt, absolute deadline or None) while busy.
        self.current: Optional[Tuple[int, int, Optional[float]]] = None

    def assign(self, index: int, attempt: int, blob: bytes,
               timeout: Optional[float]) -> None:
        deadline = (time.monotonic() + timeout) if timeout else None
        self.current = (index, attempt, deadline)
        self.task_queue.put((index, attempt, blob))

    def expired(self, now: float) -> bool:
        return (self.current is not None and self.current[2] is not None
                and now > self.current[2])

    def stop(self) -> None:
        if self.process.is_alive():
            try:
                self.task_queue.put(None)
            except (OSError, ValueError):
                pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
        # The worker may have died without consuming the sentinel; never
        # let the queue's feeder thread block interpreter exit on it.
        self.task_queue.cancel_join_thread()
        self.task_queue.close()

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=1.0)
        # A killed worker leaves its queued task undelivered; drop it
        # rather than joining a feeder thread that can never drain.
        self.task_queue.cancel_join_thread()
        self.task_queue.close()


class ProcessMap:
    """Map a picklable function over picklable specs across processes.

    Parameters
    ----------
    workers:
        ``None`` → :func:`default_workers`; ``0``/``1`` → serial fallback.
    seed:
        When given, ``fn`` is called as ``fn(spec, seed_seq)`` with the
        per-task :func:`task_seed_sequence`; otherwise ``fn(spec)``.
    timeout:
        Per-attempt wall-clock budget in seconds.  An expired task's worker
        is killed and the task retried (``retries`` times total) before it
        is recorded as a timeout failure.  Not enforced on the serial path.
    retries:
        Extra attempts granted to a failing/timing-out task (default 1 —
        the "retry once" contract).  Exceptions on the serial path are
        never retried: re-running identical code in the same process is
        deterministic.
    context:
        multiprocessing start method (``"fork"``/``"spawn"``/
        ``"forkserver"``); ``None`` → :func:`default_context`.
    pin_blas:
        Pin BLAS/OpenMP thread counts to 1 in workers (see module docs).
    """

    def __init__(self, workers: Optional[int] = None, *,
                 seed: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 context: Optional[str] = None,
                 pin_blas: bool = True) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.workers = workers
        self.seed = seed
        self.timeout = timeout
        self.retries = retries
        self.context = context
        self.pin_blas = pin_blas

    # -- public API -------------------------------------------------------
    def map(self, fn: Callable[..., Any],
            specs: Sequence[Any]) -> List[TaskResult]:
        """Run ``fn`` over ``specs``; one ordered :class:`TaskResult` each."""
        specs = list(specs)
        if not specs:
            return []
        blobs = self._pickle_tasks(fn, specs)
        workers = resolve_workers(self.workers, len(specs))
        if workers <= 1:
            return self._map_serial(fn, specs)
        return self._map_parallel(blobs, workers)

    # -- task preparation -------------------------------------------------
    def _seed_for(self, index: int) -> Optional[np.random.SeedSequence]:
        if self.seed is None:
            return None
        return task_seed_sequence(self.seed, index)

    def _pickle_tasks(self, fn: Callable[..., Any],
                      specs: Sequence[Any]) -> List[bytes]:
        blobs = []
        for index, spec in enumerate(specs):
            try:
                blobs.append(pickle.dumps((fn, spec, self._seed_for(index))))
            except Exception as exc:
                raise TypeError(
                    f"task #{index} is not picklable and cannot cross the "
                    f"process boundary (fn={getattr(fn, '__name__', fn)!r}, "
                    f"spec type={type(spec).__name__}): {exc}") from exc
        return blobs

    # -- serial fallback --------------------------------------------------
    def _map_serial(self, fn: Callable[..., Any],
                    specs: Sequence[Any]) -> List[TaskResult]:
        results = []
        for index, spec in enumerate(specs):
            seed_seq = self._seed_for(index)
            start = time.perf_counter()
            try:
                value = fn(spec) if seed_seq is None else fn(spec, seed_seq)
                results.append(TaskResult(
                    index=index, ok=True, value=value,
                    seconds=time.perf_counter() - start))
            except Exception:
                results.append(TaskResult(
                    index=index, ok=False, error=traceback.format_exc(),
                    seconds=time.perf_counter() - start))
        return results

    # -- parallel path ----------------------------------------------------
    def _map_parallel(self, blobs: List[bytes],
                      workers: int) -> List[TaskResult]:
        ctx = mp.get_context(self.context or default_context())
        result_queue = ctx.Queue()
        handles: Dict[int, _WorkerHandle] = {}
        next_worker_id = 0
        with _pinned_parent_env(self.pin_blas):
            for _ in range(workers):
                handles[next_worker_id] = _WorkerHandle(
                    ctx, next_worker_id, result_queue, self.pin_blas)
                next_worker_id += 1
        pending: List[Tuple[int, int]] = [(i, 1) for i in range(len(blobs))]
        pending.reverse()  # pop() from the tail keeps submission in order
        results: Dict[int, TaskResult] = {}
        try:
            while len(results) < len(blobs):
                self._assign_pending(handles, pending, blobs)
                self._drain_results(handles, result_queue, pending, results)
                next_worker_id = self._reap_expired_and_dead(
                    ctx, handles, result_queue, pending, results,
                    next_worker_id)
        finally:
            for handle in handles.values():
                handle.stop()
            # All results we care about are drained; anything a dying
            # worker still pushed must not keep the feeder thread alive.
            result_queue.cancel_join_thread()
            result_queue.close()
        return [results[i] for i in range(len(blobs))]

    def _assign_pending(self, handles, pending, blobs) -> None:
        for handle in handles.values():
            if not pending:
                return
            if handle.current is None and handle.process.is_alive():
                index, attempt = pending.pop()
                handle.assign(index, attempt, blobs[index], self.timeout)

    def _drain_results(self, handles, result_queue, pending, results) -> None:
        try:
            item = result_queue.get(timeout=_POLL_SECONDS)
        except queue_mod.Empty:
            return
        while True:
            worker_id, index, attempt, ok, payload, seconds = item
            handle = handles.get(worker_id)
            if handle is not None and handle.current is not None \
                    and handle.current[0] == index:
                handle.current = None
            if index not in results:  # a late result after a timeout retry
                if ok:
                    results[index] = TaskResult(
                        index=index, ok=True, value=pickle.loads(payload),
                        seconds=seconds, attempts=attempt,
                        worker=f"worker-{worker_id}")
                elif attempt <= self.retries:
                    pending.append((index, attempt + 1))
                else:
                    results[index] = TaskResult(
                        index=index, ok=False,
                        error=payload.decode("utf-8", "replace"),
                        seconds=seconds, attempts=attempt,
                        worker=f"worker-{worker_id}")
            try:
                item = result_queue.get_nowait()
            except queue_mod.Empty:
                return

    def _reap_expired_and_dead(self, ctx, handles, result_queue, pending,
                               results, next_worker_id: int) -> int:
        now = time.monotonic()
        for worker_id in list(handles):
            handle = handles[worker_id]
            expired = handle.expired(now)
            died = not handle.process.is_alive()
            if not (expired or died):
                continue
            if handle.current is None:
                if died:  # idle crash: replace so assignment never stalls
                    handle.kill()
                    del handles[worker_id]
                    with _pinned_parent_env(self.pin_blas):
                        handles[next_worker_id] = _WorkerHandle(
                            ctx, next_worker_id, result_queue, self.pin_blas)
                    next_worker_id += 1
                continue
            index, attempt, _ = handle.current
            handle.kill()
            del handles[worker_id]
            if index not in results:
                if attempt <= self.retries:
                    pending.append((index, attempt + 1))
                elif expired:
                    results[index] = TaskResult(
                        index=index, ok=False, timed_out=True,
                        error=(f"task timed out after {self.timeout:.1f}s "
                               f"(attempt {attempt}); worker "
                               f"{worker_id} killed"),
                        seconds=float(self.timeout or 0.0), attempts=attempt,
                        worker=f"worker-{worker_id}")
                else:
                    results[index] = TaskResult(
                        index=index, ok=False,
                        error=(f"worker {worker_id} died (exitcode="
                               f"{handle.process.exitcode}) while running "
                               f"task #{index}, attempt {attempt}"),
                        attempts=attempt, worker=f"worker-{worker_id}")
            with _pinned_parent_env(self.pin_blas):
                handles[next_worker_id] = _WorkerHandle(
                    ctx, next_worker_id, result_queue, self.pin_blas)
            next_worker_id += 1
        return next_worker_id


def process_map(fn: Callable[..., Any], specs: Sequence[Any], *,
                workers: Optional[int] = None,
                seed: Optional[int] = None,
                timeout: Optional[float] = None,
                retries: int = 1,
                context: Optional[str] = None,
                pin_blas: bool = True) -> List[TaskResult]:
    """One-shot convenience wrapper around :class:`ProcessMap`."""
    return ProcessMap(workers, seed=seed, timeout=timeout, retries=retries,
                      context=context, pin_blas=pin_blas).map(fn, specs)
