"""Fan-out adapters: the repo's embarrassingly-parallel loops as task maps.

Each adapter turns one serial outer loop — the Table IV model lineup, the
Table III grid search, sharded evaluation, multi-seed significance runs —
into a list of pickle-able task specs executed through
:class:`~repro.parallel.pool.ProcessMap`.  All shared inputs (dataset,
split, settings) are computed **once in the parent** and shipped to the
workers inside the specs, so serial and parallel runs consume exactly the
same inputs and return bit-identical floats.

The task functions are module-level on purpose: they pickle by qualified
name under every start method, including ``spawn``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..data.interactions import EvalSample, Split, leave_one_out_split
from ..data.synthetic import SyntheticDataset
from ..eval.evaluator import EvaluationResult, evaluate_rankings
from ..exp.config import BenchmarkSettings
from ..exp.runner import RunResult, run_model
from .pool import process_map, resolve_workers, unwrap

__all__ = [
    "evaluate_model_sharded", "generate_shards_parallel",
    "grid_scores_parallel", "map_seeds", "run_models_parallel",
    "run_table_cells", "shard_batch_ranges",
]


# ----------------------------------------------------------------------
# Event-log generation: one process per shard of users
# ----------------------------------------------------------------------
def generate_shards_parallel(config, name: str,
                             user_ranges: Sequence[Tuple[int, int]], *,
                             workers: Optional[int] = None,
                             timeout: Optional[float] = None) -> List:
    """Simulate contiguous user ranges in parallel; ordered column tuples.

    Each task rebuilds the simulator from ``config`` (deterministic) and
    draws every user from its keyed per-user stream, so results depend
    only on the user range — the bit-identity contract of
    :func:`repro.data.eventlog.generate_eventlog`.  The import is lazy to
    keep ``repro.data`` importable without the model stack.
    """
    from ..data.eventlog import _simulate_shard_task
    specs = [(config, name, int(start), int(stop))
             for start, stop in user_ranges]
    results = process_map(_simulate_shard_task, specs, workers=workers,
                          timeout=timeout)
    return unwrap(results, context="eventlog shard")


# ----------------------------------------------------------------------
# Table IV lineup: one process per (model, dataset) cell
# ----------------------------------------------------------------------
def _run_model_task(spec: Tuple[str, SyntheticDataset, BenchmarkSettings,
                                Split]) -> RunResult:
    name, dataset, settings, split = spec
    return run_model(name, dataset, settings, split=split)


def run_models_parallel(names: Sequence[str], dataset: SyntheticDataset,
                        settings: BenchmarkSettings, *,
                        workers: Optional[int] = None,
                        split: Optional[Split] = None,
                        timeout: Optional[float] = None) -> List[RunResult]:
    """Parallel counterpart of :func:`repro.exp.runner.run_models`.

    The leave-one-out split is computed once here and shipped to every
    worker, exactly as the serial loop shares one split across models.
    """
    if split is None:
        split = leave_one_out_split(dataset.corpus)
    specs = [(name, dataset, settings, split) for name in names]
    results = process_map(_run_model_task, specs, workers=workers,
                          timeout=timeout)
    return unwrap(results, context="model run")


def run_table_cells(cells: Sequence[Tuple[str, SyntheticDataset, Split]],
                    settings: BenchmarkSettings, *,
                    workers: Optional[int] = None,
                    timeout: Optional[float] = None) -> List[RunResult]:
    """Run explicit (model name, dataset, split) cells, in cell order.

    This is the Table IV fan-out shape: the full datasets x models
    cross-product becomes one flat task list, so a wide lineup keeps all
    workers busy even when individual datasets are small.
    """
    specs = [(name, dataset, settings, split)
             for name, dataset, split in cells]
    results = process_map(_run_model_task, specs, workers=workers,
                          timeout=timeout)
    return unwrap(results, context="table cell")


# ----------------------------------------------------------------------
# Table III grid search: one process per hyper-parameter combo
# ----------------------------------------------------------------------
def _grid_combo_task(spec) -> Tuple[Dict, float]:
    (dataset, overrides, settings, train_corpus, eval_samples,
     metric) = spec
    from ..core import Causer
    from ..eval import evaluate_model

    config = settings.causer_config(dataset.name, **overrides)
    model = Causer(dataset.corpus.num_users, dataset.num_items,
                   dataset.features, config)
    model.fit(train_corpus)
    evaluation = evaluate_model(model, eval_samples, z=settings.z)
    return overrides, 100.0 * evaluation.mean(metric)


def grid_scores_parallel(dataset: SyntheticDataset,
                         combos: Sequence[Dict],
                         settings: BenchmarkSettings,
                         train_corpus, eval_samples: Sequence[EvalSample],
                         metric: str, *,
                         workers: Optional[int] = None,
                         timeout: Optional[float] = None
                         ) -> List[Tuple[Dict, float]]:
    """Score every hyper-parameter combo; one (overrides, score) per combo.

    Results come back in combo order regardless of worker scheduling, so
    :class:`~repro.exp.grid.GridSearchResult.scores` is order-stable.
    """
    specs = [(dataset, dict(combo), settings, train_corpus,
              list(eval_samples), metric) for combo in combos]
    results = process_map(_grid_combo_task, specs, workers=workers,
                          timeout=timeout)
    return unwrap(results, context="grid combo")


# ----------------------------------------------------------------------
# Sharded evaluation: contiguous sample shards, order-stable reassembly
# ----------------------------------------------------------------------
def shard_batch_ranges(num_samples: int, batch_size: int,
                       num_shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` shards aligned to batch boundaries.

    Alignment matters for bit-identical reassembly: each worker's internal
    mini-batches must be exactly the mini-batches the serial loop would
    form, because padding geometry depends on batch composition.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    num_batches = -(-num_samples // batch_size)  # ceil
    num_shards = max(1, min(num_shards, num_batches))
    base, extra = divmod(num_batches, num_shards)
    ranges: List[Tuple[int, int]] = []
    batch_start = 0
    for shard in range(num_shards):
        shard_batches = base + (1 if shard < extra else 0)
        start = batch_start * batch_size
        stop = min((batch_start + shard_batches) * batch_size, num_samples)
        ranges.append((start, stop))
        batch_start += shard_batches
    return ranges


def _eval_shard_task(spec) -> List[List[int]]:
    model, samples, z, batch_size = spec
    rankings: List[List[int]] = []
    for start in range(0, len(samples), batch_size):
        chunk = list(samples[start:start + batch_size])
        rankings.extend(model.recommend(chunk, z=z))
    return rankings


def evaluate_model_sharded(model, samples: Sequence[EvalSample], z: int,
                           batch_size: int, workers: int, *,
                           timeout: Optional[float] = None
                           ) -> EvaluationResult:
    """Sharded counterpart of :func:`repro.eval.evaluator.evaluate_model`.

    The model is pickled once per shard (pickling a
    :class:`~repro.nn.tensor.Tensor` detaches it from the autograd graph),
    shard rankings are reassembled in sample order, and the metric pass
    runs once in the parent — so per-user metric arrays are bit-identical
    to the serial path.
    """
    samples = list(samples)
    ranges = shard_batch_ranges(len(samples), batch_size, workers)
    specs = [(model, samples[start:stop], z, batch_size)
             for start, stop in ranges]
    shard_rankings = unwrap(
        process_map(_eval_shard_task, specs, workers=workers,
                    timeout=timeout),
        context="evaluation shard")
    rankings: List[List[int]] = []
    for shard in shard_rankings:
        rankings.extend(shard)
    return evaluate_rankings(rankings, samples, z=z)


# ----------------------------------------------------------------------
# Multi-seed runs (significance testing)
# ----------------------------------------------------------------------
def _seeded_call_task(spec) -> Any:
    fn, seed, args, kwargs = spec
    return fn(seed, *args, **kwargs)


def map_seeds(fn: Callable[..., Any], seeds: Sequence[int],
              *args: Any, workers: Optional[int] = None,
              timeout: Optional[float] = None, **kwargs: Any) -> List[Any]:
    """Run ``fn(seed, *args, **kwargs)`` once per seed; ordered results.

    ``fn`` must be a module-level (picklable) callable.  Used by
    :mod:`repro.eval.significance` to fan multi-seed model runs out across
    processes while keeping each run's seed explicit in its spec.
    """
    specs = [(fn, int(seed), args, kwargs) for seed in seeds]
    results = process_map(_seeded_call_task, specs, workers=workers,
                          timeout=timeout)
    return unwrap(results, context="seeded run")
