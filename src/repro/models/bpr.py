"""BPR-MF baseline (Rendle et al., 2012).

Matrix factorization trained with the Bayesian personalized ranking loss on
(user, positive, negative) triples.  Non-sequential: a user's score for an
item ignores interaction order, which is exactly why it trails the
sequential models in Table IV.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..data.interactions import EvalSample, SequenceCorpus
from ..nn import Embedding, Module, losses, make_optimizer
from .base import FitResult, Recommender, TrainConfig


class BPR(Recommender, Module):
    """Matrix factorization with pairwise ranking loss."""

    name = "BPR"

    def __init__(self, num_users: int, num_items: int,
                 config: TrainConfig = None) -> None:
        Module.__init__(self)
        self.config = config or TrainConfig()
        self.num_users = num_users
        self.num_items = num_items
        self.rng = np.random.default_rng(self.config.seed)
        dim = self.config.embedding_dim
        self.user_embedding = Embedding(max(num_users, 1), dim, self.rng)
        self.item_embedding = Embedding(num_items + 1, dim, self.rng,
                                        padding_idx=0)

    def _triples(self, corpus: SequenceCorpus) -> np.ndarray:
        pairs = [(seq.user_id, item)
                 for seq in corpus.sequences for item in seq.items()]
        return np.asarray(pairs, dtype=np.int64)

    def fit(self, corpus: SequenceCorpus) -> FitResult:
        cfg = self.config
        pairs = self._triples(corpus)
        if len(pairs) == 0:
            raise ValueError("BPR: empty training corpus")
        self.set_sparse_grads(cfg.sparse_grads)
        optimizer = make_optimizer(cfg.optimizer, self.parameters(),
                                   lr=cfg.learning_rate,
                                   weight_decay=cfg.weight_decay)
        result = FitResult()
        positive_sets = {seq.user_id: set(seq.items())
                         for seq in corpus.sequences}
        for _ in range(cfg.num_epochs):
            order = self.rng.permutation(len(pairs))
            total, count = 0.0, 0
            for start in range(0, len(pairs), cfg.batch_size):
                chunk = pairs[order[start:start + cfg.batch_size]]
                users, positives = chunk[:, 0], chunk[:, 1]
                negatives = self.rng.integers(1, self.num_items + 1,
                                              size=len(chunk))
                # Rejection pass: avoid sampling the user's own positives.
                for i, (user, neg) in enumerate(zip(users, negatives)):
                    attempts = 0
                    while neg in positive_sets[user] and attempts < 10:
                        neg = int(self.rng.integers(1, self.num_items + 1))
                        attempts += 1
                    negatives[i] = neg

                optimizer.zero_grad()
                u = self.user_embedding(users)
                pos = self.item_embedding(positives)
                neg = self.item_embedding(negatives)
                pos_scores = (u * pos).sum(axis=-1)
                neg_scores = (u * neg).sum(axis=-1)
                loss = losses.bpr_loss(pos_scores, neg_scores)
                loss.backward()
                optimizer.clip_grad_norm(cfg.grad_clip)
                optimizer.step()
                self.item_embedding.zero_padding_row()
                total += loss.item()
                count += 1
            result.epoch_losses.append(total / max(count, 1))
        return result

    def score_samples(self, samples: Sequence[EvalSample]) -> np.ndarray:
        users = np.asarray([s.user_id for s in samples], dtype=np.int64)
        user_vectors = self.user_embedding.weight.data[users]
        return user_vectors @ self.item_embedding.weight.data.T
