"""Common recommender interfaces and the shared neural training loop.

Every model in :mod:`repro.models` (and the Causer core) implements the
:class:`Recommender` protocol:

* ``fit(train_corpus)`` — learn parameters from a training corpus,
* ``score_samples(samples)`` — full-catalog scores, shape ``(B, V + 1)``
  (column 0 is the padding item and is masked to ``-inf``),
* ``recommend(samples, z)`` — top-``z`` ranked item lists.

Sequential neural models share :class:`NeuralSequentialRecommender`: they
only define how a batch of histories becomes a user representation
(``user_representation``), while this base class provides the paper's
sigmoid + negative-sampling objective (eq. 11's BCE form), mini-batching,
the Adam loop, and full-catalog scoring through output item embeddings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.batching import (PaddedBatch, iterate_batches, pad_samples,
                             sample_negatives)
from ..data.interactions import EvalSample, SequenceCorpus, training_prefixes
from ..nn import Embedding, Module, Parameter, Tensor, losses, make_optimizer


@dataclass
class TrainConfig:
    """Hyper-parameters shared by the neural recommenders.

    Defaults are scaled for CPU experiments; Table III lists the paper's
    tuning ranges (batch size {32..1024}, lr {1e-5..1e-1}, embedding size
    {32..256}).
    """

    embedding_dim: int = 32
    hidden_dim: int = 32
    learning_rate: float = 0.01
    num_epochs: int = 5
    batch_size: int = 128
    num_negatives: int = 4
    max_history: int = 20
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    optimizer: str = "adam"
    #: Row-sparse embedding gradients + lazy optimizer rows (perf only;
    #: small tables densify automatically, see repro.nn.sparse).
    sparse_grads: bool = True
    seed: int = 0
    verbose: bool = False


@dataclass
class FitResult:
    """Training trace returned by ``fit``."""

    epoch_losses: List[float] = field(default_factory=list)
    extra: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


def rank_top_z(scores: np.ndarray, z: int = 5) -> List[List[int]]:
    """Top-``z`` item ids per row of a ``(B, V + 1)`` score matrix.

    Column 0 (the padding item) is masked to ``-inf``.  Shared by the
    offline :class:`Recommender` protocol and the online serving scorer so
    both rank (and break ties) identically.  Mutates ``scores``' padding
    column; pass a copy if the input must survive.
    """
    scores[:, 0] = -np.inf  # never recommend the padding item
    top = np.argpartition(-scores, kth=min(z, scores.shape[1] - 1),
                          axis=1)[:, :z]
    # Order each row's top-z slice in one batched argsort instead of a
    # Python loop of per-row sorts.
    top_scores = np.take_along_axis(scores, top, axis=1)
    order = np.argsort(-top_scores, axis=1, kind="stable")
    ranked = np.take_along_axis(top, order, axis=1)
    return [list(map(int, row)) for row in ranked]


class Recommender:
    """Minimal interface all models satisfy."""

    name: str = "recommender"

    def fit(self, corpus: SequenceCorpus) -> FitResult:
        raise NotImplementedError

    def score_samples(self, samples: Sequence[EvalSample]) -> np.ndarray:
        raise NotImplementedError

    def recommend(self, samples: Sequence[EvalSample], z: int = 5
                  ) -> List[List[int]]:
        """Rank the catalog for each sample and return the top-``z`` items."""
        return rank_top_z(self.score_samples(samples), z)


class NeuralSequentialRecommender(Recommender, Module):
    """Base class implementing the shared training/scoring machinery.

    Subclasses must implement :meth:`user_representation` mapping a
    :class:`PaddedBatch` to a ``(B, embedding_dim)`` tensor; everything else
    (candidate scoring, the BCE objective, full-catalog ranking) lives here.
    """

    def __init__(self, num_users: int, num_items: int,
                 config: Optional[TrainConfig] = None,
                 name: str = "neural") -> None:
        Module.__init__(self)
        self.name = name
        self.config = config or TrainConfig()
        self.num_users = num_users
        self.num_items = num_items
        self.rng = np.random.default_rng(self.config.seed)
        dim = self.config.embedding_dim
        self.item_embedding = Embedding(num_items + 1, dim, self.rng,
                                        padding_idx=0)
        self.output_embedding = Embedding(num_items + 1, dim, self.rng,
                                          padding_idx=0)
        self.user_embedding = Embedding(max(num_users, 1), dim, self.rng)
        # Per-item output bias: a popularity prior for the sigmoid scorer.
        self.output_bias = Parameter(np.zeros(num_items + 1))

    # -- pieces supplied by subclasses -----------------------------------
    def user_representation(self, batch: PaddedBatch) -> Tensor:
        raise NotImplementedError

    def set_sparse_grads(self, enabled: bool = True) -> Module:
        """Extend the module-tree toggle to the gathered output bias."""
        Module.set_sparse_grads(self, enabled)
        self.output_bias.sparse_grad = bool(enabled)
        return self

    # -- shared machinery -------------------------------------------------
    def basket_input_embeddings(self, batch: PaddedBatch) -> Tensor:
        """Sum of member-item embeddings per step: ``(B, T, dim)``.

        Realises the paper's "multiply the multi-hot vector with a parameter
        matrix" treatment of interaction sets.
        """
        gathered = self.item_embedding(batch.items)          # (B, T, S, d)
        mask = Tensor(batch.basket_mask[..., None])
        return (gathered * mask).sum(axis=2)

    def candidate_scores(self, representation: Tensor,
                         candidates: np.ndarray) -> Tensor:
        """Dot-product logits plus item bias for explicit candidates: ``(B, C)``."""
        cand_emb = self.output_embedding(candidates)         # (B, C, d)
        dots = (cand_emb * representation.reshape(
            representation.shape[0], 1, -1)).sum(axis=-1)
        return dots + self.output_bias[candidates]

    def training_loss(self, batch: PaddedBatch) -> Tensor:
        """BCE over positives and sampled negatives (eq. 11's data term)."""
        representation = self.user_representation(batch)
        b, p = batch.positives.shape
        n = batch.negatives.shape[-1]
        candidates = np.concatenate(
            [batch.positives[:, :, None], batch.negatives], axis=2
        ).reshape(b, p * (n + 1))
        logits = self.candidate_scores(representation, candidates)
        targets = np.zeros((b, p, n + 1))
        targets[:, :, 0] = 1.0
        mask = np.repeat(batch.positive_mask[:, :, None], n + 1, axis=2)
        return losses.bce_with_logits(logits, targets.reshape(b, -1),
                                      mask=mask.reshape(b, -1))

    def fit(self, corpus: SequenceCorpus) -> FitResult:
        samples = training_prefixes(corpus, max_history=self.config.max_history)
        return self.fit_samples(samples)

    def fit_samples(self, samples: Sequence[EvalSample]) -> FitResult:
        """Train on explicit (history, target) samples."""
        if not samples:
            raise ValueError(f"{self.name}: no training samples")
        cfg = self.config
        self.set_sparse_grads(cfg.sparse_grads)
        optimizer = make_optimizer(cfg.optimizer, self.parameters(),
                                   lr=cfg.learning_rate,
                                   weight_decay=cfg.weight_decay)
        result = FitResult()
        self.train()
        for epoch in range(cfg.num_epochs):
            total, count = 0.0, 0
            for batch in iterate_batches(samples, cfg.batch_size, self.rng,
                                         max_history=cfg.max_history):
                sample_negatives(batch, self.num_items, cfg.num_negatives,
                                 self.rng)
                optimizer.zero_grad()
                loss = self.training_loss(batch)
                loss.backward()
                optimizer.clip_grad_norm(cfg.grad_clip)
                optimizer.step()
                self._after_step()
                total += loss.item()
                count += 1
            mean_loss = total / max(count, 1)
            result.epoch_losses.append(mean_loss)
            if cfg.verbose:
                print(f"[{self.name}] epoch {epoch + 1}/{cfg.num_epochs} "
                      f"loss={mean_loss:.4f}")
        self.eval()
        return result

    def _after_step(self) -> None:
        """Hook run after each optimizer step (padding-row upkeep)."""
        self.item_embedding.zero_padding_row()
        self.output_embedding.zero_padding_row()

    def score_samples(self, samples: Sequence[EvalSample]) -> np.ndarray:
        """Full-catalog scores via the output embedding table."""
        self.eval()
        batch = pad_samples(samples, max_history=self.config.max_history)
        from ..nn import no_grad
        with no_grad(self):
            representation = self.user_representation(batch)
        scores = representation.data @ self.output_embedding.weight.data.T
        return scores + self.output_bias.data[None, :]


class PopularityRecommender(Recommender):
    """Non-personalized most-popular baseline (sanity floor)."""

    name = "Pop"

    def __init__(self, num_items: int) -> None:
        self.num_items = num_items
        self._scores = np.zeros(num_items + 1)

    def fit(self, corpus: SequenceCorpus) -> FitResult:
        counts = corpus.item_popularity().astype(np.float64)
        counts[0] = 0.0
        self._scores = counts
        return FitResult(epoch_losses=[0.0])

    def score_samples(self, samples: Sequence[EvalSample]) -> np.ndarray:
        return np.tile(self._scores, (len(samples), 1))
