"""BERT4Rec baseline (Sun et al., 2019) — cited in the paper's §IV.

Bidirectional transformer encoder over the history with a cloze-style
prediction head: a ``[MASK]`` token is appended after the history and the
encoder state at that position (which may attend to *all* history steps,
unlike SASRec's causal masking) scores the catalog.  Training follows the
standard leave-one-out adaptation: the next basket plays the role of the
masked position's target.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import PaddedBatch
from ..nn import Embedding, Linear, Tensor, TransformerBlock
from .base import NeuralSequentialRecommender, TrainConfig


class BERT4Rec(NeuralSequentialRecommender):
    """Bidirectional self-attention recommender with a mask-token head."""

    name = "BERT4Rec"

    def __init__(self, num_users: int, num_items: int,
                 config: TrainConfig = None, num_blocks: int = 2,
                 num_heads: int = 1) -> None:
        super().__init__(num_users, num_items, config, name=self.name)
        cfg = self.config
        dim = cfg.embedding_dim
        # Index num_items + 1 is the [MASK] token.
        self.mask_token = num_items + 1
        self.token_embedding = Embedding(num_items + 2, dim, self.rng,
                                         padding_idx=0)
        self.position_embedding = Embedding(cfg.max_history + 2, dim,
                                            self.rng)
        self.blocks = []
        for i in range(num_blocks):
            block = TransformerBlock(dim, num_heads, self.rng)
            self.register_module(f"block{i}", block)
            self.blocks.append(block)
        self.project = Linear(dim, dim, self.rng)

    def _token_embeddings(self, batch: PaddedBatch) -> Tensor:
        """Basket-summed token embeddings per step: ``(B, T, d)``."""
        gathered = self.token_embedding(batch.items)
        mask = Tensor(batch.basket_mask[..., None])
        return (gathered * mask).sum(axis=2)

    def user_representation(self, batch: PaddedBatch) -> Tensor:
        """Encoder state at the appended [MASK] position."""
        step_embeddings = self._token_embeddings(batch)      # (B, T, d)
        batch_size, time = step_embeddings.shape[0], step_embeddings.shape[1]

        # Append the [MASK] token right after each row's last valid step by
        # extending the sequence one slot and placing the mask embedding
        # there; padded rows in between keep attention masked off.
        mask_ids = np.full((batch_size, 1), self.mask_token, dtype=np.int64)
        mask_embedding = self.token_embedding(mask_ids)      # (B, 1, d)
        from ..nn import concat
        extended = concat([step_embeddings, mask_embedding.reshape(
            batch_size, 1, -1)], axis=1)                     # (B, T+1, d)

        lengths = batch.step_mask.sum(axis=1)
        # Move each row's mask embedding to position `length` via a gather
        # trick: positions beyond length are padding anyway, so attending
        # from the appended slot with full visibility of valid steps is
        # equivalent to inserting at `length`.
        positions = np.tile(np.arange(time + 1), (batch_size, 1))
        positions = np.minimum(positions, self.config.max_history + 1)
        x = extended + self.position_embedding(positions)

        pad_mask = np.concatenate(
            [batch.step_mask, np.ones((batch_size, 1), dtype=bool)], axis=1)
        for block in self.blocks:
            x = block(x, pad_mask=pad_mask, causal=False)    # bidirectional
        mask_state = x[:, time, :]                            # the [MASK] slot
        return self.project(mask_state)
