"""FPMC baseline (Rendle et al., 2010).

Factorized Personalized Markov Chains for next-basket recommendation: the
score of item ``i`` for user ``u`` with previous basket ``B`` combines a
matrix-factorization term and a factorized first-order transition term,

    s(u, i | B) = <v_u^UI, v_i^IU> + (1/|B|) Σ_{l ∈ B} <v_l^LI, v_i^IL>.

Trained with S-BPR (pairwise ranking over next-basket positives).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..data.interactions import EvalSample, SequenceCorpus
from ..nn import Embedding, Module, losses, make_optimizer
from .base import FitResult, Recommender, TrainConfig


class FPMC(Recommender, Module):
    """Factorized personalized Markov chain."""

    name = "FPMC"

    def __init__(self, num_users: int, num_items: int,
                 config: TrainConfig = None) -> None:
        Module.__init__(self)
        self.config = config or TrainConfig()
        self.num_users = num_users
        self.num_items = num_items
        self.rng = np.random.default_rng(self.config.seed)
        dim = self.config.embedding_dim
        self.user_ui = Embedding(max(num_users, 1), dim, self.rng)
        self.item_iu = Embedding(num_items + 1, dim, self.rng, padding_idx=0)
        self.item_li = Embedding(num_items + 1, dim, self.rng, padding_idx=0)
        self.item_il = Embedding(num_items + 1, dim, self.rng, padding_idx=0)

    @staticmethod
    def _transitions(corpus: SequenceCorpus) -> List[Tuple[int, Tuple[int, ...], int]]:
        """(user, previous basket, next item) training instances."""
        out = []
        for seq in corpus.sequences:
            for prev, nxt in zip(seq.baskets[:-1], seq.baskets[1:]):
                for item in nxt:
                    out.append((seq.user_id, prev, item))
        return out

    def _pair_scores(self, users, prev_padded, prev_mask, items):
        """Score a batch of (user, prev basket, item) triples."""
        mf = (self.user_ui(users) * self.item_iu(items)).sum(axis=-1)
        prev_emb = self.item_li(prev_padded)                 # (B, S, d)
        masked = prev_emb * prev_mask[..., None]
        basket_mean = masked.sum(axis=1) * (1.0 / np.maximum(
            prev_mask.data.sum(axis=1, keepdims=True), 1.0))
        markov = (basket_mean * self.item_il(items)).sum(axis=-1)
        return mf + markov

    def fit(self, corpus: SequenceCorpus) -> FitResult:
        from ..nn import Tensor
        cfg = self.config
        transitions = self._transitions(corpus)
        if not transitions:
            raise ValueError("FPMC: no basket transitions in corpus")
        self.set_sparse_grads(cfg.sparse_grads)
        optimizer = make_optimizer(cfg.optimizer, self.parameters(),
                                   lr=cfg.learning_rate,
                                   weight_decay=cfg.weight_decay)
        result = FitResult()
        max_slot = max(len(t[1]) for t in transitions)
        for _ in range(cfg.num_epochs):
            order = self.rng.permutation(len(transitions))
            total, count = 0.0, 0
            for start in range(0, len(transitions), cfg.batch_size):
                rows = [transitions[i] for i in order[start:start + cfg.batch_size]]
                users = np.asarray([r[0] for r in rows], dtype=np.int64)
                positives = np.asarray([r[2] for r in rows], dtype=np.int64)
                negatives = self.rng.integers(1, self.num_items + 1,
                                              size=len(rows))
                prev = np.zeros((len(rows), max_slot), dtype=np.int64)
                prev_mask = np.zeros((len(rows), max_slot))
                for i, row in enumerate(rows):
                    for s, item in enumerate(row[1]):
                        prev[i, s] = item
                        prev_mask[i, s] = 1.0

                optimizer.zero_grad()
                mask_t = Tensor(prev_mask)
                pos_scores = self._pair_scores(users, prev, mask_t, positives)
                neg_scores = self._pair_scores(users, prev, mask_t, negatives)
                loss = losses.bpr_loss(pos_scores, neg_scores)
                loss.backward()
                optimizer.clip_grad_norm(cfg.grad_clip)
                optimizer.step()
                for emb in (self.item_iu, self.item_li, self.item_il):
                    emb.zero_padding_row()
                total += loss.item()
                count += 1
            result.epoch_losses.append(total / max(count, 1))
        return result

    def score_samples(self, samples: Sequence[EvalSample]) -> np.ndarray:
        scores = np.zeros((len(samples), self.num_items + 1))
        iu = self.item_iu.weight.data
        il = self.item_il.weight.data
        li = self.item_li.weight.data
        for row, sample in enumerate(samples):
            user_vec = self.user_ui.weight.data[sample.user_id]
            last_basket = sample.history[-1] if sample.history else ()
            markov = np.zeros(self.num_items + 1)
            if last_basket:
                basket_mean = li[list(last_basket)].mean(axis=0)
                markov = il @ basket_mean
            scores[row] = iu @ user_vec + markov
        return scores
