"""MMSARec baseline (Han et al., 2020).

Self-attentive recommender that encodes multi-modal side information into
the architecture: id embeddings and projected raw-feature embeddings are
fused by a learned gate before entering the causal self-attention stack,
so the attention layers see modality-aware item representations.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import PaddedBatch
from ..nn import Embedding, Linear, Tensor, TransformerBlock, concat
from .base import NeuralSequentialRecommender, TrainConfig


class MMSARec(NeuralSequentialRecommender):
    """SASRec with gated multi-modal item encoding."""

    name = "MMSARec"

    def __init__(self, num_users: int, num_items: int,
                 item_features: np.ndarray, config: TrainConfig = None,
                 num_blocks: int = 2, num_heads: int = 1) -> None:
        super().__init__(num_users, num_items, config, name=self.name)
        cfg = self.config
        features = np.asarray(item_features, dtype=np.float64)
        if features.shape[0] != num_items + 1:
            raise ValueError(
                f"features must cover the padded vocabulary: expected "
                f"{num_items + 1} rows, got {features.shape[0]}")
        self.item_features = features
        dim = cfg.embedding_dim
        self.feature_proj = Linear(features.shape[1], dim, self.rng)
        self.gate = Linear(2 * dim, dim, self.rng)
        self.position_embedding = Embedding(cfg.max_history + 1, dim, self.rng)
        self.blocks = []
        for i in range(num_blocks):
            block = TransformerBlock(dim, num_heads, self.rng)
            self.register_module(f"block{i}", block)
            self.blocks.append(block)
        self.project = Linear(dim, dim, self.rng)

    def fused_step_embeddings(self, batch: PaddedBatch) -> Tensor:
        """Gated fusion of id and feature views, summed over the basket."""
        id_part = self.item_embedding(batch.items)           # (B, T, S, d)
        raw = Tensor(self.item_features[batch.items])
        feat_part = self.feature_proj(raw)
        gate = self.gate(concat([id_part, feat_part], axis=-1)).sigmoid()
        fused = gate * id_part + (1.0 - gate) * feat_part
        mask = Tensor(batch.basket_mask[..., None])
        return (fused * mask).sum(axis=2)

    def user_representation(self, batch: PaddedBatch) -> Tensor:
        inputs = self.fused_step_embeddings(batch)
        batch_size, time = inputs.shape[0], inputs.shape[1]
        positions = np.tile(np.arange(time), (batch_size, 1))
        positions = np.minimum(positions, self.config.max_history)
        x = inputs + self.position_embedding(positions)
        for block in self.blocks:
            x = block(x, pad_mask=batch.step_mask, causal=True)
        step_mask = batch.step_mask.astype(np.int64)
        last_idx = np.maximum(step_mask.sum(axis=1) - 1, 0)
        last = x[np.arange(batch_size), last_idx, :]
        return self.project(last)
