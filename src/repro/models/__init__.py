"""`repro.models` — the paper's Table IV baselines.

Non-sequential: Pop (sanity floor), BPR, NCF.  Sequential: FPMC, GRU4Rec,
NARM, STAMP, SASRec.  Side-information-aware: VTRNN, MMSARec.  All share
the :class:`~repro.models.base.Recommender` interface and (for the neural
sequence models) the training loop in
:class:`~repro.models.base.NeuralSequentialRecommender`.
"""

from .base import (FitResult, NeuralSequentialRecommender,
                   PopularityRecommender, Recommender, TrainConfig)
from .bert4rec import BERT4Rec
from .bpr import BPR
from .fpmc import FPMC
from .gru4rec import GRU4Rec
from .hrnn import HRNN
from .mmsarec import MMSARec
from .narm import NARM
from .ncf import NCF
from .sasrec import SASRec
from .stamp import STAMP
from .vtrnn import VTRNN

__all__ = [
    "Recommender", "NeuralSequentialRecommender", "PopularityRecommender",
    "TrainConfig", "FitResult",
    "BPR", "NCF", "FPMC", "GRU4Rec", "NARM", "STAMP", "SASRec", "BERT4Rec",
    "HRNN", "VTRNN", "MMSARec",
]
