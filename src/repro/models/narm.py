"""NARM baseline (Li et al., 2017).

Neural attentive session-based recommendation: a GRU encodes the history;
the *global* encoder is the final hidden state, the *local* encoder is an
additive-attention-weighted sum of all hidden states queried by the final
state.  Their concatenation, compressed by a linear layer, is the user
representation.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import PaddedBatch
from ..nn import AdditiveAttention, Linear, RecurrentLayer, Tensor, concat
from .base import NeuralSequentialRecommender, TrainConfig


class NARM(NeuralSequentialRecommender):
    """GRU with global + attentive local encoders."""

    name = "NARM"

    def __init__(self, num_users: int, num_items: int,
                 config: TrainConfig = None) -> None:
        super().__init__(num_users, num_items, config, name=self.name)
        cfg = self.config
        self.rnn = RecurrentLayer("gru", cfg.embedding_dim, cfg.hidden_dim,
                                  self.rng)
        self.attention = AdditiveAttention(cfg.hidden_dim, self.rng)
        self.compress = Linear(2 * cfg.hidden_dim, cfg.embedding_dim, self.rng)

    def user_representation(self, batch: PaddedBatch) -> Tensor:
        inputs = self.basket_input_embeddings(batch)
        states, last = self.rnn(inputs, step_mask=batch.step_mask)
        weights = self.attention(states, last, mask=batch.step_mask)
        local = (states * weights.reshape(weights.shape[0], -1, 1)).sum(axis=1)
        return self.compress(concat([last, local], axis=-1))

    def attention_weights(self, batch: PaddedBatch) -> np.ndarray:
        """Expose per-step attention for the explanation experiments."""
        self.eval()
        inputs = self.basket_input_embeddings(batch)
        states, last = self.rnn(inputs, step_mask=batch.step_mask)
        return self.attention(states, last, mask=batch.step_mask).data
