"""STAMP baseline (Liu et al., 2018).

Short-Term Attention/Memory Priority model: attention over the history item
embeddings (not RNN states) with a query combining the last item and the
session mean; two MLPs produce a general-interest vector ``h_s`` and a
short-term vector ``h_t`` whose elementwise product forms the trilinear
scoring representation.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import PaddedBatch
from ..nn import Linear, Parameter, Tensor, init
from ..nn import functional as F
from .base import NeuralSequentialRecommender, TrainConfig


class STAMP(NeuralSequentialRecommender):
    """Attention over embeddings with last-item (short-term) priority."""

    name = "STAMP"

    def __init__(self, num_users: int, num_items: int,
                 config: TrainConfig = None) -> None:
        super().__init__(num_users, num_items, config, name=self.name)
        cfg = self.config
        dim = cfg.embedding_dim
        self.w1 = Linear(dim, dim, self.rng, bias=False)
        self.w2 = Linear(dim, dim, self.rng, bias=False)
        self.w3 = Linear(dim, dim, self.rng, bias=True)
        self.attn_v = Parameter(init.xavier_uniform((dim,), self.rng))
        self.mlp_s = Linear(dim, dim, self.rng)
        self.mlp_t = Linear(dim, dim, self.rng)

    def user_representation(self, batch: PaddedBatch) -> Tensor:
        embeddings = self.basket_input_embeddings(batch)     # (B, T, d)
        step_mask = batch.step_mask.astype(np.float64)
        counts = np.maximum(step_mask.sum(axis=1, keepdims=True), 1.0)
        mask_t = Tensor(step_mask[..., None])
        session_mean = (embeddings * mask_t).sum(axis=1) * Tensor(1.0 / counts)

        batch_size = embeddings.shape[0]
        last_idx = np.maximum(step_mask.sum(axis=1).astype(np.int64) - 1, 0)
        last_item = embeddings[np.arange(batch_size), last_idx, :]

        mixed = (self.w1(embeddings)
                 + self.w2(last_item).reshape(batch_size, 1, -1)
                 + self.w3(session_mean).reshape(batch_size, 1, -1))
        scores = (mixed.sigmoid() * self.attn_v).sum(axis=-1)
        weights = F.masked_softmax(scores, batch.step_mask, axis=-1)
        attended = (embeddings * weights.reshape(batch_size, -1, 1)).sum(axis=1)

        h_s = self.mlp_s(attended).tanh()
        h_t = self.mlp_t(last_item).tanh()
        return h_s * h_t
