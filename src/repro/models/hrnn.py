"""HRNN baseline (Quadrana et al., 2017) — cited in the paper's §IV.

Hierarchical recurrent network for personalized session-based
recommendation: a *session-level* GRU reads the items inside a session, and
a *user-level* GRU evolves across session boundaries, seeding each new
session's initial state.  Our corpora store one basket sequence per user;
sessions are derived by slicing the sequence into fixed-length windows
(``session_length``), which mirrors the time-gap sessionization the
original paper applies to timestamped logs.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..data.batching import PaddedBatch
from ..nn import GRUCell, Linear, Tensor
from .base import NeuralSequentialRecommender, TrainConfig


class HRNN(NeuralSequentialRecommender):
    """Hierarchical GRU: session-level dynamics + cross-session user state."""

    name = "HRNN"

    def __init__(self, num_users: int, num_items: int,
                 config: TrainConfig = None, session_length: int = 4) -> None:
        super().__init__(num_users, num_items, config, name=self.name)
        if session_length < 1:
            raise ValueError("session_length must be positive")
        self.session_length = session_length
        cfg = self.config
        self.session_cell = GRUCell(cfg.embedding_dim, cfg.hidden_dim,
                                    self.rng)
        self.user_cell = GRUCell(cfg.hidden_dim, cfg.hidden_dim, self.rng)
        self.session_init = Linear(cfg.hidden_dim, cfg.hidden_dim, self.rng)
        self.project = Linear(cfg.hidden_dim, cfg.embedding_dim, self.rng)

    def user_representation(self, batch: PaddedBatch) -> Tensor:
        inputs = self.basket_input_embeddings(batch)          # (B, T, d)
        batch_size, time = inputs.shape[0], inputs.shape[1]
        step_mask = batch.step_mask

        user_state = Tensor(np.zeros((batch_size, self.config.hidden_dim)))
        session_state = self.session_init(user_state).tanh()
        for t in range(time):
            if t > 0 and t % self.session_length == 0:
                # Session boundary: fold the finished session into the
                # user-level GRU and re-seed the session-level state.
                user_state = self.user_cell(session_state, user_state)
                session_state = self.session_init(user_state).tanh()
            new_state = self.session_cell(inputs[:, t, :], session_state)
            keep = Tensor(step_mask[:, t:t + 1].astype(np.float64))
            session_state = new_state * keep + session_state * (1.0 - keep)
        return self.project(session_state)
