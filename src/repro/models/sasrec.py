"""SASRec baseline (Kang & McAuley, 2018).

Self-attentive sequential recommendation: item embeddings plus learned
positional embeddings pass through causally-masked transformer blocks; the
representation at the last valid position scores the catalog.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import PaddedBatch
from ..nn import Embedding, Linear, Tensor, TransformerBlock
from .base import NeuralSequentialRecommender, TrainConfig


class SASRec(NeuralSequentialRecommender):
    """Two-block causal self-attention recommender."""

    name = "SASRec"

    def __init__(self, num_users: int, num_items: int,
                 config: TrainConfig = None, num_blocks: int = 2,
                 num_heads: int = 1) -> None:
        super().__init__(num_users, num_items, config, name=self.name)
        cfg = self.config
        self.position_embedding = Embedding(cfg.max_history + 1,
                                            cfg.embedding_dim, self.rng)
        self.blocks = []
        for i in range(num_blocks):
            block = TransformerBlock(cfg.embedding_dim, num_heads, self.rng)
            self.register_module(f"block{i}", block)
            self.blocks.append(block)
        self.project = Linear(cfg.embedding_dim, cfg.embedding_dim, self.rng)

    def sequence_states(self, batch: PaddedBatch) -> Tensor:
        """Hidden state per position after the transformer stack."""
        inputs = self.basket_input_embeddings(batch)
        batch_size, time = inputs.shape[0], inputs.shape[1]
        positions = np.tile(np.arange(time), (batch_size, 1))
        positions = np.minimum(positions, self.config.max_history)
        x = inputs + self.position_embedding(positions)
        for block in self.blocks:
            x = block(x, pad_mask=batch.step_mask, causal=True)
        return x

    def user_representation(self, batch: PaddedBatch) -> Tensor:
        states = self.sequence_states(batch)
        step_mask = batch.step_mask.astype(np.int64)
        last_idx = np.maximum(step_mask.sum(axis=1) - 1, 0)
        last = states[np.arange(states.shape[0]), last_idx, :]
        return self.project(last)
