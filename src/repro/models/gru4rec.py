"""GRU4Rec baseline (Hidasi et al., 2015).

A GRU consumes the (basket-summed) item embeddings step by step; the final
hidden state, projected back to the embedding space, scores the catalog via
dot products with output item embeddings — trained with the sigmoid +
negative sampling objective the paper describes in §II-A.
"""

from __future__ import annotations

from ..data.batching import PaddedBatch
from ..nn import Linear, RecurrentLayer, Tensor
from .base import NeuralSequentialRecommender, TrainConfig


class GRU4Rec(NeuralSequentialRecommender):
    """Session/sequence GRU recommender."""

    name = "GRU4Rec"

    def __init__(self, num_users: int, num_items: int,
                 config: TrainConfig = None) -> None:
        super().__init__(num_users, num_items, config, name=self.name)
        cfg = self.config
        self.rnn = RecurrentLayer("gru", cfg.embedding_dim, cfg.hidden_dim,
                                  self.rng)
        self.project = Linear(cfg.hidden_dim, cfg.embedding_dim, self.rng)

    def user_representation(self, batch: PaddedBatch) -> Tensor:
        inputs = self.basket_input_embeddings(batch)
        _, last = self.rnn(inputs, step_mask=batch.step_mask)
        return self.project(last)
