"""VTRNN baseline (Cui et al., 2016).

A recurrent recommender whose inputs fuse side information: each step's
input is the id embedding plus a linear projection of the item's raw
features (visual/textual in the original paper; our synthetic GloVe-like or
GPS features here).  The paper's Table IV feeds it the same raw features
that Causer's encoder consumes.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import PaddedBatch
from ..nn import Linear, RecurrentLayer, Tensor
from .base import NeuralSequentialRecommender, TrainConfig


class VTRNN(NeuralSequentialRecommender):
    """GRU with side-information-fused inputs."""

    name = "VTRNN"

    def __init__(self, num_users: int, num_items: int,
                 item_features: np.ndarray, config: TrainConfig = None) -> None:
        super().__init__(num_users, num_items, config, name=self.name)
        cfg = self.config
        features = np.asarray(item_features, dtype=np.float64)
        if features.shape[0] != num_items + 1:
            raise ValueError(
                f"features must cover the padded vocabulary: expected "
                f"{num_items + 1} rows, got {features.shape[0]}")
        self.item_features = features
        self.feature_proj = Linear(features.shape[1], cfg.embedding_dim,
                                   self.rng)
        self.rnn = RecurrentLayer("gru", cfg.embedding_dim, cfg.hidden_dim,
                                  self.rng)
        self.project = Linear(cfg.hidden_dim, cfg.embedding_dim, self.rng)

    def fused_input_embeddings(self, batch: PaddedBatch) -> Tensor:
        """Id embedding + projected raw features, summed over the basket."""
        id_part = self.item_embedding(batch.items)           # (B, T, S, d)
        raw = Tensor(self.item_features[batch.items])        # (B, T, S, f)
        feat_part = self.feature_proj(raw)
        mask = Tensor(batch.basket_mask[..., None])
        return ((id_part + feat_part) * mask).sum(axis=2)

    def user_representation(self, batch: PaddedBatch) -> Tensor:
        inputs = self.fused_input_embeddings(batch)
        _, last = self.rnn(inputs, step_mask=batch.step_mask)
        return self.project(last)
