"""NCF / NeuMF baseline (He et al., 2017).

Combines generalized matrix factorization (elementwise user-item product)
with an MLP over concatenated embeddings; the two branches are fused by a
final linear layer producing an interaction logit.  Trained pointwise with
BCE and negative sampling.  Non-sequential, like BPR.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..data.interactions import EvalSample, SequenceCorpus
from ..nn import Embedding, Linear, Module, Tensor, concat, losses, make_optimizer
from .base import FitResult, Recommender, TrainConfig


class NCF(Recommender, Module):
    """Neural collaborative filtering (GMF + MLP fusion)."""

    name = "NCF"

    def __init__(self, num_users: int, num_items: int,
                 config: TrainConfig = None) -> None:
        Module.__init__(self)
        self.config = config or TrainConfig()
        self.num_users = num_users
        self.num_items = num_items
        self.rng = np.random.default_rng(self.config.seed)
        dim = self.config.embedding_dim
        self.user_gmf = Embedding(max(num_users, 1), dim, self.rng)
        self.item_gmf = Embedding(num_items + 1, dim, self.rng, padding_idx=0)
        self.user_mlp = Embedding(max(num_users, 1), dim, self.rng)
        self.item_mlp = Embedding(num_items + 1, dim, self.rng, padding_idx=0)
        self.fc1 = Linear(2 * dim, dim, self.rng)
        self.fc2 = Linear(dim, dim // 2, self.rng)
        self.fuse = Linear(dim + dim // 2, 1, self.rng)

    def interaction_logits(self, users: np.ndarray,
                           items: np.ndarray) -> Tensor:
        """Logit for each (user, item) pair; inputs are equal-shape arrays."""
        gmf = self.user_gmf(users) * self.item_gmf(items)
        mlp_in = concat([self.user_mlp(users), self.item_mlp(items)], axis=-1)
        hidden = self.fc2(self.fc1(mlp_in).relu()).relu()
        fused = self.fuse(concat([gmf, hidden], axis=-1))
        return fused.reshape(*users.shape)

    def fit(self, corpus: SequenceCorpus) -> FitResult:
        cfg = self.config
        pairs = np.asarray([(seq.user_id, item) for seq in corpus.sequences
                            for item in seq.items()], dtype=np.int64)
        if len(pairs) == 0:
            raise ValueError("NCF: empty training corpus")
        self.set_sparse_grads(cfg.sparse_grads)
        optimizer = make_optimizer(cfg.optimizer, self.parameters(),
                                   lr=cfg.learning_rate,
                                   weight_decay=cfg.weight_decay)
        result = FitResult()
        n_neg = cfg.num_negatives
        for _ in range(cfg.num_epochs):
            order = self.rng.permutation(len(pairs))
            total, count = 0.0, 0
            for start in range(0, len(pairs), cfg.batch_size):
                chunk = pairs[order[start:start + cfg.batch_size]]
                users = np.repeat(chunk[:, 0], n_neg + 1)
                items = np.empty(len(chunk) * (n_neg + 1), dtype=np.int64)
                targets = np.zeros(len(chunk) * (n_neg + 1))
                items[::n_neg + 1] = chunk[:, 1]
                targets[::n_neg + 1] = 1.0
                negatives = self.rng.integers(1, self.num_items + 1,
                                              size=(len(chunk), n_neg))
                for j in range(n_neg):
                    items[j + 1::n_neg + 1] = negatives[:, j]

                optimizer.zero_grad()
                logits = self.interaction_logits(users, items)
                loss = losses.bce_with_logits(logits, targets)
                loss.backward()
                optimizer.clip_grad_norm(cfg.grad_clip)
                optimizer.step()
                self.item_gmf.zero_padding_row()
                self.item_mlp.zero_padding_row()
                total += loss.item()
                count += 1
            result.epoch_losses.append(total / max(count, 1))
        return result

    def score_samples(self, samples: Sequence[EvalSample]) -> np.ndarray:
        self.eval()
        scores = np.zeros((len(samples), self.num_items + 1))
        all_items = np.arange(1, self.num_items + 1, dtype=np.int64)
        for row, sample in enumerate(samples):
            users = np.full(self.num_items, sample.user_id, dtype=np.int64)
            logits = self.interaction_logits(users, all_items)
            scores[row, 1:] = logits.data
        return scores
