"""Out-of-core event-log tooling: ``python -m repro.data``.

Usage::

    python -m repro.data generate --dataset baby --scale 0.05 --out logs/baby
    python -m repro.data generate --users 200000 --items 5000 --out logs/big \
        --workers 4 --users-per-shard 50000
    python -m repro.data inspect logs/baby
    python -m repro.data inspect logs/baby --head 10

``generate`` simulates a corpus straight to memmapped columnar shards
(bounded parent memory, shard-parallel with ``--workers``, bit-identical
at any worker count); ``inspect`` prints the versioned header, the shard
table and optionally the first events without loading any shard fully
into memory.  See ``docs/DATA.md`` for the on-disk format.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .datasets import DATASET_NAMES, DEFAULT_SCALE, dataset_config
from .eventlog import generate_eventlog, open_eventlog
from .synthetic import SimulatorConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.data",
        description="Generate and inspect out-of-core columnar event logs.")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="simulate a corpus straight to columnar shards")
    gen.add_argument("--out", required=True, metavar="DIR",
                     help="event-log directory to create (must not already "
                          "hold a log)")
    gen.add_argument("--dataset", choices=DATASET_NAMES, default=None,
                     help="named Table II profile; omit to size the corpus "
                          "explicitly with --users/--items")
    gen.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                     help="(--dataset) scale relative to Table II sizes")
    gen.add_argument("--users", type=int, default=None,
                     help="explicit user count (ignores --dataset/--scale)")
    gen.add_argument("--items", type=int, default=None,
                     help="explicit item count (with --users)")
    gen.add_argument("--clusters", type=int, default=10,
                     help="(--users) latent item clusters")
    gen.add_argument("--mean-length", type=float, default=8.0,
                     help="(--users) mean sequence length")
    gen.add_argument("--seed", type=int, default=0,
                     help="simulator seed; the log is a pure function of "
                          "the config+seed, regardless of --workers")
    gen.add_argument("--workers", type=int, default=None,
                     help="shard-generation processes; default CPU-aware, "
                          "0/1 = serial, any value is bit-identical")
    gen.add_argument("--users-per-shard", type=int, default=None,
                     help="users per shard (also the parallel task size); "
                          "default min(num_users, 200000)")
    gen.add_argument("--name", default=None,
                     help="corpus name recorded in the header meta")

    ins = sub.add_parser(
        "inspect", help="print header, shard table and head events")
    ins.add_argument("path", help="event-log directory")
    ins.add_argument("--head", type=int, default=0, metavar="N",
                     help="also print the first N events")
    return parser


def _generate_config(args: argparse.Namespace) -> SimulatorConfig:
    if args.users is not None:
        if args.items is None:
            raise SystemExit("error: --users requires --items")
        return SimulatorConfig(
            num_users=args.users, num_items=args.items,
            num_clusters=args.clusters,
            mean_sequence_length=args.mean_length, seed=args.seed)
    if args.dataset is None:
        raise SystemExit("error: generate needs --dataset NAME or "
                         "--users N --items M")
    return dataset_config(args.dataset, scale=args.scale, seed=args.seed)


def _run_generate(args: argparse.Namespace) -> int:
    config = _generate_config(args)
    name = args.name or (args.dataset or "synthetic")
    store = generate_eventlog(config, args.out, name=name,
                              users_per_shard=args.users_per_shard,
                              workers=args.workers)
    print(f"wrote {store.path}: {store.num_users:,} users, "
          f"{store.num_events:,} events, {store.num_baskets:,} baskets "
          f"in {store.num_shards} shard(s)")
    print(f"checksum: {store.checksum()}")
    return 0


def _run_inspect(args: argparse.Namespace) -> int:
    store = open_eventlog(args.path)
    meta = store.meta
    print(f"event log: {store.path}")
    print(f"  format: repro.eventlog v1  name={meta.get('name', '?')}  "
          f"generator={meta.get('generator', '?')}")
    print(f"  users={store.num_users:,}  items={store.num_items:,}  "
          f"events={store.num_events:,}  baskets={store.num_baskets:,}")
    corpus = store.corpus()
    print(f"  avg sequence length={corpus.average_sequence_length:.2f}  "
          f"sparsity={corpus.sparsity * 100:.2f}%")
    print(f"  shards ({store.num_shards}):")
    print(f"    {'k':>5} {'users':>10} {'baskets':>10} {'events':>12} "
          f"{'user range':>21}")
    for k, shard in enumerate(store.shards):
        print(f"    {k:>5} {shard['users']:>10,} {shard['baskets']:>10,} "
              f"{shard['events']:>12,} "
              f"{shard['user_start']:>9,}-{shard['user_stop'] - 1:<10,}")
    if args.head > 0:
        user = store.column(0, "user")
        item = store.column(0, "item")
        ts = store.column(0, "ts")
        n = min(args.head, item.shape[0])
        print(f"  first {n} events (user, basket, item):")
        for i in range(n):
            print(f"    {int(user[i]):>8} {int(ts[i]):>6} {int(item[i]):>8}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _run_generate(args)
    return _run_inspect(args)


if __name__ == "__main__":
    sys.exit(main())
