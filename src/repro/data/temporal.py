"""Regime-shift data generation for the dynamic-graph extension (§VI).

The paper's future-work note — *"the causal relation can be altered when
the interaction times are different"* — needs data whose causal structure
actually changes over time to be testable.  This module generates such
corpora: each user's sequence is produced in two phases, an *early* phase
driven by one cluster-level DAG and a *late* phase driven by another
(edge-rewired) DAG.  A static-graph model must average the two regimes; a
dynamic model can track them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from .interactions import SequenceCorpus, UserSequence
from .synthetic import (BehaviorSimulator, CauseMap, SimulatorConfig,
                        SyntheticDataset)


@dataclass
class RegimeShiftDataset(SyntheticDataset):
    """A two-phase dataset; ``cluster_graph`` holds the *late* regime."""

    early_graph: np.ndarray = None
    shift_fraction: float = 0.5


def _rewire_graph(graph: np.ndarray, rng: np.random.Generator,
                  rewire_fraction: float) -> np.ndarray:
    """Move a fraction of edges to new (still acyclic) positions."""
    from ..causal.graph import is_dag
    out = graph.copy()
    edges = list(zip(*np.nonzero(out)))
    rng.shuffle(edges)
    to_move = max(1, int(round(len(edges) * rewire_fraction)))
    k = out.shape[0]
    for source, target in edges[:to_move]:
        out[source, target] = 0
        for _ in range(20):
            i, j = rng.integers(0, k, size=2)
            if i == j or out[i, j]:
                continue
            out[i, j] = 1
            if is_dag(out):
                break
            out[i, j] = 0
    return out


def generate_regime_shift_dataset(config: SimulatorConfig,
                                  rewire_fraction: float = 0.5,
                                  shift_fraction: float = 0.5,
                                  name: str = "regime-shift"
                                  ) -> RegimeShiftDataset:
    """Generate a corpus whose causal graph changes mid-sequence.

    The first ``shift_fraction`` of each user's steps follow the *early*
    graph; the rest follow a rewired *late* graph.  Item clusters, features
    and popularity stay fixed so the shift is purely structural.
    """
    simulator = BehaviorSimulator(config, name=name)
    early_graph = simulator.cluster_graph.copy()
    late_graph = _rewire_graph(early_graph, simulator._rng, rewire_fraction)

    sequences: List[UserSequence] = []
    cause_log: List[List[CauseMap]] = []
    for user_id in range(config.num_users):
        # Phase 1: early regime.
        simulator.cluster_graph = early_graph
        simulator._root_clusters = np.nonzero(early_graph.sum(axis=0) == 0)[0]
        baskets, causes = simulator._simulate_user()
        split_at = max(1, int(round(len(baskets) * shift_fraction)))
        early_baskets, early_causes = baskets[:split_at], causes[:split_at]

        # Phase 2: late regime, continuing the same history.
        simulator.cluster_graph = late_graph
        simulator._root_clusters = np.nonzero(late_graph.sum(axis=0) == 0)[0]
        late_baskets, late_causes = simulator._simulate_user()
        keep = max(1, len(baskets) - split_at)
        baskets = list(early_baskets) + list(late_baskets[:keep])
        causes = list(early_causes) + list(late_causes[:keep])

        sequences.append(UserSequence(user_id=user_id,
                                      baskets=tuple(baskets)))
        cause_log.append(causes)

    simulator.cluster_graph = late_graph
    corpus = SequenceCorpus(num_items=config.num_items, sequences=sequences)
    from .features import gps_like_features, text_like_features
    safe_clusters = simulator.cluster_of_item * (simulator.cluster_of_item >= 0)
    if config.feature_kind == "text":
        features = text_like_features(safe_clusters, config.feature_dim,
                                      simulator._rng)
    else:
        features = gps_like_features(safe_clusters, simulator._rng)
    features[0] = 0.0
    return RegimeShiftDataset(
        name=name, config=config, corpus=corpus, features=features,
        cluster_of_item=simulator.cluster_of_item,
        cluster_graph=late_graph, cause_log=cause_log,
        early_graph=early_graph, shift_fraction=shift_fraction)


def graph_change_magnitude(dataset: RegimeShiftDataset) -> float:
    """Fraction of edge slots that differ between the two regimes."""
    diff = (dataset.early_graph != dataset.cluster_graph)
    k = dataset.early_graph.shape[0]
    off_diagonal = k * (k - 1)
    return float(diff.sum()) / max(off_diagonal, 1)
