"""Dataset statistics: the paper's Table II and Fig. 3.

Computes the five summary columns (users, items, interactions, average
sequence length, sparsity) and the sequence-length histograms plotted in
Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .interactions import SequenceCorpus


@dataclass(frozen=True)
class DatasetStatistics:
    """One Table II row."""

    name: str
    num_users: int
    num_items: int
    num_interactions: int
    average_sequence_length: float
    sparsity: float

    def as_row(self) -> Tuple:
        return (self.name, self.num_users, self.num_items,
                self.num_interactions, round(self.average_sequence_length, 2),
                f"{self.sparsity * 100:.2f}%")


def compute_statistics(name: str, corpus: SequenceCorpus) -> DatasetStatistics:
    """Compute the Table II row for a corpus."""
    return DatasetStatistics(
        name=name,
        num_users=corpus.num_users,
        num_items=corpus.num_items,
        num_interactions=corpus.num_interactions,
        average_sequence_length=corpus.average_sequence_length,
        sparsity=corpus.sparsity,
    )


def sequence_length_histogram(corpus: SequenceCorpus,
                              bins: Sequence[int] = (1, 2, 3, 4, 5, 8, 12, 20, 50, 10**9)
                              ) -> Dict[str, int]:
    """Fig. 3 data: counts of users per sequence-length bucket.

    ``bins`` are right-open bucket edges; the label of a bucket with edges
    ``(a, b)`` is ``"a-b-1"`` or ``"a"`` for unit buckets and ``"a+"`` for
    the unbounded tail.
    """
    lengths = corpus.sequence_lengths()
    histogram: Dict[str, int] = {}
    for lo, hi in zip(bins[:-1], bins[1:]):
        if hi >= 10**8:
            label = f"{lo}+"
            count = int((lengths >= lo).sum())
        elif hi - lo == 1:
            label = str(lo)
            count = int((lengths == lo).sum())
        else:
            label = f"{lo}-{hi - 1}"
            count = int(((lengths >= lo) & (lengths < hi)).sum())
        histogram[label] = count
    return histogram


def basket_size_distribution(corpus: SequenceCorpus) -> Dict[int, int]:
    """Counts of baskets per basket size (diagnostic for next-basket data).

    One ``bincount`` over the basket widths; out-of-core corpora
    (``repro.data.eventlog``) count widths shard-by-shard instead of
    iterating Python baskets.
    """
    if hasattr(corpus, "basket_size_counts"):
        counts = corpus.basket_size_counts()
    else:
        widths = np.fromiter(
            (len(basket) for seq in corpus.sequences
             for basket in seq.baskets), dtype=np.int64)
        counts = np.bincount(widths) if widths.size else widths
    return {size: int(count) for size, count in enumerate(counts)
            if size > 0 and count > 0}


def compare_to_paper(stats: DatasetStatistics,
                     paper_row: Dict[str, float]) -> Dict[str, float]:
    """Ratio of measured to paper statistics (1.0 = exact match).

    Used in EXPERIMENTS.md to document how faithfully the scaled synthetic
    profile tracks the real dataset's shape.
    """
    return {
        "users_ratio": stats.num_users / paper_row["users"],
        "items_ratio": stats.num_items / paper_row["items"],
        "interactions_ratio": stats.num_interactions / paper_row["interactions"],
        "seqlen_ratio": stats.average_sequence_length / paper_row["seqlen"],
        "sparsity_gap": stats.sparsity - paper_row["sparsity"],
    }
