"""Explanation-evaluation dataset (the paper's §V-E labeled set).

The paper hand-labels 793 test samples from Amazon-Baby: for each sample,
workers mark up to three history items that truly caused the target item
(on average 1.8 causes per sample survive the three-worker agreement
filter).  Our simulator records the true trigger of every causally-generated
event, so we can derive an equivalent labeled set mechanically:

* keep test samples whose steps are all singletons (the paper's "easy
  labeling" filter),
* label the *actual triggers* recorded during generation, falling back to
  cluster-level true causes, capped at 3 per sample,
* drop samples with no causal item in the history (workers would not have
  agreed on any label).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .interactions import EvalSample
from .synthetic import SyntheticDataset


@dataclass(frozen=True)
class ExplanationSample:
    """A labeled test case: history, target item, and true cause items."""

    user_id: int
    history: Tuple[Tuple[int, ...], ...]
    target_item: int
    cause_items: Tuple[int, ...]

    @property
    def history_items(self) -> Tuple[int, ...]:
        return tuple(item for basket in self.history for item in basket)


def build_explanation_dataset(dataset: SyntheticDataset,
                              max_samples: int = 793,
                              max_causes: int = 3,
                              singleton_only: bool = True,
                              rng: Optional[np.random.Generator] = None
                              ) -> List[ExplanationSample]:
    """Derive the labeled explanation set from the simulator's ground truth.

    Mirrors the paper's protocol on the Baby dataset: the *last* step of each
    user's sequence is the explanation target, the earlier steps are the
    history to pick causes from.
    """
    rng = rng or np.random.default_rng(0)
    candidates: List[ExplanationSample] = []
    for seq, causes in zip(dataset.corpus.sequences, dataset.cause_log):
        if seq.length < 3:
            continue
        if singleton_only and any(len(b) != 1 for b in seq.baskets):
            continue
        target_step = seq.length - 1
        target_basket = seq.baskets[target_step]
        target_item = target_basket[0]
        history = seq.baskets[:target_step]
        history_items = [item for basket in history for item in basket]

        # The recorded trigger ranks first (the item the generator actually
        # followed), then other cluster-level true causes, most recent first
        # — approximating how workers would mark "most likely" causes.
        recorded = causes[target_step].get(target_item, ())
        labels = [item for item in recorded if item in history_items]
        cluster_causes = dataset.true_causes_in_history(history_items,
                                                        target_item)
        labels.extend(dict.fromkeys(reversed(cluster_causes)))
        labels = list(dict.fromkeys(labels))[:max_causes]
        if not labels:
            continue
        candidates.append(ExplanationSample(
            user_id=seq.user_id, history=history, target_item=target_item,
            cause_items=tuple(labels)))

    if len(candidates) > max_samples:
        picked = rng.choice(len(candidates), size=max_samples, replace=False)
        candidates = [candidates[i] for i in sorted(picked)]
    return candidates


def average_causes_per_sample(samples: Sequence[ExplanationSample]) -> float:
    """The paper reports 1.8 for their labeled set; we report ours alongside."""
    if not samples:
        return 0.0
    return float(np.mean([len(s.cause_items) for s in samples]))


def to_eval_samples(samples: Sequence[ExplanationSample]) -> List[EvalSample]:
    """View explanation samples as ordinary eval samples (singleton target)."""
    return [EvalSample(user_id=s.user_id, history=s.history,
                       target=(s.target_item,)) for s in samples]
