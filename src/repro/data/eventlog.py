"""Out-of-core columnar event log: memmapped shards + streaming views.

The in-memory :class:`~repro.data.interactions.SequenceCorpus` holds every
interaction as nested Python tuples — fine at Table II scale, linear RSS at
10M+ interactions.  This module stores the same data column-wise on disk
and streams it:

* **Layout** — a directory of npy shards plus a versioned ``header.json``
  (written through :func:`repro.io.write_json_header`).  Shard ``k`` holds
  six columns, all loaded with ``np.load(mmap_mode="r")``:

  ========================  =======  ====================================
  file                      dtype    contents
  ========================  =======  ====================================
  ``shard-K.user.npy``      int64    user id of each event          (E,)
  ``shard-K.item.npy``      int32    item id of each event          (E,)
  ``shard-K.ts.npy``        int32    basket index within the user   (E,)
  ``shard-K.offsets.npy``   int64    per-user event offsets         (U+1,)
  ``shard-K.boffsets.npy``  int64    per-basket event offsets       (B+1,)
  ``shard-K.uboffsets.npy`` int64    per-user basket offsets        (U+1,)
  ========================  =======  ====================================

  Events are grouped by user (user ids strictly increasing across the
  log, so a user never spans shards) and ordered by basket; consecutive
  events with equal ``ts`` form one basket.  The three offset indices
  make every per-user / per-basket access a pair of O(1) memmap reads —
  no scan, no ``np.diff`` over event columns.

* **Writer** — :class:`EventLogWriter` buffers at most one shard of
  columns, so writing an arbitrarily large log needs memory proportional
  to ``shard_events``, not the corpus.

* **Views** — :class:`EventLogCorpus` duck-types ``SequenceCorpus``
  (statistics, iteration, splits); :func:`~repro.data.interactions.
  leave_one_out_split` and :func:`~repro.data.interactions.
  training_prefixes` dispatch to :meth:`EventLogCorpus.streaming_split` /
  :meth:`EventLogCorpus.prefix_samples`, and
  :func:`~repro.data.batching.iterate_batches` calls
  :meth:`PrefixSampleView.gather_batch` to assemble ``PaddedBatch``es
  directly from the memmaps — trainers, eval and the online trainer run
  unchanged on either backend.

* **Generation** — :func:`generate_eventlog` fans
  ``BehaviorSimulator._simulate_user`` over ``repro.parallel`` with
  per-user ``SeedSequence`` streams (see
  :meth:`~repro.data.synthetic.BehaviorSimulator.user_rng`), so serial
  and parallel runs produce byte-identical shards at any worker count.

Memmap hygiene: never call ``np.asarray``/``np.array`` on a whole column
(gradlint GL008) — it silently materializes the file and re-inflates RSS.
Fancy-indexing a memmap with a bounded index array is the sanctioned way
to touch it: the copy is the size of the request, not the file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pathlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .batching import PaddedBatch, _exclusive_cumsum, _segmented_arange
from .interactions import PAD_ITEM, EvalSample, Split, UserSequence
from .synthetic import BehaviorSimulator, SimulatorConfig

__all__ = [
    "EVENTLOG_FORMAT", "EVENTLOG_VERSION", "EventLogWriter", "EventLogStore",
    "EventLogCorpus", "EventLogDataset", "EvalSampleView", "PrefixSampleView",
    "generate_eventlog", "load_eventlog_dataset", "open_eventlog",
]

EVENTLOG_FORMAT = "repro.eventlog"
EVENTLOG_VERSION = 1

_COLUMN_DTYPES = {
    "user": "int64", "item": "int32", "ts": "int32",
    "offsets": "int64", "boffsets": "int64", "uboffsets": "int64",
}

PathLike = Union[str, pathlib.Path]


def _shard_file(k: int, column: str) -> str:
    return f"shard-{k:05d}.{column}.npy"


# ======================================================================
# Writer
# ======================================================================
class EventLogWriter:
    """Streams (user, baskets) records into columnar shards.

    Memory is bounded by one shard: buffers flush to disk whenever the
    buffered event count reaches ``shard_events`` (always at a user
    boundary).  Pass ``shard_events=None`` to disable the automatic
    flush and cut shards manually with :meth:`flush` — the generator
    does this so shard boundaries are fixed user ranges, independent of
    realized sequence lengths and of the worker count.
    """

    def __init__(self, path: PathLike, num_items: int,
                 shard_events: Optional[int] = 1_000_000,
                 meta: Optional[Dict] = None) -> None:
        if num_items < 1:
            raise ValueError("num_items must be positive")
        if shard_events is not None and shard_events < 1:
            raise ValueError("shard_events must be positive or None")
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        if (self.path / "header.json").exists():
            raise FileExistsError(
                f"{self.path} already contains an event log; refusing to "
                f"overwrite (delete the directory to regenerate)")
        self.num_items = int(num_items)
        self.shard_events = shard_events
        self.meta = dict(meta or {})
        self._shards: List[Dict] = []
        self._closed = False
        self._last_user = -1
        self._num_users = 0
        self._num_events = 0
        self._num_baskets = 0
        self._reset_buffers()

    def _reset_buffers(self) -> None:
        self._buf_uids: List[int] = []
        self._buf_items: List[np.ndarray] = []
        self._buf_ts: List[np.ndarray] = []
        self._buf_widths: List[np.ndarray] = []
        self._buf_event_counts: List[int] = []
        self._buf_basket_counts: List[int] = []
        self._buf_events = 0

    # ------------------------------------------------------------------
    def add_user(self, user_id: int,
                 baskets: Sequence[Sequence[int]]) -> None:
        """Append one user's chronological baskets (Python-object path)."""
        widths = np.fromiter((len(b) for b in baskets), dtype=np.int64,
                             count=len(baskets))
        if len(widths) and widths.min() == 0:
            raise ValueError("baskets must be non-empty")
        items = np.fromiter((i for b in baskets for i in b), dtype=np.int32,
                            count=int(widths.sum()))
        ts = np.repeat(np.arange(len(baskets), dtype=np.int32), widths)
        self.add_user_columns(user_id, items, ts)

    def add_user_columns(self, user_id: int, items: np.ndarray,
                         ts: np.ndarray) -> None:
        """Append one user from pre-built columns.

        ``items`` are 1-based item ids; ``ts`` is the basket index of
        each event (starting at 0, increasing by 0 or 1 between
        consecutive events).
        """
        if self._closed:
            raise ValueError("writer is closed")
        user_id = int(user_id)
        if user_id <= self._last_user:
            raise ValueError(
                f"user ids must be strictly increasing (got {user_id} "
                f"after {self._last_user})")
        items = items.astype(np.int32, copy=False)
        ts = ts.astype(np.int32, copy=False)
        if items.shape != ts.shape or items.ndim != 1 or items.size == 0:
            raise ValueError("items/ts must be equal-length non-empty 1-D")
        if int(items.min()) <= PAD_ITEM or int(items.max()) > self.num_items:
            raise ValueError(
                f"item ids must lie in [1, {self.num_items}]")
        if int(ts[0]) != 0:
            raise ValueError("ts must start at basket index 0")
        steps = np.diff(ts)
        if steps.size and (int(steps.min()) < 0 or int(steps.max()) > 1):
            raise ValueError("ts must be dense basket indices "
                             "(consecutive events differ by 0 or 1)")
        num_baskets = int(ts[-1]) + 1
        widths = np.bincount(ts, minlength=num_baskets).astype(np.int64)

        self._buf_uids.append(user_id)
        self._buf_items.append(items)
        self._buf_ts.append(ts)
        self._buf_widths.append(widths)
        self._buf_event_counts.append(items.size)
        self._buf_basket_counts.append(num_baskets)
        self._buf_events += items.size
        self._last_user = user_id
        self._num_users += 1
        self._num_events += items.size
        self._num_baskets += num_baskets
        if self.shard_events is not None and self._buf_events >= self.shard_events:
            self.flush()

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write buffered users as the next shard (no-op when empty)."""
        if not self._buf_uids:
            return
        k = len(self._shards)
        uids = np.array(self._buf_uids, dtype=np.int64)
        event_counts = np.array(self._buf_event_counts, dtype=np.int64)
        basket_counts = np.array(self._buf_basket_counts, dtype=np.int64)
        user_col = np.repeat(uids, event_counts)
        item_col = np.concatenate(self._buf_items)
        ts_col = np.concatenate(self._buf_ts)
        offsets = _exclusive_cumsum(event_counts)
        boffsets = _exclusive_cumsum(np.concatenate(self._buf_widths))
        uboffsets = _exclusive_cumsum(basket_counts)
        for name, col in (("user", user_col), ("item", item_col),
                          ("ts", ts_col), ("offsets", offsets),
                          ("boffsets", boffsets), ("uboffsets", uboffsets)):
            np.save(self.path / _shard_file(k, name), col)
        self._shards.append({
            "events": int(event_counts.sum()),
            "users": int(len(uids)),
            "baskets": int(basket_counts.sum()),
            "user_start": int(uids[0]),
            "user_stop": int(uids[-1]) + 1,
        })
        self._reset_buffers()

    def close(self) -> "EventLogStore":
        """Flush the tail shard, write the header, return a reader."""
        if self._closed:
            return EventLogStore(self.path)
        self.flush()
        if not self._shards:
            raise ValueError("cannot close an event log with zero events")
        payload = {
            "num_items": self.num_items,
            "num_users": self._num_users,
            "num_events": self._num_events,
            "num_baskets": self._num_baskets,
            "num_shards": len(self._shards),
            "columns": dict(_COLUMN_DTYPES),
            "shards": self._shards,
            "meta": self.meta,
        }
        from ..io import write_json_header
        write_json_header(self.path / "header.json", EVENTLOG_FORMAT,
                          EVENTLOG_VERSION, payload)
        self._closed = True
        return EventLogStore(self.path)

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, exc_type, *_exc) -> None:
        if exc_type is None:
            self.close()


# ======================================================================
# Store (reader)
# ======================================================================
class EventLogStore:
    """Read side of a columnar event log: lazily memmapped shards.

    Opening a store reads only ``header.json``; columns fault in on
    first touch and stay evictable (``mmap_mode="r"``).
    """

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)
        from ..io import read_json_header
        header = read_json_header(self.path / "header.json",
                                  EVENTLOG_FORMAT, EVENTLOG_VERSION)
        self.num_items = int(header["num_items"])
        self.num_users = int(header["num_users"])
        self.num_events = int(header["num_events"])
        self.num_baskets = int(header["num_baskets"])
        self.shards: List[Dict] = list(header["shards"])
        self.meta: Dict = dict(header.get("meta") or {})
        self.num_shards = len(self.shards)
        self._user_cum = _exclusive_cumsum(
            np.array([s["users"] for s in self.shards], dtype=np.int64))
        self._columns: Dict[Tuple[int, str], np.ndarray] = {}
        self._uids: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def column(self, k: int, name: str) -> np.ndarray:
        """Shard ``k``'s column ``name`` as a read-only memmap (cached)."""
        key = (k, name)
        if key not in self._columns:
            if name not in _COLUMN_DTYPES:
                raise KeyError(f"unknown column {name!r}")
            self._columns[key] = np.load(self.path / _shard_file(k, name),
                                         mmap_mode="r")
        return self._columns[key]

    def user_ids(self, k: int) -> np.ndarray:
        """User ids of shard ``k`` (small materialized array, cached)."""
        if k not in self._uids:
            offsets = self.column(k, "offsets")
            self._uids[k] = self.column(k, "user")[offsets[:-1]]
        return self._uids[k]

    def locate(self, gids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Global user index -> (shard index, local user index), vectorized."""
        k = np.searchsorted(self._user_cum, gids, side="right") - 1
        return k, gids - self._user_cum[k]

    def user_events(self, gid: int) -> Tuple[int, np.ndarray, np.ndarray]:
        """One user's ``(user_id, items, ts)`` as memmap slices."""
        k, u = self.locate(np.array([gid], dtype=np.int64))
        k, u = int(k[0]), int(u[0])
        offsets = self.column(k, "offsets")
        start, stop = int(offsets[u]), int(offsets[u + 1])
        return (int(self.user_ids(k)[u]),
                self.column(k, "item")[start:stop],
                self.column(k, "ts")[start:stop])

    def iter_users(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(user_id, items, ts)`` per user, one shard at a time."""
        for k in range(self.num_shards):
            offsets = self.column(k, "offsets")
            items = self.column(k, "item")
            ts = self.column(k, "ts")
            uids = self.user_ids(k)
            for u in range(len(uids)):
                start, stop = int(offsets[u]), int(offsets[u + 1])
                yield int(uids[u]), items[start:stop], ts[start:stop]

    # ------------------------------------------------------------------
    def features(self) -> Optional[np.ndarray]:
        """Item raw features, when generated with them (else ``None``)."""
        path = self.path / "features.npy"
        return np.load(path) if path.exists() else None

    def truth(self) -> Optional[Dict[str, np.ndarray]]:
        """Ground-truth causal annotations, when present."""
        path = self.path / "truth.npz"
        if not path.exists():
            return None
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}

    def checksum(self) -> str:
        """SHA-256 over every shard file's bytes, in shard/column order.

        Serial and shard-parallel generation of the same config must
        produce equal checksums — the bit-identity contract.
        """
        digest = hashlib.sha256()
        for k in range(self.num_shards):
            for name in sorted(_COLUMN_DTYPES):
                with open(self.path / _shard_file(k, name), "rb") as fh:
                    for chunk in iter(lambda: fh.read(1 << 20), b""):
                        digest.update(chunk)
        return digest.hexdigest()

    def corpus(self) -> "EventLogCorpus":
        return EventLogCorpus(self)


def open_eventlog(path: PathLike) -> EventLogStore:
    """Open an existing on-disk event log."""
    return EventLogStore(path)


# ======================================================================
# Corpus view (duck-types SequenceCorpus)
# ======================================================================
class EventLogCorpus:
    """A streaming corpus over an :class:`EventLogStore`.

    ``holdout > 0`` hides the last ``holdout`` baskets of every user
    with at least ``min_length`` baskets — exactly the users
    :func:`~repro.data.interactions.leave_one_out_split` trims — without
    rewriting any data.  All statistics and views honor the holdout.

    Peak memory is O(num_users) for the offset indices (a few int64 per
    user), never O(num_events).
    """

    def __init__(self, store: EventLogStore, holdout: int = 0,
                 min_length: int = 3) -> None:
        if holdout < 0:
            raise ValueError("holdout must be non-negative")
        self.store = store
        self.holdout = int(holdout)
        self.min_length = int(min_length)
        self._full_lengths: Optional[np.ndarray] = None
        self._train_lengths: Optional[np.ndarray] = None

    # -- lengths ---------------------------------------------------------
    def full_lengths(self) -> np.ndarray:
        """Basket count per user before any holdout (global, O(U))."""
        if self._full_lengths is None:
            parts = [np.diff(self.store.column(k, "uboffsets"))
                     for k in range(self.store.num_shards)]
            self._full_lengths = np.concatenate(parts).astype(np.int64)
        return self._full_lengths

    def lengths(self) -> np.ndarray:
        """Basket count per user after the holdout."""
        if self._train_lengths is None:
            full = self.full_lengths()
            if self.holdout == 0:
                self._train_lengths = full
            else:
                trimmed = full - self.holdout * (full >= self.min_length)
                self._train_lengths = np.maximum(trimmed, 0)
        return self._train_lengths

    # -- SequenceCorpus-compatible statistics ---------------------------
    @property
    def num_items(self) -> int:
        return self.store.num_items

    @property
    def num_users(self) -> int:
        return self.store.num_users

    @property
    def num_interactions(self) -> int:
        if self.holdout == 0:
            return self.store.num_events
        total = 0
        cum = self.store._user_cum
        lengths = self.lengths()
        for k in range(self.store.num_shards):
            ubo = self.store.column(k, "uboffsets")
            bo = self.store.column(k, "boffsets")
            local = lengths[cum[k]:cum[k + 1]]
            bstart = ubo[:-1]
            total += int((bo[bstart + local] - bo[bstart]).sum())
        return total

    @property
    def average_sequence_length(self) -> float:
        lengths = self.lengths()
        return float(lengths.mean()) if lengths.size else 0.0

    @property
    def sparsity(self) -> float:
        if self.num_users == 0 or self.num_items == 0:
            return 1.0
        return 1.0 - self.num_interactions / (self.num_users * self.num_items)

    def sequence_lengths(self) -> np.ndarray:
        return self.lengths().copy()

    def item_popularity(self) -> np.ndarray:
        """Interaction count per item, streamed shard-by-shard."""
        counts = np.zeros(self.num_items + 1, dtype=np.int64)
        cum = self.store._user_cum
        lengths = self.lengths()
        for k in range(self.store.num_shards):
            items = self.store.column(k, "item")
            if self.holdout == 0:
                # Chunked bincount: each slice copies at most one chunk.
                for start in range(0, items.shape[0], 1 << 20):
                    chunk = items[start:start + (1 << 20)]
                    counts += np.bincount(chunk,
                                          minlength=self.num_items + 1)
            else:
                ts = self.store.column(k, "ts")
                offsets = self.store.column(k, "offsets")
                local = lengths[cum[k]:cum[k + 1]]
                per_user_events = np.diff(offsets)
                limit = np.repeat(local, per_user_events)
                keep = ts[:] < limit
                counts += np.bincount(items[:][keep],
                                      minlength=self.num_items + 1)
        return counts

    def basket_size_counts(self) -> np.ndarray:
        """``out[s]`` = number of (kept) baskets with ``s`` items."""
        counts = np.zeros(1, dtype=np.int64)
        cum = self.store._user_cum
        lengths = self.lengths()
        for k in range(self.store.num_shards):
            bo = self.store.column(k, "boffsets")
            ubo = self.store.column(k, "uboffsets")
            widths = np.diff(bo)
            per_user_baskets = np.diff(ubo)
            t = _segmented_arange(per_user_baskets)
            local = lengths[cum[k]:cum[k + 1]]
            keep = t < np.repeat(local, per_user_baskets)
            shard_counts = np.bincount(widths[keep])
            if shard_counts.size > counts.size:
                shard_counts[:counts.size] += counts
                counts = shard_counts
            else:
                counts[:shard_counts.size] += shard_counts
        return counts

    # -- iteration (compatibility path; O(1) memory per user) -----------
    def __len__(self) -> int:
        return self.num_users

    def __iter__(self) -> Iterator[UserSequence]:
        lengths = self.lengths()
        for gid, (uid, items, ts) in enumerate(self.store.iter_users()):
            keep = int(lengths[gid])
            baskets = _baskets_from_columns(items, ts, keep)
            if baskets:
                yield UserSequence(user_id=uid, baskets=baskets)

    # -- streaming splits and samples -----------------------------------
    def streaming_split(self, min_length: int = 3) -> Split:
        """Leave-one-out split without materializing anything.

        Mirrors :func:`~repro.data.interactions.leave_one_out_split`:
        last basket of every eligible user -> test, second-last ->
        validation, both removed from the training view.
        """
        if self.holdout:
            raise ValueError("cannot re-split a corpus that already holds "
                             "out baskets")
        train = EventLogCorpus(self.store, holdout=2, min_length=min_length)
        return Split(
            train=train,
            validation=EvalSampleView(self, "validation", min_length),
            test=EvalSampleView(self, "test", min_length),
        )

    def prefix_samples(self, max_history: Optional[int] = None
                       ) -> "PrefixSampleView":
        """Lazy (history, next-basket) training samples over this view."""
        return PrefixSampleView(self, max_history=max_history)


def _baskets_from_columns(items: np.ndarray, ts: np.ndarray,
                          keep: int) -> Tuple[Tuple[int, ...], ...]:
    """First ``keep`` baskets of one user's columns, as nested tuples."""
    if keep <= 0:
        return ()
    stop = int(np.searchsorted(ts, keep, side="left"))
    items = items[:stop]
    ts = ts[:stop]
    bounds = np.flatnonzero(np.diff(ts)) + 1
    return tuple(tuple(int(i) for i in part)
                 for part in np.split(items, bounds))


# ======================================================================
# Lazy sample views
# ======================================================================
class EvalSampleView:
    """Lazy sequence of held-out :class:`EvalSample`s (validation/test)."""

    def __init__(self, corpus: EventLogCorpus, kind: str,
                 min_length: int = 3) -> None:
        if kind not in ("validation", "test"):
            raise ValueError("kind must be 'validation' or 'test'")
        self.corpus = corpus
        self.kind = kind
        self.min_length = int(min_length)
        lengths = corpus.full_lengths()
        self._gids = np.flatnonzero(lengths >= self.min_length)

    def __len__(self) -> int:
        return int(self._gids.size)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        index = int(index)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        gid = int(self._gids[index])
        uid, items, ts = self.corpus.store.user_events(gid)
        baskets = _baskets_from_columns(items, ts, int(ts[-1]) + 1)
        cut = -1 if self.kind == "test" else -2
        return EvalSample(user_id=uid, history=baskets[:cut],
                          target=baskets[cut])

    def __iter__(self) -> Iterator[EvalSample]:
        for i in range(len(self)):
            yield self[i]


class PrefixSampleView:
    """Lazy training-prefix samples with a vectorized batch gather.

    Sample order is exactly
    ``training_prefixes(leave_one_out_split(corpus).train)``: users in id
    order, step ``j`` ascending — so shuffled epochs (driven by the same
    RNG) visit identical samples on both backends.

    ``__getitem__`` builds one :class:`EvalSample` from memmap slices;
    :meth:`gather_batch` assembles a whole :class:`PaddedBatch` in a
    handful of vectorized gathers and is the path
    :func:`~repro.data.batching.iterate_batches` uses.
    """

    def __init__(self, corpus: EventLogCorpus,
                 max_history: Optional[int] = None) -> None:
        self.corpus = corpus
        self.max_history = max_history
        lengths = corpus.lengths()
        self._sample_cum = _exclusive_cumsum(np.maximum(lengths - 1, 0))

    def __len__(self) -> int:
        return int(self._sample_cum[-1])

    def _locate(self, indices: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample index -> (user gid, history start j0, target step j)."""
        gids = np.searchsorted(self._sample_cum, indices, side="right") - 1
        j = indices - self._sample_cum[gids] + 1
        if self.max_history is None:
            j0 = np.zeros_like(j)
        else:
            j0 = np.maximum(j - self.max_history, 0)
        return gids, j0, j

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        index = int(index)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        idx = np.array([index], dtype=np.int64)
        gids, j0, j = self._locate(idx)
        uid, items, ts = self.corpus.store.user_events(int(gids[0]))
        baskets = _baskets_from_columns(items, ts, int(j[0]) + 1)
        return EvalSample(user_id=uid,
                          history=baskets[int(j0[0]):int(j[0])],
                          target=baskets[int(j[0])])

    def __iter__(self) -> Iterator[EvalSample]:
        for i in range(len(self)):
            yield self[i]

    # ------------------------------------------------------------------
    def gather_batch(self, indices: np.ndarray,
                     max_history: Optional[int] = None) -> PaddedBatch:
        """Assemble ``pad_samples([self[i] for i in indices])`` directly.

        Bit-identical to the in-memory path (same dtypes, same padding
        geometry) but built from a constant number of numpy operations
        per shard touched: basket offsets are looked up through the
        on-disk index, events arrive via one fancy-indexed gather per
        shard, and values scatter into the padded arrays in one
        assignment.
        """
        idx = np.array(indices, dtype=np.int64)
        if idx.size == 0:
            raise ValueError("cannot gather an empty batch")
        store = self.corpus.store
        if max_history is None:
            max_history = self.max_history
        gids, j0, j = self._locate(idx)
        if max_history is not None:
            j0 = np.maximum(j - max_history, 0)
        T = j - j0                       # history steps per row
        shard_of, local_u = store.locate(gids)

        # Pass 1: per-shard basket widths (history + target) via the
        # offset indices; global padding geometry falls out of the maxes.
        per_shard = []
        for k in np.unique(shard_of):
            sel = np.flatnonzero(shard_of == k)
            bo = store.column(int(k), "boffsets")
            ubo = store.column(int(k), "uboffsets")
            first_basket = ubo[local_u[sel]]
            t_counts = T[sel]
            bidx = np.repeat(first_basket + j0[sel], t_counts) \
                + _segmented_arange(t_counts)
            bstart = bo[bidx]
            widths = bo[bidx + 1] - bstart
            tgt = first_basket + j[sel]
            pstart = bo[tgt]
            pwidths = bo[tgt + 1] - pstart
            per_shard.append((int(k), sel, bstart, widths, pstart, pwidths))

        max_time = int(T.max())
        max_slot = max(int(w.max()) for _, _, _, w, _, _ in per_shard)
        max_pos = max(int(pw.max()) for _, _, _, _, _, pw in per_shard)

        batch = idx.size
        users = np.zeros(batch, dtype=np.int64)
        items = np.zeros((batch, max_time, max_slot), dtype=np.int64)
        basket_mask = np.zeros((batch, max_time, max_slot), dtype=np.float64)
        positives = np.zeros((batch, max_pos), dtype=np.int64)
        positive_mask = np.zeros((batch, max_pos), dtype=np.float64)
        step_mask = np.arange(max_time)[None, :] < T[:, None]

        # Pass 2: gather event values and scatter them into place.
        for k, sel, bstart, widths, pstart, pwidths in per_shard:
            item_col = store.column(k, "item")
            t_counts = T[sel]
            row_of_basket = np.repeat(sel, t_counts)
            t_of_basket = _segmented_arange(t_counts)
            slot = _segmented_arange(widths)
            ev = np.repeat(bstart, widths) + slot
            rows_e = np.repeat(row_of_basket, widths)
            t_e = np.repeat(t_of_basket, widths)
            values = item_col[ev]
            items[rows_e, t_e, slot] = values
            basket_mask[rows_e, t_e, slot] = 1.0

            pslot = _segmented_arange(pwidths)
            pev = np.repeat(pstart, pwidths) + pslot
            rows_p = np.repeat(sel, pwidths)
            positives[rows_p, pslot] = item_col[pev]
            positive_mask[rows_p, pslot] = 1.0

            users[sel] = store.user_ids(k)[local_u[sel]]

        return PaddedBatch(users=users, items=items, basket_mask=basket_mask,
                           step_mask=step_mask, positives=positives,
                           positive_mask=positive_mask)


# ======================================================================
# Shard-parallel synthetic generation
# ======================================================================
def _simulate_shard_columns(sim: BehaviorSimulator, user_start: int,
                            user_stop: int
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Simulate a contiguous user range into concatenated columns.

    Every user draws from its own keyed stream
    (:meth:`BehaviorSimulator.user_rng`), so the output depends only on
    ``(config, user range)`` — not on which process runs it.
    """
    items_parts: List[np.ndarray] = []
    ts_parts: List[np.ndarray] = []
    event_counts = np.zeros(user_stop - user_start, dtype=np.int64)
    for offset, user_id in enumerate(range(user_start, user_stop)):
        baskets, _causes = sim._simulate_user(sim.user_rng(user_id))
        widths = np.fromiter((len(b) for b in baskets), dtype=np.int64,
                             count=len(baskets))
        flat = np.fromiter((i for b in baskets for i in b), dtype=np.int32,
                           count=int(widths.sum()))
        items_parts.append(flat)
        ts_parts.append(np.repeat(np.arange(len(baskets), dtype=np.int32),
                                  widths))
        event_counts[offset] = flat.size
    return (np.concatenate(items_parts), np.concatenate(ts_parts),
            event_counts)


def _simulate_shard_task(spec) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Module-level (picklable) worker task: one generation shard."""
    config, name, user_start, user_stop = spec
    sim = BehaviorSimulator(config, name=name)
    return _simulate_shard_columns(sim, user_start, user_stop)


def _write_shard(writer: EventLogWriter, user_start: int,
                 columns: Tuple[np.ndarray, np.ndarray, np.ndarray]) -> None:
    items, ts, event_counts = columns
    offsets = _exclusive_cumsum(event_counts)
    for offset in range(len(event_counts)):
        start, stop = int(offsets[offset]), int(offsets[offset + 1])
        writer.add_user_columns(user_start + offset, items[start:stop],
                                ts[start:stop])
    writer.flush()


def generate_eventlog(config: SimulatorConfig, path: PathLike, *,
                      name: str = "synthetic",
                      users_per_shard: Optional[int] = None,
                      workers: Optional[int] = None,
                      timeout: Optional[float] = None) -> EventLogStore:
    """Generate a synthetic corpus straight to a columnar event log.

    Shards are fixed contiguous user ranges (``users_per_shard`` wide);
    workers simulate ranges with per-user seeded streams and the parent
    writes shards in order — so any worker count (including the serial
    in-process path) produces byte-identical files.  Parent memory is
    bounded by one *wave* of ``workers`` shards, not the corpus.

    The matching in-memory corpus is ``BehaviorSimulator(config,
    name).generate(user_seeds=True)``; per-event cause annotations are
    not stored at event-log scale (use the in-memory generator for
    explanation evaluation).
    """
    config = dataclasses.replace(config)
    sim = BehaviorSimulator(config, name=name)
    if users_per_shard is None:
        users_per_shard = max(1, min(config.num_users, 200_000))
    ranges = [(start, min(start + users_per_shard, config.num_users))
              for start in range(0, config.num_users, users_per_shard)]
    meta = {
        "name": name,
        "generator": "repro.data.eventlog.generate_eventlog",
        "config": dataclasses.asdict(config),
        "users_per_shard": int(users_per_shard),
    }
    writer = EventLogWriter(path, config.num_items, shard_events=None,
                            meta=meta)
    from ..parallel.pool import resolve_workers
    resolved = resolve_workers(workers, len(ranges))
    if resolved <= 1 or len(ranges) == 1:
        for user_start, user_stop in ranges:
            _write_shard(writer, user_start,
                         _simulate_shard_columns(sim, user_start, user_stop))
    else:
        from ..parallel.adapters import generate_shards_parallel
        # Waves bound parent memory to ~``workers`` shards of columns.
        for wave_start in range(0, len(ranges), resolved):
            wave = ranges[wave_start:wave_start + resolved]
            results = generate_shards_parallel(config, name, wave,
                                               workers=resolved,
                                               timeout=timeout)
            for (user_start, _), columns in zip(wave, results):
                _write_shard(writer, user_start, columns)
    np.save(writer.path / "features.npy",
            sim.generate_features(sim.feature_rng()))
    np.savez(writer.path / "truth.npz", cluster_graph=sim.cluster_graph,
             cluster_of_item=sim.cluster_of_item)
    return writer.close()


# ======================================================================
# Dataset adapter (build_model-compatible)
# ======================================================================
@dataclass
class EventLogDataset:
    """An on-disk dataset exposing the :class:`SyntheticDataset` surface.

    ``corpus`` is an :class:`EventLogCorpus`; ``features`` /
    ``cluster_of_item`` / ``cluster_graph`` come from the generation
    sidecars when present, so feature-hungry models (Causer, VTRNN,
    MMSARec) build unchanged.
    """

    name: str
    store: EventLogStore
    corpus: EventLogCorpus
    config: Optional[SimulatorConfig] = None
    features: Optional[np.ndarray] = None
    cluster_of_item: Optional[np.ndarray] = None
    cluster_graph: Optional[np.ndarray] = None

    @property
    def num_items(self) -> int:
        return self.store.num_items

    @property
    def num_clusters(self) -> int:
        if self.cluster_graph is None:
            raise ValueError(f"{self.name}: no ground-truth cluster graph "
                             f"stored with this event log")
        return int(self.cluster_graph.shape[0])


def load_eventlog_dataset(path: PathLike) -> EventLogDataset:
    """Open a generated event log as a dataset adapter."""
    store = EventLogStore(path)
    meta = store.meta
    config = None
    if isinstance(meta.get("config"), dict):
        known = {f.name for f in dataclasses.fields(SimulatorConfig)}
        config = SimulatorConfig(**{k: v for k, v in meta["config"].items()
                                    if k in known})
    truth = store.truth()
    return EventLogDataset(
        name=str(meta.get("name", store.path.name)),
        store=store,
        corpus=EventLogCorpus(store),
        config=config,
        features=store.features(),
        cluster_of_item=None if truth is None else truth["cluster_of_item"],
        cluster_graph=None if truth is None else truth["cluster_graph"],
    )
