"""Named dataset profiles calibrated to the paper's Table II.

Each profile configures the behaviour simulator to match the character of
one of the paper's five datasets — relative size, average sequence length,
item diversity (cluster count), basket behaviour and feature kind.  A global
``scale`` shrinks user/item counts proportionally so the full benchmark
suite runs on a CPU budget; ``scale=1.0`` reproduces Table II magnitudes.

Paper statistics (Table II):

========== ======= ======= ============= ======== ========
dataset    users   items   interactions  seqlen   sparsity
========== ======= ======= ============= ======== ========
Epinions    1,530     683          4,600    3.01    99.56%
Foursquare  2,292   5,494        120,736   52.68    99.04%
Patio       7,153   2,952         29,625    4.14    99.86%
Baby       16,898   6,178         77,046    4.56    99.93%
Video      19,939   9,275        142,658    7.15    99.92%
========== ======= ======= ============= ======== ========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .synthetic import BehaviorSimulator, SimulatorConfig, SyntheticDataset

#: The Table II reference numbers (users, items, interactions, seqlen).
PAPER_STATISTICS: Dict[str, Dict[str, float]] = {
    "epinions": {"users": 1530, "items": 683, "interactions": 4600,
                 "seqlen": 3.01, "sparsity": 0.9956},
    "foursquare": {"users": 2292, "items": 5494, "interactions": 120736,
                   "seqlen": 52.68, "sparsity": 0.9904},
    "patio": {"users": 7153, "items": 2952, "interactions": 29625,
              "seqlen": 4.14, "sparsity": 0.9986},
    "baby": {"users": 16898, "items": 6178, "interactions": 77046,
             "seqlen": 4.56, "sparsity": 0.9993},
    "video": {"users": 19939, "items": 9275, "interactions": 142658,
              "seqlen": 7.15, "sparsity": 0.9992},
}

#: Per-dataset simulator character.  ``clusters`` encodes the paper's §V-C
#: finding: Baby is homogeneous (best K in [4, 6]) while Epinions is diverse
#: (best K in [15, 20]).
_PROFILE_TRAITS: Dict[str, Dict] = {
    "epinions": {"clusters": 16, "edge_prob": 0.25, "basket_extra_prob": 0.10,
                 "feature_kind": "text", "causal_follow_prob": 0.70,
                 "noise_prob": 0.15},
    "foursquare": {"clusters": 12, "edge_prob": 0.35, "basket_extra_prob": 0.02,
                   "feature_kind": "gps", "causal_follow_prob": 0.80,
                   "noise_prob": 0.08},
    "patio": {"clusters": 8, "edge_prob": 0.40, "basket_extra_prob": 0.15,
              "feature_kind": "text", "causal_follow_prob": 0.75,
              "noise_prob": 0.12},
    "baby": {"clusters": 5, "edge_prob": 0.50, "basket_extra_prob": 0.15,
             "feature_kind": "text", "causal_follow_prob": 0.75,
             "noise_prob": 0.10},
    "video": {"clusters": 10, "edge_prob": 0.35, "basket_extra_prob": 0.08,
              "feature_kind": "text", "causal_follow_prob": 0.75,
              "noise_prob": 0.12},
}

DATASET_NAMES: Tuple[str, ...] = tuple(PAPER_STATISTICS)

#: Default scale for benchmarks: small enough for CPU training of ten
#: models, large enough to preserve the datasets' relative character.
DEFAULT_SCALE = 0.05


def dataset_config(name: str, scale: float = DEFAULT_SCALE,
                   seed: int = 0) -> SimulatorConfig:
    """Build the simulator config for a named profile at a given scale."""
    key = name.lower()
    if key not in PAPER_STATISTICS:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(PAPER_STATISTICS)}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    stats = PAPER_STATISTICS[key]
    traits = _PROFILE_TRAITS[key]
    # Floors keep the smallest profiles statistically meaningful at tiny
    # scales: at least ~300 users and ~8 items per latent cluster.
    num_users = max(300, int(round(stats["users"] * scale)))
    num_items = max(traits["clusters"] * 8, int(round(stats["items"] * scale)))
    mean_len = min(stats["seqlen"] + 1.0, 20.0)  # +1: geometric mode shift; cap for CPU
    return SimulatorConfig(
        num_users=num_users,
        num_items=num_items,
        num_clusters=traits["clusters"],
        edge_prob=traits["edge_prob"],
        mean_sequence_length=mean_len,
        min_sequence_length=3,
        max_sequence_length=30,
        causal_follow_prob=traits["causal_follow_prob"],
        noise_prob=traits["noise_prob"],
        basket_extra_prob=traits["basket_extra_prob"],
        feature_kind=traits["feature_kind"],
        feature_dim=16,
        seed=seed,
    )


def load_dataset(name: str, scale: float = DEFAULT_SCALE,
                 seed: int = 0) -> SyntheticDataset:
    """Generate the named dataset profile."""
    config = dataset_config(name, scale=scale, seed=seed)
    return BehaviorSimulator(config, name=name.lower()).generate()


def load_all_datasets(scale: float = DEFAULT_SCALE,
                      seed: int = 0) -> Dict[str, SyntheticDataset]:
    """All five Table IV datasets, keyed by name."""
    return {name: load_dataset(name, scale=scale, seed=seed)
            for name in DATASET_NAMES}
